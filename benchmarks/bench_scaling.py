"""Scalability — index build and query cost vs. corpus size.

Not a paper artifact, but the claim behind Table VI generalizing:
Algorithm 1's cost tracks keyword co-occurrence, not corpus size, while
index construction is linear.  We build the DBLP generator at 1×, 2×
and 4× scale and check:

* index build time grows roughly linearly (within 2× of proportional);
* XClean's postings read per query grows much slower than the corpus
  (skipping pays more the bigger the data);
* the naive enumerate-and-score reference grows roughly with corpus
  size, unlike Algorithm 1.
"""

import time

from _common import emit

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.naive import NaiveCleaner
from repro.datasets.queries import build_query_workloads
from repro.datasets.synthetic_dblp import DBLPConfig, generate_dblp
from repro.eval.reporting import format_table, shape_check
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import build_corpus_index

SIZES = (2000, 4000, 8000)


def test_scaling(benchmark):
    rows = []
    measures = {}
    for publications in SIZES:
        document = generate_dblp(
            DBLPConfig(publications=publications, seed=31)
        ).document
        started = time.perf_counter()
        corpus = build_corpus_index(document)
        build_time = time.perf_counter() - started

        workloads = build_query_workloads(
            corpus, document, count=12, seed=7, style="dblp"
        )
        records = workloads["RAND"]
        generator = VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=2
        )
        fast = XCleanSuggester(
            corpus,
            generator=generator,
            config=XCleanConfig(max_errors=2, gamma=1000),
        )
        slow = NaiveCleaner(
            corpus,
            generator=generator.fresh_cache(),
            config=XCleanConfig(max_errors=2, gamma=None),
        )
        fast_reads = 0
        slow_reads = 0
        for record in records:
            fast.suggest(record.dirty_text, 10)
            fast_reads += fast.last_stats.postings_read
            slow.suggest(record.dirty_text, 10)
            slow_reads += slow.last_stats.postings_read
        postings = corpus.inverted.total_postings()
        measures[publications] = (
            build_time,
            postings,
            fast_reads,
            slow_reads,
        )
        rows.append(
            (
                publications,
                postings,
                build_time,
                fast_reads // len(records),
                slow_reads // len(records),
            )
        )

    table = format_table(
        (
            "publications",
            "postings",
            "build (s)",
            "XClean reads/q",
            "naive reads/q",
        ),
        rows,
        title="Scalability — DBLP generator at 1x/2x/4x",
    )

    small, large = measures[SIZES[0]], measures[SIZES[-1]]
    corpus_growth = large[1] / small[1]
    build_growth = large[0] / small[0]
    fast_growth = large[2] / max(1, small[2])
    slow_growth = large[3] / max(1, small[3])
    checks = [
        shape_check(
            f"index build roughly linear (corpus x{corpus_growth:.1f},"
            f" build x{build_growth:.1f})",
            build_growth <= 2.0 * corpus_growth,
        ),
        # Workloads are re-sampled per scale, so per-query read counts
        # are noisy; bound the growth loosely and require the absolute
        # advantage over the naive scorer at every scale.
        shape_check(
            "XClean reads grow at most ~corpus growth "
            f"(x{fast_growth:.1f} vs corpus x{corpus_growth:.1f})",
            fast_growth <= 2.0 * corpus_growth,
        ),
        shape_check(
            "XClean reads a small fraction of naive's at every scale",
            all(
                measures[p][2] * 5 <= measures[p][3] for p in SIZES
            ),
        ),
        shape_check(
            "XClean reads grow slower than naive reads "
            f"(x{fast_growth:.1f} vs x{slow_growth:.1f})",
            fast_growth <= slow_growth + 0.5,
        ),
    ]
    emit("scaling", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    document = generate_dblp(DBLPConfig(publications=SIZES[0])).document
    benchmark.pedantic(
        lambda: build_corpus_index(document), rounds=1, iterations=1
    )
