"""Index sizes — Section VII-A's report, plus the codec comparison.

The paper: "The index sizes of the INEX and DBLP datasets are 1.8GB
and 400MB, respectively" — i.e. the index is a small multiple of the
raw XML (0.31× and 0.76×).  We report raw XML size, the text index
format, and the compressed binary format, asserting:

* the binary format is substantially smaller than the text format
  (Dewey delta + varint coding);
* the binary index is within a small multiple of the raw XML, like
  the paper's;
* the binary round-trip is lossless.
"""

from _common import bench_scale, emit, settings

from repro.eval.reporting import format_table, shape_check
from repro.index import storage
from repro.index.storage_binary import dumps_binary, loads_binary


def test_index_size(benchmark):
    scale = bench_scale()
    rows = []
    measures = {}
    for label in ("INEX", "DBLP"):
        setting = settings(scale)[label]
        xml_bytes = setting.document.stats.size_bytes
        text_bytes = len(storage.dumps(setting.corpus).encode())
        binary_bytes = len(dumps_binary(setting.corpus))
        measures[label] = (xml_bytes, text_bytes, binary_bytes)
        rows.append(
            (
                label,
                round(xml_bytes / 1024, 1),
                round(text_bytes / 1024, 1),
                round(binary_bytes / 1024, 1),
                f"{binary_bytes / xml_bytes:.2f}x",
            )
        )
    table = format_table(
        ("Dataset", "XML (KB)", "text index (KB)",
         "binary index (KB)", "binary/XML"),
        rows,
        title=f"Index sizes ({scale} scale; paper: INEX 1.8GB/5.8GB,"
        " DBLP 400MB/526MB)",
    )

    checks = []
    for label in ("INEX", "DBLP"):
        xml_bytes, text_bytes, binary_bytes = measures[label]
        checks.append(
            shape_check(
                f"{label}: binary format beats text format "
                f"({binary_bytes/text_bytes:.2f}x)",
                binary_bytes < text_bytes,
            )
        )
        checks.append(
            shape_check(
                f"{label}: binary index within 2x of the raw XML "
                f"({binary_bytes/xml_bytes:.2f}x; paper ratios "
                "0.31x/0.76x)",
                binary_bytes <= 2 * xml_bytes,
            )
        )
    # Lossless round-trip on the larger corpus.
    corpus = settings(scale)["INEX"].corpus
    reloaded = loads_binary(dumps_binary(corpus))
    checks.append(
        shape_check(
            "binary round-trip is lossless",
            reloaded.describe() == corpus.describe()
            and reloaded.subtree_token_counts
            == corpus.subtree_token_counts,
        )
    )
    emit("index_size", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    dblp = settings(scale)["DBLP"].corpus
    benchmark.pedantic(
        lambda: loads_binary(dumps_binary(dblp)), rounds=1, iterations=1
    )
