"""Sharded scatter-gather serving benchmark.

Sweeps shard count (1, 2, 4) at fixed replication over the synthetic
DBLP dataset and measures ``suggest_batch`` throughput through
``ShardedSuggestionService`` with the result cache disabled, so every
pass pays the full scatter-gather cost.  A serial single-index
``SuggestionService`` run is included for context, and the sharded
answers of the first pass are checked byte-identical against it.

Shape claims:

* 4 shards deliver >= 1.8x the 1-shard batch throughput at the
  ``default`` scale on a multi-core host (the CI floor).  On a
  single-core host, or at the tiny ``small`` smoke scale where
  per-query work is microseconds and process IPC dominates, only a
  relaxed sanity floor is asserted — the sweep still runs end to end
  and the artifact records the measured ratio either way;
* no query degrades, times out, or loses a shard at any shard count.

Results: ``out/shards.txt`` and ``out/BENCH_shards.json``.
"""

import json
import os
import tempfile
import time

from _common import OUT_DIR, bench_scale, emit

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.core.shards import ShardedSuggestionService
from repro.eval.experiments import dblp_setting
from repro.eval.reporting import format_table, shape_check
from repro.index.sharding import build_sharded_snapshot

SHARD_SWEEP = (1, 2, 4)
REPLICAS = 1
PASSES = 3

#: Minimum 4-shard / 1-shard throughput ratio.  The real floor needs
#: real parallelism: per-query work that dwarfs IPC (default scale)
#: and at least as many cores as shards.
SPEEDUP_FLOORS = {"default": 1.8, "small": 0.15}
RELAXED_FLOOR = 0.15


def _suggestion_key(suggestion):
    return (
        suggestion.tokens, suggestion.score, suggestion.result_type
    )


def workload_queries(setting):
    return [
        record.dirty_text
        for kind in ("RAND", "RULE", "CLEAN")
        for record in setting.workloads[kind]
    ]


def make_config():
    return XCleanConfig(max_errors=2, beta=5.0, gamma=1000)


def timed_batches(service, queries):
    """Best-of-N wall time of one full batch over the trace."""
    best = float("inf")
    answers = None
    for _ in range(PASSES):
        began = time.perf_counter()
        result = service.suggest_batch(queries, k=10)
        elapsed = time.perf_counter() - began
        if elapsed < best:
            best = elapsed
        if answers is None:
            answers = result
    return best, answers


def bench_single_index(setting, queries):
    service = SuggestionService(
        setting.corpus,
        config=make_config(),
        result_cache_size=0,
    )
    best, answers = timed_batches(service, queries)
    return best, [[_suggestion_key(s) for s in row] for row in answers]


def bench_shard_count(setting, queries, directory, shards):
    manifest = build_sharded_snapshot(
        setting.corpus, os.path.join(directory, f"n{shards}"), shards
    )
    with ShardedSuggestionService(
        manifest,
        config=make_config(),
        replicas=REPLICAS,
        result_cache_size=0,
        workers=max(4, shards * (REPLICAS + 1)),
        close_grace=5.0,
    ) as service:
        # Warm pass: forks every replica pool and warms shard caches.
        service.suggest_batch(queries, k=10)
        best, answers = timed_batches(service, queries)
        stats = service.stats
        return {
            "shards": shards,
            "replicas": REPLICAS,
            "batch_seconds": best,
            "queries_per_sec": len(queries) / best,
            "pool_starts": stats.pool_starts,
            "worker_failures": stats.worker_failures,
            "worker_timeouts": stats.worker_timeouts,
            "degraded_queries": stats.degraded_queries,
            "shards_omitted": stats.shards_omitted,
        }, [[_suggestion_key(s) for s in row] for row in answers]


def test_shards(benchmark):
    scale = bench_scale()
    setting = dblp_setting(scale)
    queries = workload_queries(setting)
    cores = os.cpu_count() or 1

    single_seconds, reference = bench_single_index(setting, queries)
    rows = []
    with tempfile.TemporaryDirectory() as directory:
        for shards in SHARD_SWEEP:
            row, answers = bench_shard_count(
                setting, queries, directory, shards
            )
            row["matches_single_index"] = answers == reference
            rows.append(row)

    by_shards = {row["shards"]: row for row in rows}
    speedup = (
        by_shards[4]["queries_per_sec"]
        / by_shards[1]["queries_per_sec"]
    )
    floor = SPEEDUP_FLOORS.get(scale, RELAXED_FLOOR)
    if cores < 4:
        # No parallel hardware: the scatter cannot beat one process.
        floor = min(floor, RELAXED_FLOOR)

    report = {
        "benchmark": "shards",
        "scale": scale,
        "dataset": "DBLP",
        "cpu_count": cores,
        "trace_queries": len(queries),
        "single_index_seconds": single_seconds,
        "single_index_qps": len(queries) / single_seconds,
        "sweep": rows,
        "speedup_4x_over_1x": speedup,
        "speedup_floor": floor,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_shards.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    checks = [
        shape_check(
            f"4-shard speedup {speedup:.2f}x >= {floor}x "
            f"(scale={scale}, cores={cores})",
            speedup >= floor,
        ),
        shape_check(
            "sharded answers byte-identical to single index at every "
            "shard count",
            all(row["matches_single_index"] for row in rows),
        ),
        shape_check(
            "no degraded, timed-out, or omitted shard legs",
            all(
                row["degraded_queries"] == 0
                and row["worker_timeouts"] == 0
                and row["shards_omitted"] == 0
                for row in rows
            ),
        ),
        shape_check(
            "every replica pool started exactly once",
            all(
                row["pool_starts"] == row["shards"] * REPLICAS
                for row in rows
            ),
        ),
    ]
    emit(
        "shards",
        format_table(
            ("Configuration", "batch (s)", "q/s"),
            [
                (
                    "single index (serial)",
                    single_seconds,
                    len(queries) / single_seconds,
                ),
            ]
            + [
                (
                    f"{row['shards']} shard(s) x {REPLICAS} replica",
                    row["batch_seconds"],
                    row["queries_per_sec"],
                )
                for row in rows
            ],
            title=(
                f"Scatter-gather batch throughput "
                f"({len(queries)} queries, cache off)"
            ),
        )
        + "\n"
        + "\n".join(checks),
    )
    assert all("[OK ]" in check for check in checks)

    record = setting.workloads["RAND"][0]
    with tempfile.TemporaryDirectory() as directory:
        manifest = build_sharded_snapshot(
            setting.corpus, directory, 2
        )
        with ShardedSuggestionService(
            manifest, config=make_config(), result_cache_size=0
        ) as service:
            service.suggest(record.dirty_text, 10)  # warm
            benchmark.pedantic(
                lambda: service.suggest(record.dirty_text, 10),
                rounds=3,
                iterations=1,
            )
