"""Figures 4(a)–4(f) — precision@N on the six query sets.

Paper shapes asserted:

* XClean's curve starts high at N=1 and is nearly flat — the correct
  suggestion is found at the top of the list;
* PY08's curve climbs gradually with N — the correct suggestion hides
  deeper in its list;
* XClean dominates PY08 at every cut-off.
"""

from _common import (
    WORKLOAD_ORDER,
    bench_scale,
    emit,
    settings,
    standard_result,
)

from repro.eval.reporting import format_curve, shape_check

CUTOFFS = (1, 2, 3, 5, 10)


def test_fig4_precision_at_n(benchmark):
    scale = bench_scale()
    sections = []
    checks = []
    for figure, (dataset, kind) in zip("abcdef", WORKLOAD_ORDER):
        series = {}
        for system in ("XClean", "PY08"):
            result = standard_result(scale, dataset, kind, system)
            series[system] = [result.precision[n] for n in CUTOFFS]
        sections.append(
            format_curve(
                list(CUTOFFS),
                series,
                title=f"Figure 4({figure}) — {dataset}-{kind}",
            )
        )
        xclean = series["XClean"]
        py08 = series["PY08"]
        checks.append(
            shape_check(
                f"4({figure}) XClean >= PY08 at N <= 3 "
                f"({dataset}-{kind})",
                all(x >= p for x, p in zip(xclean[:3], py08[:3])),
            )
        )
        flat_gain = xclean[-1] - xclean[0]
        py08_gain = py08[-1] - py08[0]
        checks.append(
            shape_check(
                f"4({figure}) XClean curve flatter than PY08's "
                f"(gain {flat_gain:.2f} vs {py08_gain:.2f})",
                flat_gain <= py08_gain + 1e-9,
            )
        )
    emit(
        "fig4_precision_at_n",
        "\n\n".join(sections) + "\n" + "\n".join(checks),
    )
    # Dominance at the head of the list (N <= 3, where the paper's
    # Figure 4 separates the systems) must hold everywhere; the
    # flatness check is statistical — require a clear majority.
    dominance = [c for c in checks if ">= PY08" in c]
    flatness = [c for c in checks if "flatter" in c]
    assert all("[OK ]" in c for c in dominance)
    assert sum("[OK ]" in c for c in flatness) >= len(flatness) - 1

    setting = settings(scale)["INEX"]
    suggester = setting.xclean()
    record = setting.workloads["RAND"][0]
    benchmark.pedantic(
        lambda: suggester.suggest(record.dirty_text, 10),
        rounds=5,
        iterations=1,
    )
