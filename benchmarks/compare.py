"""Regression gate: diff fresh BENCH_*.json against the committed baseline.

The benchmark harness writes one ``BENCH_<name>.json`` per suite into
``benchmarks/out/`` (committed as the baseline).  CI reruns the suites
into a scratch directory and calls this script to diff the *headline*
metrics — the handful of numbers the docs quote as floors — failing the
build when any regresses by more than the threshold.

Only headline metrics gate.  Everything else in the JSON (corpus sizes,
stage histograms, sweep rows) is context, and diffing it all would turn
every noisy timer into a flake.  Each headline carries a direction
(``higher`` is better for speedups, ``lower`` for latencies) and the
scale it was recorded at; a candidate recorded at a different
``REPRO_BENCH_SCALE`` is *skipped*, not failed — small-scale numbers
are not comparable to default-scale baselines.

Usage::

    python benchmarks/compare.py --baseline benchmarks/out \
        --candidate /tmp/bench_out [--threshold 0.15] [--out diff.json]

Exit status: 0 when nothing regressed (skips and missing candidates are
reported but do not fail), 1 when any headline regressed past the
threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The gated numbers: (file, dotted path, direction, scale recorded at).
#: Direction says which way is better; the threshold is applied on the
#: losing side only (a speedup may grow freely, a latency may shrink).
HEADLINES = (
    ("BENCH_hotpath.json", "merge.speedup", "higher", "default"),
    ("BENCH_load.json", "open_loop.p99_ms", "lower", "default"),
    ("BENCH_update.json", "ack.ack_p50_ms", "lower", "small"),
)

DEFAULT_THRESHOLD = 0.15


def dig(payload: dict, dotted: str):
    """Resolve ``a.b.c`` in nested dicts; ``None`` when absent."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare_metric(
    baseline: dict,
    candidate: dict,
    path: str,
    direction: str,
    scale: str,
    threshold: float,
) -> dict:
    """One headline verdict: ok / regression / skipped / missing.

    The ratio is candidate/baseline; ``higher`` metrics regress when
    the ratio drops below ``1 - threshold``, ``lower`` metrics when it
    climbs above ``1 + threshold``.
    """
    entry: dict = {
        "metric": path,
        "direction": direction,
        "threshold": threshold,
    }
    candidate_scale = candidate.get("scale", "default")
    if candidate_scale != scale:
        entry["status"] = "skipped"
        entry["reason"] = (
            f"candidate scale {candidate_scale!r} != baseline "
            f"scale {scale!r}"
        )
        return entry
    base_value = dig(baseline, path)
    cand_value = dig(candidate, path)
    if not isinstance(base_value, (int, float)) or not base_value:
        entry["status"] = "skipped"
        entry["reason"] = f"baseline value unusable: {base_value!r}"
        return entry
    if not isinstance(cand_value, (int, float)):
        entry["status"] = "missing"
        entry["reason"] = f"candidate value absent: {cand_value!r}"
        return entry
    ratio = cand_value / base_value
    entry.update(
        baseline=base_value, candidate=cand_value,
        ratio=round(ratio, 4),
    )
    if direction == "higher":
        regressed = ratio < 1.0 - threshold
    else:
        regressed = ratio > 1.0 + threshold
    entry["status"] = "regression" if regressed else "ok"
    return entry


def compare_dirs(
    baseline_dir: Path | str,
    candidate_dir: Path | str,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict:
    """Diff every headline; the returned dict is the CI artifact."""
    baseline_dir = Path(baseline_dir)
    candidate_dir = Path(candidate_dir)
    results = []
    for filename, path, direction, scale in HEADLINES:
        base_file = baseline_dir / filename
        cand_file = candidate_dir / filename
        entry = {"file": filename, "metric": path}
        if not base_file.exists():
            entry.update(status="skipped", reason="no baseline file")
        elif not cand_file.exists():
            entry.update(status="missing", reason="no candidate file")
        else:
            with open(base_file, encoding="utf-8") as handle:
                baseline = json.load(handle)
            with open(cand_file, encoding="utf-8") as handle:
                candidate = json.load(handle)
            entry.update(compare_metric(
                baseline, candidate, path, direction, scale, threshold
            ))
        results.append(entry)
    return {
        "threshold": threshold,
        "results": results,
        "regressions": [
            r for r in results if r["status"] == "regression"
        ],
    }


def format_report(report: dict) -> str:
    lines = []
    for entry in report["results"]:
        status = entry["status"].upper()
        line = f"[{status:<10}] {entry['file']} {entry['metric']}"
        if "ratio" in entry:
            line += (
                f" baseline={entry['baseline']:.4g}"
                f" candidate={entry['candidate']:.4g}"
                f" ratio={entry['ratio']:.3f}"
            )
        if "reason" in entry:
            line += f" ({entry['reason']})"
        lines.append(line)
    verdict = (
        f"{len(report['regressions'])} regression(s) past "
        f"{report['threshold']:.0%}"
    )
    lines.append(verdict)
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff fresh benchmark JSON against the baseline"
    )
    parser.add_argument(
        "--baseline", default=str(Path(__file__).parent / "out"),
        help="directory holding the committed BENCH_*.json baseline",
    )
    parser.add_argument(
        "--candidate", required=True,
        help="directory holding freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative regression tolerance (default 0.15)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the full diff report as JSON to this path",
    )
    args = parser.parse_args(argv)
    report = compare_dirs(
        Path(args.baseline), Path(args.candidate), args.threshold
    )
    print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if report["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
