"""Closed- and open-loop load harness for the HTTP serving tier.

Starts real ``xclean serve`` processes over a synthetic DBLP index and
drives them over TCP:

* **closed loop** — N keep-alive client threads issuing back-to-back
  requests, swept over concurrency levels; reports p50/p95/p99
  latency, throughput, and shed (503) counts per level;
* **open loop** — fixed-rate Poisson-less arrivals with latency
  measured from the *scheduled* arrival time, so queueing delay is
  visible (closed-loop latency hides it by self-throttling);
* **single-flight coalescing** — 32 barrier-synchronized clients
  repeatedly request the same query against a server with the result
  cache disabled, with coalescing on vs off.  Backend executions are
  read from ``/stats``; the coalescing server must do at most half
  the work, and every coalesced answer must be byte-identical;
* **graceful shutdown** — every server is stopped with SIGTERM and
  must drain and exit 0.

Shapes asserted: zero 5xx responses other than 503 anywhere, exit 0
on SIGTERM, and a >= 2x reduction in backend executions from
coalescing.  Results land in ``out/load.txt`` and
``out/BENCH_load.json``.

Run with ``--smoke`` (or ``REPRO_BENCH_SCALE=small``) for a quick CI
pass.
"""

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from _common import OUT_DIR, bench_scale, emit

REPO_ROOT = Path(__file__).resolve().parent.parent

SCALES = {
    "small": {
        "publications": 80,
        "sweep": (1, 4, 8),
        "requests_per_level": 90,
        "open_loop_rate": 25.0,
        "open_loop_seconds": 2.0,
        "coalesce_concurrency": 16,
        "coalesce_rounds": 3,
    },
    "default": {
        "publications": 300,
        "sweep": (1, 2, 4, 8, 16, 32),
        "requests_per_level": 240,
        "open_loop_rate": 40.0,
        "open_loop_seconds": 4.0,
        "coalesce_concurrency": 32,
        "coalesce_rounds": 5,
    },
}


# ----------------------------------------------------------------------
# Server management
# ----------------------------------------------------------------------


class Server:
    """One ``xclean serve`` subprocess on an ephemeral port."""

    def __init__(self, index_path: Path, *extra_args: str):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--index", str(index_path), "--port", "0",
                *extra_args,
            ],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        if "listening on http://" not in line:
            rest = self.proc.stdout.read()
            raise RuntimeError(
                f"server failed to start: {line!r} {rest!r}"
            )
        self.port = int(line.rsplit(":", 1)[1])

    def stats(self) -> dict:
        status, _, body = get(self.port, "/stats")
        assert status == 200
        return json.loads(body)

    def stop(self) -> int:
        """SIGTERM the server; it must drain and exit 0."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise AssertionError(
                "server did not drain within 30s of SIGTERM"
            ) from None
        assert code == 0, f"server exited {code} on SIGTERM, not 0"
        return code


def build_index(scale: str, workdir: Path) -> Path:
    """Generate a synthetic DBLP corpus and a v3 snapshot index."""
    xml_path = workdir / "dblp.xml"
    index_path = workdir / "dblp.xci"
    publications = SCALES[scale]["publications"]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    for args in (
        ["generate", "--dataset", "dblp", "--size",
         str(publications), "--out", str(xml_path)],
        ["index", "--xml", str(xml_path), "--out", str(index_path),
         "--format", "v3"],
    ):
        subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            cwd=REPO_ROOT, env=env, check=True,
            stdout=subprocess.DEVNULL,
        )
    return index_path


def workload_queries(index_path: Path) -> list[str]:
    """Misspelled queries built from the index's own vocabulary."""
    from repro.index.snapshot import snapshot_or_corpus

    corpus = snapshot_or_corpus(str(index_path))
    rows = sorted(
        corpus.vocabulary.export_rows(),
        key=lambda row: -row[2],  # document frequency
    )
    tokens = [row[0] for row in rows if len(row[0]) >= 5][:40]
    queries = []
    for i, token in enumerate(tokens):
        partner = tokens[(i + 7) % len(tokens)]
        # Drop one character: an edit-distance-1 miss with a
        # guaranteed in-vocabulary correction.
        queries.append(f"{token[:-1]} {partner}")
    return queries or ["databas systm"]


# ----------------------------------------------------------------------
# Clients
# ----------------------------------------------------------------------


def get(port: int, target: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            response.read(),
        )
    finally:
        conn.close()


class Tally:
    """Thread-safe accumulation of per-request outcomes."""

    def __init__(self):
        self.lock = threading.Lock()
        self.latencies_ms: list[float] = []
        self.statuses: dict[int, int] = {}

    def record(self, status: int, latency_ms: float) -> None:
        with self.lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status == 200:
                self.latencies_ms.append(latency_ms)

    def shed(self) -> int:
        return self.statuses.get(503, 0)

    def other_5xx(self) -> int:
        return sum(
            count for status, count in self.statuses.items()
            if status >= 500 and status != 503
        )


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1,
        int(fraction * len(sorted_values)),
    )
    return sorted_values[index]


def summarize(tally: Tally, elapsed: float) -> dict:
    latencies = sorted(tally.latencies_ms)
    total = sum(tally.statuses.values())
    return {
        "requests": total,
        "throughput_rps": round(total / elapsed, 1) if elapsed else 0,
        "p50_ms": round(percentile(latencies, 0.50), 2),
        "p95_ms": round(percentile(latencies, 0.95), 2),
        "p99_ms": round(percentile(latencies, 0.99), 2),
        "shed_503": tally.shed(),
        "other_5xx": tally.other_5xx(),
        "statuses": dict(sorted(tally.statuses.items())),
    }


def closed_loop(
    port: int, queries: list[str], concurrency: int, total: int
) -> dict:
    """N threads, each hammering back-to-back on one keep-alive conn."""
    tally = Tally()
    per_thread = total // concurrency

    def worker(worker_id: int) -> None:
        conn = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=30
        )
        try:
            for i in range(per_thread):
                query = queries[(worker_id * 31 + i) % len(queries)]
                target = "/suggest?q=" + query.replace(" ", "+")
                began = time.perf_counter()
                try:
                    conn.request("GET", target)
                    response = conn.getresponse()
                    response.read()
                    status = response.status
                except (http.client.HTTPException, OSError):
                    conn.close()
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", port, timeout=30
                    )
                    status = -1  # transport error, not an HTTP status
                tally.record(
                    status, (time.perf_counter() - began) * 1000.0
                )
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, args=(n,))
        for n in range(concurrency)
    ]
    began = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result = summarize(tally, time.perf_counter() - began)
    result["concurrency"] = concurrency
    return result


def open_loop(
    port: int, queries: list[str], rate: float, seconds: float
) -> dict:
    """Fixed-rate arrivals; latency includes time spent queued.

    Each request is launched on its own thread at its scheduled
    arrival time regardless of whether earlier requests finished —
    an overloaded server shows up as growing latency, exactly the
    signal closed-loop clients hide.
    """
    tally = Tally()
    count = int(rate * seconds)
    interval = 1.0 / rate
    start = time.perf_counter() + 0.2  # headroom to spawn threads

    def fire(i: int) -> None:
        scheduled = start + i * interval
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        query = queries[i % len(queries)]
        target = "/suggest?q=" + query.replace(" ", "+")
        try:
            status, _, _ = get(port, target)
        except OSError:
            status = -1
        tally.record(
            status, (time.perf_counter() - scheduled) * 1000.0
        )

    threads = [
        threading.Thread(target=fire, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    result = summarize(tally, elapsed)
    result["offered_rate_rps"] = rate
    return result


def coalesce_experiment(
    index_path: Path, queries: list[str],
    concurrency: int, rounds: int,
) -> dict:
    """Identical-query bursts with single-flight on vs off.

    Both servers run with the result cache disabled so every request
    that reaches the backend really computes; the only dedup left is
    the front-end's single-flight.
    """

    def burst_server(*extra: str) -> tuple[int, set, Tally]:
        server = Server(
            index_path, "--result-cache-size", "0",
            "--max-pending", str(concurrency * 2), *extra,
        )
        tally = Tally()
        bodies: set = set()
        bodies_lock = threading.Lock()
        query = queries[0]
        target = "/suggest?q=" + query.replace(" ", "+") + "&k=5"
        barrier = threading.Barrier(concurrency)

        def worker() -> None:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                for _ in range(rounds):
                    barrier.wait()
                    began = time.perf_counter()
                    conn.request("GET", target)
                    response = conn.getresponse()
                    body = response.read()
                    tally.record(
                        response.status,
                        (time.perf_counter() - began) * 1000.0,
                    )
                    if response.status == 200:
                        with bodies_lock:
                            bodies.add(body)
            finally:
                conn.close()

        threads = [
            threading.Thread(target=worker)
            for _ in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        executions = server.stats()["service"]["queries_served"]
        server.stop()
        return executions, bodies, tally

    on_execs, on_bodies, on_tally = burst_server()
    off_execs, off_bodies, off_tally = burst_server(
        "--no-single-flight"
    )
    submitted = concurrency * rounds
    # Every 200 answer for one (query, k) must be byte-identical —
    # coalesced fan-out shares the leader's bytes, and even without
    # coalescing the canonical JSON encoding is deterministic.
    assert len(on_bodies) == 1, (
        f"coalesced responses not byte-identical: {len(on_bodies)} "
        "distinct bodies"
    )
    assert off_execs > 0 and on_execs > 0
    reduction = off_execs / on_execs
    return {
        "concurrency": concurrency,
        "rounds": rounds,
        "submitted_per_server": submitted,
        "backend_executions_single_flight": on_execs,
        "backend_executions_no_single_flight": off_execs,
        "duplicate_execution_reduction": round(reduction, 2),
        "distinct_bodies_single_flight": len(on_bodies),
        "distinct_bodies_no_single_flight": len(off_bodies),
        "shed_503_single_flight": on_tally.shed(),
        "shed_503_no_single_flight": off_tally.shed(),
        "other_5xx": on_tally.other_5xx() + off_tally.other_5xx(),
    }


# ----------------------------------------------------------------------
# Main
# ----------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny corpus and short sweeps (CI)",
    )
    parser.add_argument(
        "--url", default=None,
        help="benchmark an already-running server (host:port) "
        "instead of managing subprocesses; skips the coalesce and "
        "shutdown experiments",
    )
    args = parser.parse_args()
    scale = "small" if args.smoke else bench_scale()
    if scale not in SCALES:
        scale = "default"
    params = SCALES[scale]

    report: dict = {"scale": scale}
    lines = [f"HTTP load harness (scale={scale})", ""]

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        index_path = build_index(scale, workdir)
        queries = workload_queries(index_path)
        lines.append(f"workload: {len(queries)} misspelled queries")

        if args.url:
            host, _, port_text = args.url.rpartition(":")
            sweep_port = int(port_text)
            managed = None
        else:
            managed = Server(index_path)
            sweep_port = managed.port

        # Closed-loop concurrency sweep.
        sweep = []
        lines.append("")
        lines.append(
            f"{'conc':>5} {'reqs':>6} {'rps':>8} {'p50ms':>8} "
            f"{'p95ms':>8} {'p99ms':>8} {'503':>5}"
        )
        for concurrency in params["sweep"]:
            level = closed_loop(
                sweep_port, queries, concurrency,
                params["requests_per_level"],
            )
            sweep.append(level)
            lines.append(
                f"{concurrency:>5} {level['requests']:>6} "
                f"{level['throughput_rps']:>8} {level['p50_ms']:>8} "
                f"{level['p95_ms']:>8} {level['p99_ms']:>8} "
                f"{level['shed_503']:>5}"
            )
        report["closed_loop_sweep"] = sweep

        # Open loop at a fixed offered rate.
        open_result = open_loop(
            sweep_port, queries,
            params["open_loop_rate"], params["open_loop_seconds"],
        )
        report["open_loop"] = open_result
        lines.append("")
        lines.append(
            f"open loop @ {open_result['offered_rate_rps']} rps: "
            f"attained {open_result['throughput_rps']} rps, "
            f"p50 {open_result['p50_ms']}ms "
            f"p99 {open_result['p99_ms']}ms, "
            f"{open_result['shed_503']} shed"
        )

        if managed is not None:
            report["graceful_exit_code"] = managed.stop()
            lines.append("sweep server: drained and exited 0 on SIGTERM")

            coalesce = coalesce_experiment(
                index_path, queries,
                params["coalesce_concurrency"],
                params["coalesce_rounds"],
            )
            report["coalesce"] = coalesce
            lines.append("")
            lines.append(
                f"coalescing @ {coalesce['concurrency']} identical "
                f"clients x {coalesce['rounds']} rounds: "
                f"{coalesce['backend_executions_no_single_flight']} "
                f"backend executions without single-flight vs "
                f"{coalesce['backend_executions_single_flight']} with "
                f"({coalesce['duplicate_execution_reduction']}x fewer)"
            )

    # Shape checks: the serving tier sheds with 503 *only* — any other
    # 5xx is a bug — and coalescing must at least halve duplicate work.
    other_5xx = sum(level["other_5xx"] for level in sweep)
    other_5xx += report["open_loop"]["other_5xx"]
    if "coalesce" in report:
        other_5xx += report["coalesce"]["other_5xx"]
        reduction = report["coalesce"]["duplicate_execution_reduction"]
        assert reduction >= 2.0, (
            f"single-flight reduced duplicate executions only "
            f"{reduction}x (expected >= 2x)"
        )
    assert other_5xx == 0, f"{other_5xx} non-503 5xx responses"
    lines.append("")
    lines.append("all shape checks passed (0 non-503 5xx)")

    emit("load", "\n".join(lines))
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_load.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":
    main()
