"""Ablation — the effect of skipping in Algorithm 1 (Section V-C).

The paper credits part of XClean's efficiency to anchor-based skipping
over the merged inverted lists.  This ablation runs the identical
algorithm with skip_to replaced by linear advancing and asserts:

* the top-k output is identical (skipping is a pure optimization);
* the skipping variant reads a fraction of the postings;
* wall-clock follows the I/O saving.
"""

from _common import bench_scale, emit, settings

from repro.eval.reporting import format_table, shape_check
from repro.eval.runner import evaluate_suggester


def test_ablation_skipping(benchmark):
    scale = bench_scale()
    setting = settings(scale)["DBLP"]
    records = setting.workloads["RAND"]

    with_skip = setting.xclean(use_skipping=True)
    without_skip = setting.xclean(use_skipping=False)

    reads = {"on": 0, "off": 0}
    identical = True
    for record in records:
        a = with_skip.suggest(record.dirty_text, 10)
        reads["on"] += with_skip.last_stats.postings_read
        b = without_skip.suggest(record.dirty_text, 10)
        reads["off"] += without_skip.last_stats.postings_read
        if [s.tokens for s in a] != [s.tokens for s in b]:
            identical = False

    timed_on = evaluate_suggester(with_skip, records)
    timed_off = evaluate_suggester(without_skip, records)

    table = format_table(
        ("variant", "postings read", "mean time (ms)", "MRR"),
        [
            ("skipping on", reads["on"], timed_on.mean_time * 1000,
             timed_on.mrr),
            ("skipping off", reads["off"], timed_off.mean_time * 1000,
             timed_off.mrr),
        ],
        title=f"Ablation — Algorithm 1 skipping ({scale} scale, "
        "DBLP-RAND)",
    )
    ratio = reads["off"] / max(1, reads["on"])
    checks = [
        shape_check("identical top-k with and without skipping",
                    identical),
        shape_check(
            f"skipping reads fewer postings ({ratio:.1f}x fewer)",
            reads["on"] < reads["off"],
        ),
        shape_check(
            "skipping is not slower",
            timed_on.mean_time <= timed_off.mean_time * 1.25,
        ),
    ]
    emit("ablation_skipping", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    record = records[0]
    benchmark.pedantic(
        lambda: with_skip.suggest(record.dirty_text, 10),
        rounds=5,
        iterations=1,
    )
