"""Hot-path benchmark — packed engine and batch serving vs the seed.

Measures, on the synthetic DBLP dataset:

* single-query latency of ``XCleanSuggester.suggest`` under the tuple
  (seed, reference) and packed (columnar, int-keyed) engines, with warm
  variant/merged-list caches — queries/sec, p50/p95 latency, and
  postings consumed per second;
* batch throughput of ``SuggestionService.suggest_batch`` (packed
  engine + result cache) against the tuple engine serving the same
  trace query by query.  The trace repeats each workload query
  ``TRACE_REPEATS`` times in a shuffled order, the usual shape of a
  production query log (head queries recur).

Shapes asserted at the ``default`` scale: the packed engine answers
single queries >= 2x faster, and the serving layer sustains >= 4x the
tuple engine's batch throughput.  At ``small`` smoke scale the corpus
is tiny, per-query fixed costs dominate, and only relaxed bounds are
asserted.

Results are emitted both as text (``out/hotpath.txt``) and as
machine-readable JSON (``out/BENCH_hotpath.json``).
"""

import json
import random
import time

from _common import OUT_DIR, bench_scale, emit

from repro.core.server import SuggestionService
from repro.eval.experiments import dblp_setting
from repro.eval.reporting import format_table, shape_check

#: Timed passes over the workload per engine (latencies are pooled).
REPETITIONS = 3

#: How often each query recurs in the batch trace.
TRACE_REPEATS = 3

#: Speedup floors asserted per scale: (single-query, batch throughput).
FLOORS = {"default": (2.0, 4.0), "small": (1.1, 2.0)}


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def workload_queries(setting):
    return [
        record.dirty_text
        for kind in ("RAND", "RULE", "CLEAN")
        for record in setting.workloads[kind]
    ]


def bench_single(setting, engine, queries):
    """Per-query latencies and postings/sec for one engine."""
    suggester = setting.xclean(engine=engine)
    for query in queries:  # warm caches: variants, merged lists, types
        suggester.suggest(query, 10)
    latencies = []
    postings = 0
    clock = time.perf_counter
    for _ in range(REPETITIONS):
        for query in queries:
            began = clock()
            suggester.suggest(query, 10)
            latencies.append(clock() - began)
            postings += suggester.last_stats.postings_read
    elapsed = sum(latencies)
    return {
        "queries_per_sec": len(latencies) / elapsed,
        "mean_ms": 1e3 * elapsed / len(latencies),
        "p50_ms": 1e3 * percentile(latencies, 0.50),
        "p95_ms": 1e3 * percentile(latencies, 0.95),
        "postings_per_sec": postings / elapsed,
    }


def bench_batch(setting, queries):
    """Batch throughput: packed serving layer vs tuple query-by-query."""
    trace = queries * TRACE_REPEATS
    random.Random(7).shuffle(trace)

    tuple_engine = setting.xclean(engine="tuple")
    for query in queries:
        tuple_engine.suggest(query, 10)  # same warm start as singles
    began = time.perf_counter()
    for query in trace:
        tuple_engine.suggest(query, 10)
    tuple_elapsed = time.perf_counter() - began

    service = SuggestionService(
        setting.corpus,
        config=setting.xclean(engine="packed").config,
        generator=setting.generator.fresh_cache(),
    )
    for query in queries:
        # Warm the variant/merged caches through the underlying
        # suggester — the same warm start the tuple baseline got —
        # without seeding the service's result cache.
        service.suggester.suggest(query, 10)
    began = time.perf_counter()
    service.suggest_batch(trace, 10)
    service_elapsed = time.perf_counter() - began

    return {
        "trace_queries": len(trace),
        "unique_queries": len(set(trace)),
        "tuple_queries_per_sec": len(trace) / tuple_elapsed,
        "service_queries_per_sec": len(trace) / service_elapsed,
        "result_cache_hits": service.stats.result_cache_hits,
        "result_cache_misses": service.stats.result_cache_misses,
    }


def test_hotpath(benchmark):
    scale = bench_scale()
    setting = dblp_setting(scale)
    queries = workload_queries(setting)

    single = {
        engine: bench_single(setting, engine, queries)
        for engine in ("tuple", "packed")
    }
    single_speedup = (
        single["packed"]["queries_per_sec"]
        / single["tuple"]["queries_per_sec"]
    )
    batch = bench_batch(setting, queries)
    batch_ratio = (
        batch["service_queries_per_sec"]
        / batch["tuple_queries_per_sec"]
    )

    report = {
        "benchmark": "hotpath",
        "scale": scale,
        "dataset": "DBLP",
        "corpus": setting.corpus.describe(),
        "workload_queries": len(queries),
        "repetitions": REPETITIONS,
        "single": {**single, "speedup": single_speedup},
        "batch": {**batch, "throughput_ratio": batch_ratio},
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_hotpath.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    table = format_table(
        ("Engine", "q/s", "mean ms", "p50 ms", "p95 ms", "postings/s"),
        [
            (
                engine,
                round(stats["queries_per_sec"], 1),
                stats["mean_ms"],
                stats["p50_ms"],
                stats["p95_ms"],
                round(stats["postings_per_sec"]),
            )
            for engine, stats in single.items()
        ],
        title=f"Hot path — single queries ({scale} scale)",
    )
    single_floor, batch_floor = FLOORS.get(scale, FLOORS["small"])
    checks = [
        shape_check(
            f"packed engine >= {single_floor}x faster per query "
            f"({single_speedup:.2f}x)",
            single_speedup >= single_floor,
        ),
        shape_check(
            f"batch serving >= {batch_floor}x tuple throughput "
            f"({batch_ratio:.2f}x)",
            batch_ratio >= batch_floor,
        ),
        shape_check(
            "result cache absorbed the repeated trace queries",
            batch["result_cache_hits"]
            >= (TRACE_REPEATS - 1) * batch["unique_queries"] * 0.9,
        ),
    ]
    emit(
        "hotpath",
        table
        + "\n"
        + format_table(
            ("Serving mode", "q/s"),
            [
                ("tuple, one by one", round(
                    batch["tuple_queries_per_sec"], 1)),
                ("packed service, batch", round(
                    batch["service_queries_per_sec"], 1)),
            ],
            title=(
                f"Batch trace — {batch['trace_queries']} queries, "
                f"{batch['unique_queries']} unique"
            ),
        )
        + "\n"
        + "\n".join(checks),
    )
    assert all("[OK ]" in check for check in checks)

    record = setting.workloads["RAND"][0]
    packed = setting.xclean(engine="packed")
    benchmark.pedantic(
        lambda: packed.suggest(record.dirty_text, 10),
        rounds=3,
        iterations=1,
    )
