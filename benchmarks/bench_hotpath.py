"""Hot-path benchmark — packed engine and batch serving vs the seed.

Measures, on the synthetic DBLP dataset:

* single-query latency of ``XCleanSuggester.suggest`` under the tuple
  (seed, reference) and packed (columnar, int-keyed) engines, with warm
  variant/merged-list caches — queries/sec, p50/p95 latency, and
  postings consumed per second;
* **merge-stage time** of the batch merge kernel (galloping
  intersection + plan cache + in-loop γ-pruning) against the classic
  per-group bisect loop, isolated via the stage metrics (merge-stage
  seconds minus the score share measured inside it), after first
  asserting that the kernel's top-k is *byte-identical* to the classic
  loop on every workload query — both engines, pruning on and off;
* batch throughput of ``SuggestionService.suggest_batch`` (packed
  engine + result cache) against the tuple engine serving the same
  trace query by query.  The trace repeats each workload query
  ``TRACE_REPEATS`` times in a shuffled order, the usual shape of a
  production query log (head queries recur).

Shapes asserted at the ``default`` scale: the packed engine answers
single queries >= 2x faster, the merge kernel spends <= 1/2 the
classic loop's merge-stage time, and the serving layer sustains >= 4x
the tuple engine's batch throughput.  At the smoke scales the corpus
is tiny, per-query fixed costs dominate, and only relaxed bounds are
asserted.

Results are emitted both as text (``out/hotpath.txt``) and as
machine-readable JSON (``out/BENCH_hotpath.json``).  Run as a script::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --scale smoke

or through pytest (scale from ``REPRO_BENCH_SCALE``).
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

if __package__ is None or __package__ == "":
    sys.path.insert(0, str(Path(__file__).parent))

from _common import OUT_DIR, bench_scale, emit

from repro.core.server import SuggestionService
from repro.eval.experiments import dblp_setting
from repro.eval.reporting import format_table, shape_check
from repro.obs.metrics import MetricsRegistry

#: Timed passes over the workload per engine (latencies are pooled).
REPETITIONS = 3

#: How often each query recurs in the batch trace.
TRACE_REPEATS = 3

#: Speedup floors asserted per scale: (single-query, batch throughput).
FLOORS = {"default": (2.0, 4.0), "small": (1.1, 2.0)}

#: Merge-stage speedup floor (classic loop time / kernel time) per
#: scale.  The 2x bar is the kernel's acceptance criterion at the
#: default scale; the smoke corpora spend microseconds in the merge
#: stage and only a sanity bound is asserted.
MERGE_FLOORS = {"default": 2.0, "small": 1.05, "smoke": 1.05}


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def workload_queries(setting):
    return [
        record.dirty_text
        for kind in ("RAND", "RULE", "CLEAN")
        for record in setting.workloads[kind]
    ]


def bench_single(setting, engine, queries):
    """Per-query latencies and postings/sec for one engine."""
    suggester = setting.xclean(engine=engine)
    for query in queries:  # warm caches: variants, merged lists, types
        suggester.suggest(query, 10)
    latencies = []
    postings = 0
    clock = time.perf_counter
    for _ in range(REPETITIONS):
        for query in queries:
            began = clock()
            suggester.suggest(query, 10)
            latencies.append(clock() - began)
            postings += suggester.last_stats.postings_read
    elapsed = sum(latencies)
    return {
        "queries_per_sec": len(latencies) / elapsed,
        "mean_ms": 1e3 * elapsed / len(latencies),
        "p50_ms": 1e3 * percentile(latencies, 0.50),
        "p95_ms": 1e3 * percentile(latencies, 0.95),
        "postings_per_sec": postings / elapsed,
    }


def _stage_totals(registry):
    """Cumulative seconds per stage from a registry's stage states."""
    return {
        stage: state[1]
        for stage, state in registry.stage_states().items()
    }


def verify_kernel_outputs(setting, queries):
    """Kernel == classic (byte-identical), == tuple (1e-9), on every
    workload query, pruning on and off.  Raises on any mismatch."""
    checked = 0
    reference = setting.xclean(engine="tuple")
    ref_out = {
        query: [
            (s.tokens, s.score, s.result_type)
            for s in reference.suggest(query, 10)
        ]
        for query in queries
    }
    for pruning in (True, False):
        kernel = setting.xclean(kernel_pruning=pruning)
        classic = setting.xclean(
            merge_kernel=False, kernel_pruning=pruning
        )
        for query in queries:
            got = [
                (s.tokens, s.score, s.result_type)
                for s in kernel.suggest(query, 10)
            ]
            want = [
                (s.tokens, s.score, s.result_type)
                for s in classic.suggest(query, 10)
            ]
            if got != want:
                raise AssertionError(
                    f"kernel output differs from classic loop for "
                    f"{query!r} (kernel_pruning={pruning})"
                )
            ref = ref_out[query]
            if [g[0] for g in got] != [r[0] for r in ref]:
                raise AssertionError(
                    f"kernel top-k differs from tuple engine for "
                    f"{query!r}"
                )
            for g, r in zip(got, ref):
                if abs(g[1] - r[1]) > 1e-9 * max(1.0, abs(r[1])):
                    raise AssertionError(
                        f"kernel score drifted from tuple engine for "
                        f"{query!r}: {g} vs {r}"
                    )
            checked += 1
    return checked


def bench_merge(setting, queries):
    """Merge-stage seconds: batch kernel vs the classic bisect loop.

    The merge stage timer covers the whole Algorithm 1 loop with the
    scoring share reported separately (``score`` is observed from
    inside it), so ``merge - score`` isolates exactly the work the
    kernel replaces: anchor scans, skips, group drains, and entry
    materialization.  Both variants get the same warm start and cache
    bounds sized to the workload, so the comparison is intersect vs
    replay — the kernel's intended steady state.
    """
    plan_capacity = max(64, 4 * len(queries))
    results = {}
    for label, overrides in (
        ("classic", {"merge_kernel": False}),
        ("kernel", {}),
    ):
        registry = MetricsRegistry()
        suggester = setting.xclean(
            merged_cache_size=plan_capacity,
            intersection_cache_size=plan_capacity,
            **overrides,
        )
        suggester.metrics = registry
        for query in queries:  # warm: variants, columns, plans, types
            suggester.suggest(query, 10)
        before = _stage_totals(registry)
        pruned = plan_hits = 0
        for _ in range(REPETITIONS):
            for query in queries:
                suggester.suggest(query, 10)
                pruned += suggester.last_stats.kernel_pruned
                plan_hits += (
                    suggester.last_stats.intersection_cache_hits
                )
        after = _stage_totals(registry)
        merge_s = after.get("merge", 0.0) - before.get("merge", 0.0)
        score_s = after.get("score", 0.0) - before.get("score", 0.0)
        results[label] = {
            "merge_stage_s": merge_s,
            "score_share_s": score_s,
            "merge_only_s": merge_s - score_s,
            "plan_cache_hits": plan_hits,
            "kernel_pruned": pruned,
        }
    results["speedup"] = (
        results["classic"]["merge_only_s"]
        / max(results["kernel"]["merge_only_s"], 1e-9)
    )
    return results


def bench_batch(setting, queries):
    """Batch throughput: packed serving layer vs tuple query-by-query."""
    trace = queries * TRACE_REPEATS
    random.Random(7).shuffle(trace)

    tuple_engine = setting.xclean(engine="tuple")
    for query in queries:
        tuple_engine.suggest(query, 10)  # same warm start as singles
    began = time.perf_counter()
    for query in trace:
        tuple_engine.suggest(query, 10)
    tuple_elapsed = time.perf_counter() - began

    service = SuggestionService(
        setting.corpus,
        config=setting.xclean(engine="packed").config,
        generator=setting.generator.fresh_cache(),
    )
    for query in queries:
        # Warm the variant/merged caches through the underlying
        # suggester — the same warm start the tuple baseline got —
        # without seeding the service's result cache.
        service.suggester.suggest(query, 10)
    began = time.perf_counter()
    service.suggest_batch(trace, 10)
    service_elapsed = time.perf_counter() - began

    return {
        "trace_queries": len(trace),
        "unique_queries": len(set(trace)),
        "tuple_queries_per_sec": len(trace) / tuple_elapsed,
        "service_queries_per_sec": len(trace) / service_elapsed,
        "result_cache_hits": service.stats.result_cache_hits,
        "result_cache_misses": service.stats.result_cache_misses,
    }


def run(scale):
    setting = dblp_setting("small" if scale == "smoke" else scale)
    queries = workload_queries(setting)

    identical = verify_kernel_outputs(setting, queries)
    single = {
        engine: bench_single(setting, engine, queries)
        for engine in ("tuple", "packed")
    }
    single_speedup = (
        single["packed"]["queries_per_sec"]
        / single["tuple"]["queries_per_sec"]
    )
    merge = bench_merge(setting, queries)
    batch = bench_batch(setting, queries)
    batch_ratio = (
        batch["service_queries_per_sec"]
        / batch["tuple_queries_per_sec"]
    )

    report = {
        "benchmark": "hotpath",
        "scale": scale,
        "dataset": "DBLP",
        "corpus": setting.corpus.describe(),
        "workload_queries": len(queries),
        "repetitions": REPETITIONS,
        "kernel_identical_outputs_checked": identical,
        "single": {**single, "speedup": single_speedup},
        "merge": merge,
        "batch": {**batch, "throughput_ratio": batch_ratio},
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_hotpath.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    table = format_table(
        ("Engine", "q/s", "mean ms", "p50 ms", "p95 ms", "postings/s"),
        [
            (
                engine,
                round(stats["queries_per_sec"], 1),
                stats["mean_ms"],
                stats["p50_ms"],
                stats["p95_ms"],
                round(stats["postings_per_sec"]),
            )
            for engine, stats in single.items()
        ],
        title=f"Hot path — single queries ({scale} scale)",
    )
    single_floor, batch_floor = FLOORS.get(scale, FLOORS["small"])
    merge_floor = MERGE_FLOORS.get(scale, MERGE_FLOORS["small"])
    merge_speedup = merge["speedup"]
    checks = [
        shape_check(
            f"packed engine >= {single_floor}x faster per query "
            f"({single_speedup:.2f}x)",
            single_speedup >= single_floor,
        ),
        shape_check(
            f"kernel outputs byte-identical to classic loop "
            f"({identical} query evaluations)",
            identical == 2 * len(queries),
        ),
        shape_check(
            f"merge kernel >= {merge_floor}x faster on the merge "
            f"stage ({merge_speedup:.2f}x)",
            merge_speedup >= merge_floor,
        ),
        shape_check(
            "plan cache absorbed the warm merge passes",
            merge["kernel"]["plan_cache_hits"]
            >= REPETITIONS * len(queries) * 0.9,
        ),
        shape_check(
            f"batch serving >= {batch_floor}x tuple throughput "
            f"({batch_ratio:.2f}x)",
            batch_ratio >= batch_floor,
        ),
        shape_check(
            "result cache absorbed the repeated trace queries",
            batch["result_cache_hits"]
            >= (TRACE_REPEATS - 1) * batch["unique_queries"] * 0.9,
        ),
    ]
    merge_table = format_table(
        ("Merge loop", "merge-only ms", "score ms", "plan hits"),
        [
            (
                label,
                round(1e3 * merge[label]["merge_only_s"], 2),
                round(1e3 * merge[label]["score_share_s"], 2),
                merge[label]["plan_cache_hits"],
            )
            for label in ("classic", "kernel")
        ],
        title=(
            f"Merge stage — {REPETITIONS} warm passes, "
            f"{len(queries)} queries, "
            f"speedup {merge_speedup:.2f}x"
        ),
    )
    emit(
        "hotpath",
        table
        + "\n"
        + merge_table
        + "\n"
        + format_table(
            ("Serving mode", "q/s"),
            [
                ("tuple, one by one", round(
                    batch["tuple_queries_per_sec"], 1)),
                ("packed service, batch", round(
                    batch["service_queries_per_sec"], 1)),
            ],
            title=(
                f"Batch trace — {batch['trace_queries']} queries, "
                f"{batch['unique_queries']} unique"
            ),
        )
        + "\n"
        + "\n".join(checks),
    )
    assert all("[OK ]" in check for check in checks)
    return report


def test_hotpath(benchmark):
    setting = dblp_setting(bench_scale())
    run(bench_scale())

    record = setting.workloads["RAND"][0]
    packed = setting.xclean(engine="packed")
    benchmark.pedantic(
        lambda: packed.suggest(record.dirty_text, 10),
        rounds=3,
        iterations=1,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Hot-path benchmark (packed engine, merge kernel)"
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "small", "default"),
        default=bench_scale(),
    )
    args = parser.parse_args(argv)
    run(args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
