"""Table IV — MRR as a function of the error penalty β.

Paper shape: MRR improves quickly from β = 0 (no spelling penalty:
frequent distant variants hijack the ranking) to β = 5, then plateaus;
on INEX a minor decrease can appear beyond β = 5.  β = 5 is the
best setting almost everywhere.
"""

from _common import WORKLOAD_ORDER, bench_scale, emit, settings

from repro.eval.experiments import eps_for
from repro.eval.reporting import format_table, shape_check
from repro.eval.runner import evaluate_suggester

BETAS = (0.0, 1.0, 3.0, 5.0, 7.0, 10.0)


def test_table4_beta_sweep(benchmark):
    scale = bench_scale()
    by_label = settings(scale)
    mrr: dict[tuple[str, str, float], float] = {}
    rows = []
    for dataset, kind in WORKLOAD_ORDER:
        setting = by_label[dataset]
        row = [f"{dataset}-{kind}"]
        for beta in BETAS:
            suggester = setting.xclean(
                beta=beta, max_errors=eps_for(kind)
            )
            result = evaluate_suggester(
                suggester, setting.workloads[kind]
            )
            mrr[(dataset, kind, beta)] = result.mrr
            row.append(result.mrr)
        rows.append(tuple(row))
    table = format_table(
        ("Query set", *(f"β={b:g}" for b in BETAS)),
        rows,
        title=f"Table IV — MRR vs β ({scale} scale, γ=1000)",
    )

    checks = []
    for dataset, kind in WORKLOAD_ORDER:
        at0 = mrr[(dataset, kind, 0.0)]
        at5 = mrr[(dataset, kind, 5.0)]
        checks.append(
            shape_check(
                f"{dataset}-{kind}: β=5 at least as good as β=0 "
                f"({at5:.2f} vs {at0:.2f})",
                at5 >= at0,
            )
        )
        plateau = max(
            abs(mrr[(dataset, kind, b)] - at5) for b in (7.0, 10.0)
        )
        checks.append(
            shape_check(
                f"{dataset}-{kind}: plateau beyond β=5 "
                f"(max change {plateau:.2f})",
                plateau <= 0.15,
            )
        )
    # The sharp-rise claim concerns the dirty sets in aggregate.
    dirty_rise = [
        mrr[(d, k, 5.0)] - mrr[(d, k, 0.0)]
        for d, k in WORKLOAD_ORDER
        if k != "CLEAN"
    ]
    checks.append(
        shape_check(
            "MRR rises from β=0 to β=5 on dirty sets "
            f"(mean gain {sum(dirty_rise)/len(dirty_rise):.2f})",
            sum(dirty_rise) / len(dirty_rise) > 0.02,
        )
    )
    emit("table4_beta_sweep", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    setting = by_label["DBLP"]
    record = setting.workloads["RAND"][0]
    low_beta = setting.xclean(beta=0.0)
    benchmark.pedantic(
        lambda: low_beta.suggest(record.dirty_text, 10),
        rounds=3,
        iterations=1,
    )
