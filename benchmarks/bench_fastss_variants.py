"""Micro-benchmark — FastSS variant generation (Section V-A).

The paper uses a (partitioned) FastSS index because it is "one of the
fastest approximate string matching methods under edit distance
constraints".  We compare plain FastSS, partitioned FastSS, and the
brute-force scan, asserting:

* all three return identical variant sets (correctness);
* both indexes are much faster than the brute-force scan;
* partitioning shrinks the index (bucket count) on long-token
  vocabularies — the paper's space argument.
"""

import time

from _common import bench_scale, emit, settings

from repro.eval.reporting import format_table, shape_check
from repro.fastss.index import (
    BruteForceVariants,
    FastSSIndex,
    PartitionedFastSSIndex,
)

PROBE_WORDS = (
    "clusttering",
    "architcture",
    "verifcation",
    "datbase",
    "montor",
    "indx",
)


def test_fastss_variants(benchmark):
    scale = bench_scale()
    setting = settings(scale)["INEX"]
    tokens = sorted(setting.corpus.vocabulary.tokens())

    plain = FastSSIndex(tokens, max_errors=2)
    partitioned = PartitionedFastSSIndex(
        tokens, max_errors=2, partition_threshold=7
    )
    brute = BruteForceVariants(tokens, max_errors=2)

    def probe_all(index):
        return [index.variants(word, 2) for word in PROBE_WORDS]

    identical = (
        probe_all(plain) == probe_all(partitioned) == probe_all(brute)
    )

    timings = {}
    for name, index in (
        ("FastSS", plain),
        ("Partitioned", partitioned),
        ("BruteForce", brute),
    ):
        started = time.perf_counter()
        for _ in range(3):
            probe_all(index)
        timings[name] = (time.perf_counter() - started) / (
            3 * len(PROBE_WORDS)
        )

    rows = [
        (name, timings[name] * 1000)
        for name in ("FastSS", "Partitioned", "BruteForce")
    ]
    table = format_table(
        ("method", "per-keyword variants (ms)"),
        rows,
        title=f"FastSS variant generation over |V|={len(tokens)} "
        f"({scale} scale)",
    )
    checks = [
        shape_check("all three methods agree exactly", identical),
        shape_check(
            "plain FastSS beats brute force "
            f"({timings['BruteForce']/timings['FastSS']:.0f}x)",
            timings["FastSS"] < timings["BruteForce"],
        ),
        shape_check(
            "partitioned FastSS beats brute force "
            f"({timings['BruteForce']/timings['Partitioned']:.0f}x)",
            timings["Partitioned"] < timings["BruteForce"],
        ),
        shape_check(
            "partitioning shrinks the signature space "
            f"(plain buckets {plain.bucket_count})",
            partitioned._short.bucket_count
            + len(partitioned._prefix_buckets)
            + len(partitioned._suffix_buckets)
            < plain.bucket_count,
        ),
    ]
    emit("fastss_variants", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    benchmark.pedantic(
        lambda: partitioned.variants("clusttering", 2),
        rounds=10,
        iterations=1,
    )
