"""Table VI — average query processing time, XClean vs PY08.

Paper shapes asserted:

* XClean is substantially faster than PY08 (the paper reports 5–10×
  wall-clock on its disk-backed Java system; on this in-memory Python
  substrate the wall-clock gap is smaller, so we assert the wall-clock
  *direction* everywhere plus the underlying I/O ratio, which is the
  mechanism the paper credits: single-pass + skipping vs multi-pass);
* RULE queries are the slowest workload for both systems (larger
  variant sets → larger candidate space);
* INEX (bigger vocabulary, longer lists) is slower than DBLP for the
  matched workloads.
"""

from _common import (
    WORKLOAD_ORDER,
    bench_scale,
    emit,
    settings,
    standard_result,
)

from repro.eval.reporting import format_table, shape_check


def test_table6_runtime(benchmark):
    scale = bench_scale()
    rows = []
    times: dict[tuple[str, str, str], float] = {}
    reads: dict[tuple[str, str, str], float] = {}
    for dataset, kind in WORKLOAD_ORDER:
        row = [f"{dataset}-{kind}"]
        for system in ("XClean", "PY08"):
            result = standard_result(scale, dataset, kind, system)
            times[(system, dataset, kind)] = result.mean_time
            row.append(result.mean_time * 1000)
        # Postings read per query (I/O proxy), re-measured on one
        # representative query per system.
        setting = settings(scale)[dataset]
        record = setting.workloads[kind][0]
        from repro.eval.experiments import eps_for

        for system, factory in (
            ("XClean", setting.xclean),
            ("PY08", setting.py08),
        ):
            suggester = factory(max_errors=eps_for(kind))
            suggester.suggest(record.dirty_text, 10)
            reads[(system, dataset, kind)] = (
                suggester.last_stats.postings_read
            )
            row.append(suggester.last_stats.postings_read)
        rows.append(tuple(row))
    table = format_table(
        (
            "Query set",
            "XClean (ms)",
            "PY08 (ms)",
            "XClean reads",
            "PY08 reads",
        ),
        rows,
        title=f"Table VI — mean query time and I/O ({scale} scale)",
    )

    checks = []
    for dataset, kind in WORKLOAD_ORDER:
        checks.append(
            shape_check(
                f"XClean faster than PY08 on {dataset}-{kind} "
                f"({times[('XClean', dataset, kind)]*1000:.1f} vs "
                f"{times[('PY08', dataset, kind)]*1000:.1f} ms)",
                times[("XClean", dataset, kind)]
                < times[("PY08", dataset, kind)],
            )
        )
        ratio = reads[("PY08", dataset, kind)] / max(
            1, reads[("XClean", dataset, kind)]
        )
        checks.append(
            shape_check(
                f"PY08 reads >= 5x XClean's postings on "
                f"{dataset}-{kind} (ratio {ratio:.0f}x)",
                ratio >= 5,
            )
        )
    for dataset in ("DBLP", "INEX"):
        rule = times[("XClean", dataset, "RULE")]
        rand = times[("XClean", dataset, "RAND")]
        checks.append(
            shape_check(
                f"RULE slowest XClean workload on {dataset} "
                f"({rule*1000:.1f} vs {rand*1000:.1f} ms)",
                rule > rand,
            )
        )
    for kind in ("RAND", "RULE", "CLEAN"):
        checks.append(
            shape_check(
                f"INEX slower than DBLP for XClean on {kind}",
                times[("XClean", "INEX", kind)]
                > 0.8 * times[("XClean", "DBLP", kind)],
            )
        )
    emit("table6_runtime", table + "\n" + "\n".join(checks))
    # Wall-clock comparisons can jitter; require the I/O and workload
    # shape checks strictly and allow one wall-clock miss.
    wallclock = [c for c in checks if "faster than" in c]
    other = [c for c in checks if "faster than" not in c]
    assert all("[OK ]" in c for c in other)
    assert sum("[OK ]" in c for c in wallclock) >= len(wallclock) - 1

    setting = settings(scale)["DBLP"]
    record = setting.workloads["RAND"][0]
    xclean = setting.xclean()
    py08 = setting.py08()
    benchmark.pedantic(
        lambda: (
            xclean.suggest(record.dirty_text, 10),
            py08.suggest(record.dirty_text, 10),
        ),
        rounds=3,
        iterations=1,
    )
