"""Table I — dataset statistics (size, #nodes, max/avg depth).

Paper values (real datasets):

    INEX  5878 MB  52M nodes  max depth 50  avg depth 5.58
    DBLP   526 MB  12M nodes  max depth  7  avg depth 3.8

Our substitutes are scaled down but must preserve the qualitative
contrasts: INEX bigger, much deeper, larger vocabulary; DBLP shallow
and regular.  The benchmark also times a full index build.
"""

from _common import bench_scale, emit, settings

from repro.eval.reporting import format_table, shape_check
from repro.index.corpus import build_corpus_index


def test_table1_dataset_stats(benchmark):
    scale = bench_scale()
    by_label = settings(scale)
    rows = []
    vocab_sizes = {}
    for label in ("INEX", "DBLP"):
        setting = by_label[label]
        stats = setting.document.stats
        vocab_sizes[label] = len(setting.corpus.vocabulary)
        row = stats.as_row()
        rows.append(
            (
                label,
                row["size (MB)"],
                row["#node"],
                row["max depth"],
                row["avg depth"],
                vocab_sizes[label],
            )
        )
    table = format_table(
        ("Dataset", "size (MB)", "#node", "max depth", "avg depth",
         "|V|"),
        rows,
        title=f"Table I — dataset statistics ({scale} scale)",
    )

    inex = by_label["INEX"].document.stats
    dblp = by_label["DBLP"].document.stats
    checks = [
        shape_check(
            "INEX is larger than DBLP",
            inex.size_bytes > dblp.size_bytes,
        ),
        shape_check(
            "INEX max depth exceeds DBLP's",
            inex.max_depth > dblp.max_depth,
        ),
        shape_check(
            "INEX avg depth exceeds DBLP's",
            inex.avg_depth > dblp.avg_depth,
        ),
        shape_check(
            "INEX vocabulary is several times DBLP's",
            vocab_sizes["INEX"] > 2 * vocab_sizes["DBLP"],
        ),
    ]
    emit("table1_dataset_stats", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    # Benchmark: full index construction for the DBLP document.
    document = by_label["DBLP"].document
    benchmark.pedantic(
        lambda: build_corpus_index(document), rounds=1, iterations=1
    )
