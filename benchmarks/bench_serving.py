"""Serving-layer benchmark — instrumentation overhead and pool reuse.

Measures, on the synthetic DBLP dataset:

* single-query hot-path latency of ``XCleanSuggester.suggest`` with
  metrics disabled (``NULL_METRICS``, the default for raw suggesters)
  against the same suggester carrying a live ``MetricsRegistry`` —
  the overhead guard of the observability layer.  Passes alternate
  between the two configurations so clock drift and cache effects hit
  both equally, and the best-of-N pass time is compared;
* throughput of ``SuggestionService.suggest_batch`` over a skewed
  trace (the service always carries a registry), with the stage-level
  snapshot embedded in the JSON artifact;
* persistent-pool reuse: two consecutive parallel batches must share
  one pool start and answer everything without degrading;
* fault-hook overhead: the ``repro.obs.faults`` injection sites with
  no plan installed vs an armed-but-idle plan — both inside the same
  ceiling as the metrics instrumentation;
* ops-plane overhead: the per-request work the observability plane
  adds at the HTTP edge — one SLO ring-buffer record plus one JSONL
  access-log line per query — against the bare suggest path;
* live-update stage timers: one apply → compact cycle through an
  instrumented service, with the ``wal_append`` / ``delta_apply`` /
  ``compact`` / ``swap`` stage histograms embedded in the artifact.

Shapes asserted: instrumentation overhead stays under 5% at the
``default`` scale (per-query work dominates a handful of counter
bumps); the ops-plane (SLO rings + request logging) stays inside the
same ceiling; at the tiny ``small`` smoke scale queries take
microseconds, fixed costs dominate, and only a relaxed bound is
asserted.

Results are emitted as text (``out/serving.txt``) and JSON
(``out/BENCH_serving.json``).
"""

import json
import random
import tempfile
import time
from pathlib import Path

from _common import OUT_DIR, bench_scale, emit

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.eval.experiments import dblp_setting
from repro.eval.reporting import format_table, shape_check
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.index.storage_binary import (
    load_index_binary,
    save_index_binary,
)
from repro.index.wal import WalRecord
from repro.obs import INDEX_LOAD_STAGE, MetricsRegistry, faults
from repro.obs.logging import NULL_REQUEST_LOG, RequestLog
from repro.obs.slo import NULL_SLO, SLOTracker
from repro.obs.trace import NULL_TRACER, Tracer
from repro.xmltree.node import XMLNode

#: Alternating timed passes per configuration (best-of wins).
PASSES = 7

#: How often each query recurs in the serving trace.
TRACE_REPEATS = 3

#: Max instrumented/disabled time ratio per scale.
OVERHEAD_CEILINGS = {"default": 1.05, "small": 1.35}


def workload_queries(setting):
    return [
        record.dirty_text
        for kind in ("RAND", "RULE", "CLEAN")
        for record in setting.workloads[kind]
    ]


def make_suggester(setting, metrics=None, tracer=None):
    return XCleanSuggester(
        setting.corpus,
        generator=setting.generator.fresh_cache(),
        config=XCleanConfig(max_errors=2, beta=5.0, gamma=1000),
        metrics=metrics,
        tracer=tracer,
    )


def timed_pass(suggester, queries):
    clock = time.perf_counter
    began = clock()
    for query in queries:
        suggester.suggest(query, 10)
    return clock() - began


def bench_overhead(setting, queries):
    """Best-of-N pass time, metrics disabled vs live registry."""
    plain = make_suggester(setting)
    registry = MetricsRegistry()
    instrumented = make_suggester(setting, metrics=registry)
    for suggester in (plain, instrumented):
        for query in queries:  # warm variant/merged/type caches
            suggester.suggest(query, 10)
    plain_times, instrumented_times = [], []
    for _ in range(PASSES):
        plain_times.append(timed_pass(plain, queries))
        instrumented_times.append(timed_pass(instrumented, queries))
    best_plain = min(plain_times)
    best_instrumented = min(instrumented_times)
    stages = registry.snapshot().as_dict()["stages"]
    return {
        "queries_per_pass": len(queries),
        "passes": PASSES,
        "disabled_best_s": best_plain,
        "enabled_best_s": best_instrumented,
        "overhead_ratio": best_instrumented / best_plain,
        "stages": stages,
    }


def bench_trace_overhead(setting, queries):
    """Hot-path cost of the tracing hooks.

    Three configurations, timed with alternating passes: a plain
    suggester (the implicit ``NULL_TRACER`` default), one carrying an
    explicit ``NULL_TRACER`` (the disabled path every instrumented
    call site pays), and one with a live ``Tracer`` building a full
    span tree per query.  The disabled ratio must stay inside the
    instrumentation ceiling; the enabled ratio is recorded for the
    artifact but not asserted — span capture is opt-in and priced
    separately.
    """
    plain = make_suggester(setting)
    disabled = make_suggester(setting, tracer=NULL_TRACER)
    traced = make_suggester(setting, tracer=Tracer())
    for suggester in (plain, disabled, traced):
        for query in queries:  # warm variant/merged/type caches
            suggester.suggest(query, 10)
    plain_times, disabled_times, traced_times = [], [], []
    for _ in range(PASSES):
        plain_times.append(timed_pass(plain, queries))
        disabled_times.append(timed_pass(disabled, queries))
        traced_times.append(timed_pass(traced, queries))
    best_plain = min(plain_times)
    best_disabled = min(disabled_times)
    best_traced = min(traced_times)
    return {
        "queries_per_pass": len(queries),
        "passes": PASSES,
        "plain_best_s": best_plain,
        "disabled_best_s": best_disabled,
        "enabled_best_s": best_traced,
        "disabled_ratio": best_disabled / best_plain,
        "enabled_ratio": best_traced / best_plain,
    }


def bench_fault_overhead(setting, queries):
    """Hot-path cost of the fault-injection hooks.

    With no plan installed the hooks are one attribute load and a
    falsy branch per site (``NULL_FAULTS``); an *armed but idle* plan
    (targeting ``worker.init``, a site the in-process path never hits)
    additionally pays one dict miss per guarded site.  Both must stay
    within the instrumentation ceiling — passes alternate so cache and
    clock effects hit the two configurations equally.
    """
    baseline = make_suggester(setting)
    armed = make_suggester(setting)
    for suggester in (baseline, armed):
        for query in queries:  # warm variant/merged/type caches
            suggester.suggest(query, 10)
    baseline_times, armed_times = [], []
    try:
        for _ in range(PASSES):
            faults.uninstall()
            baseline_times.append(timed_pass(baseline, queries))
            faults.install_spec("worker.init:raise")
            armed_times.append(timed_pass(armed, queries))
    finally:
        faults.uninstall()
    best_baseline = min(baseline_times)
    best_armed = min(armed_times)
    return {
        "queries_per_pass": len(queries),
        "passes": PASSES,
        "disabled_best_s": best_baseline,
        "armed_idle_best_s": best_armed,
        "overhead_ratio": best_armed / best_baseline,
    }


def ops_pass(suggester, queries, slo, log):
    """One timed pass through the front-end's per-request ops work.

    The same loop shape runs for both configurations — only the ops
    objects differ (live tracker + JSONL log vs their null twins), so
    the measured delta is exactly what the ops plane adds, not harness
    bookkeeping.  This mirrors the front-end: the SLO record is
    unconditional, the access-log line is behind the ``enabled`` flag.
    """
    clock = time.perf_counter
    began = clock()
    for query in queries:
        q_began = clock()
        suggester.suggest(query, 10)
        elapsed = clock() - q_began
        slo.record("served", elapsed)
        if log.enabled:
            log.log({
                "id": "bench", "method": "GET",
                "path": "/suggest", "status": 200,
                "outcome": "served",
                "latency_s": round(elapsed, 6),
            })
    return clock() - began


def bench_ops_overhead(setting, queries):
    """Per-request cost of the ops plane: SLO ring + access-log line.

    The HTTP front-end pays exactly this per answered request — one
    ``SLOTracker.record`` (a couple of dict bumps in a per-second
    ring cell) and one JSONL line (dict → json.dumps → buffered write
    + flush).  Passes alternate between the null-ops path and the
    live-ops path so clock drift and cache effects hit both equally;
    the best-of-N ratio must stay inside the instrumentation ceiling.
    """
    plain = make_suggester(setting)
    instrumented = make_suggester(setting)
    for suggester in (plain, instrumented):
        for query in queries:  # warm variant/merged/type caches
            suggester.suggest(query, 10)
    plain_times, ops_times = [], []
    with tempfile.TemporaryDirectory() as tmp:
        log = RequestLog(str(Path(tmp) / "access.jsonl"))
        slo = SLOTracker()
        try:
            for _ in range(PASSES):
                plain_times.append(
                    ops_pass(plain, queries, NULL_SLO, NULL_REQUEST_LOG)
                )
                ops_times.append(
                    ops_pass(instrumented, queries, slo, log)
                )
        finally:
            log.close()
    best_plain = min(plain_times)
    best_ops = min(ops_times)
    return {
        "queries_per_pass": len(queries),
        "passes": PASSES,
        "disabled_best_s": best_plain,
        "enabled_best_s": best_ops,
        "overhead_ratio": best_ops / best_plain,
        "slo_availability_1m": slo.window_report(60)["availability"],
    }


def _book_record(token: str) -> WalRecord:
    from repro.index.delta import node_to_json

    node = XMLNode("book")
    node.add_child(XMLNode("title", text=f"{token} consistency"))
    node.add_child(XMLNode("author", text="spanner"))
    return WalRecord(op="add", dewey=(1,), subtree=node_to_json(node))


def bench_live_update_stages(setting):
    """One apply → compact cycle, read back through the stage timers.

    Runs the live-update pipeline against a throwaway snapshot with a
    live registry attached, then reports the per-stage histograms the
    pipeline now emits (``wal_append``, ``delta_apply``, ``compact``,
    ``swap``) plus the WAL/compaction counters — the numbers
    ``xclean metrics --ops`` and ``/statusz`` surface in production.
    """
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "live.xcs3")
        build_snapshot(setting.corpus, path)
        with SuggestionService(
            load_snapshot(path),
            config=XCleanConfig(max_errors=2, beta=5.0, gamma=1000),
            metrics=registry,
        ) as service:
            service.enable_live_updates(setting.document)
            for i in range(3):
                service.apply_updates([_book_record(f"zanzibar{i}x")])
            service.compact()
            live_status = service.live.status()
    snapshot = registry.snapshot().as_dict()
    stages = {
        name: stats
        for name, stats in snapshot["stages"].items()
        if name in ("wal_append", "delta_apply", "compact", "swap")
    }
    counters = {
        key: value
        for key, value in snapshot["counters"].items()
        if key.startswith(("wal_", "compactions_",
                           "generation_swaps"))
    }
    return {
        "updates_applied": 3,
        "stages": stages,
        "counters": counters,
        "last_compaction": live_status["last_compaction"],
    }


def bench_service(setting, queries):
    """Instrumented batch serving over a skewed trace."""
    trace = queries * TRACE_REPEATS
    random.Random(7).shuffle(trace)
    with SuggestionService(
        setting.corpus,
        config=XCleanConfig(max_errors=2, beta=5.0, gamma=1000),
        generator=setting.generator.fresh_cache(),
    ) as service:
        for query in queries:
            # Warm the suggester memos without seeding the result cache.
            service.suggester.suggest(query, 10)
        began = time.perf_counter()
        service.suggest_batch(trace, 10)
        elapsed = time.perf_counter() - began
        snapshot = service.metrics().as_dict()
        return {
            "trace_queries": len(trace),
            "unique_queries": len(set(trace)),
            "queries_per_sec": len(trace) / elapsed,
            "result_cache_hits": service.stats.result_cache_hits,
            "result_cache_misses": service.stats.result_cache_misses,
            "counters": snapshot["counters"],
        }


def bench_index_load(setting):
    """The index_load stage: v2 deserialization vs v3 mmap, timed
    through the same ``stage_seconds`` family the query stages use."""
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory() as tmp:
        binary_path = Path(tmp) / "dblp.xcib"
        snapshot_path = Path(tmp) / "dblp.xcs3"
        save_index_binary(setting.corpus, str(binary_path))
        build_snapshot(
            setting.corpus,
            str(snapshot_path),
            generator=setting.generator,
        )
        with registry.stage(INDEX_LOAD_STAGE):
            load_index_binary(str(binary_path))
        binary_s = registry.snapshot().as_dict()["stages"][
            INDEX_LOAD_STAGE
        ]["sum"]
        load_snapshot(str(snapshot_path), metrics=registry)
        total_s = registry.snapshot().as_dict()["stages"][
            INDEX_LOAD_STAGE
        ]["sum"]
    return {
        "binary_load_s": binary_s,
        "snapshot_load_s": total_s - binary_s,
        "stage": registry.snapshot().as_dict()["stages"][
            INDEX_LOAD_STAGE
        ],
    }


def bench_pool_reuse(setting, queries):
    """Two parallel batches must share one persistent pool."""
    half = max(1, len(queries) // 2)
    with SuggestionService(
        setting.corpus,
        config=XCleanConfig(max_errors=2, beta=5.0, gamma=1000),
        generator=setting.generator.fresh_cache(),
    ) as service:
        first = service.suggest_batch(queries[:half], 10, workers=2)
        second = service.suggest_batch(queries[half:], 10, workers=2)
        return {
            "batches": 2,
            "answers": len(first) + len(second),
            "pool_starts": service.stats.pool_starts,
            "pool_recycles": service.stats.pool_recycles,
            "degraded_queries": service.stats.degraded_queries,
            "worker_timeouts": service.stats.worker_timeouts,
        }


def test_serving(benchmark):
    scale = bench_scale()
    setting = dblp_setting(scale)
    queries = workload_queries(setting)

    overhead = bench_overhead(setting, queries)
    trace_overhead = bench_trace_overhead(setting, queries)
    fault_overhead = bench_fault_overhead(setting, queries)
    ops_overhead = bench_ops_overhead(setting, queries)
    service = bench_service(setting, queries)
    pool = bench_pool_reuse(setting, queries)
    index_load = bench_index_load(setting)
    live_update = bench_live_update_stages(setting)

    ceiling = OVERHEAD_CEILINGS.get(scale, OVERHEAD_CEILINGS["small"])
    report = {
        "benchmark": "serving",
        "scale": scale,
        "dataset": "DBLP",
        "corpus": setting.corpus.describe(),
        "overhead": {**overhead, "ceiling": ceiling},
        "trace_overhead": {**trace_overhead, "ceiling": ceiling},
        "fault_overhead": {**fault_overhead, "ceiling": ceiling},
        "ops_overhead": {**ops_overhead, "ceiling": ceiling},
        "service": service,
        "pool": pool,
        "index_load": index_load,
        "live_update": live_update,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_serving.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    ratio = overhead["overhead_ratio"]
    table = format_table(
        ("Configuration", "best pass (ms)", "per query (us)"),
        [
            (
                name,
                1e3 * overhead[key],
                1e6 * overhead[key] / overhead["queries_per_pass"],
            )
            for name, key in (
                ("metrics disabled", "disabled_best_s"),
                ("metrics enabled", "enabled_best_s"),
            )
        ],
        title=f"Instrumentation overhead ({scale} scale)",
    )
    trace_table = format_table(
        ("Configuration", "best pass (ms)", "per query (us)"),
        [
            (
                name,
                1e3 * trace_overhead[key],
                1e6
                * trace_overhead[key]
                / trace_overhead["queries_per_pass"],
            )
            for name, key in (
                ("no tracer (default)", "plain_best_s"),
                ("NULL_TRACER explicit", "disabled_best_s"),
                ("live Tracer", "enabled_best_s"),
            )
        ],
        title=f"Tracing overhead ({scale} scale)",
    )
    stage_table = format_table(
        ("Stage", "count", "mean ms", "p95 ms"),
        [
            (
                name,
                stats["count"],
                1e3 * stats["mean"],
                1e3 * stats["p95"],
            )
            for name, stats in sorted(overhead["stages"].items())
        ],
        title="Stage timers (instrumented run)",
    )
    ops_table = format_table(
        ("Configuration", "best pass (ms)", "per query (us)"),
        [
            (
                name,
                1e3 * ops_overhead[key],
                1e6
                * ops_overhead[key]
                / ops_overhead["queries_per_pass"],
            )
            for name, key in (
                ("bare suggest", "disabled_best_s"),
                ("suggest + SLO + access log", "enabled_best_s"),
            )
        ],
        title=f"Ops-plane overhead ({scale} scale)",
    )
    live_table = format_table(
        ("Live-update stage", "count", "mean ms", "p95 ms"),
        [
            (
                name,
                stats["count"],
                1e3 * stats["mean"],
                1e3 * stats["p95"],
            )
            for name, stats in sorted(live_update["stages"].items())
        ],
        title="Live-update stage timers (apply x3 + compact)",
    )
    fault_ratio = fault_overhead["overhead_ratio"]
    ops_ratio = ops_overhead["overhead_ratio"]
    trace_disabled = trace_overhead["disabled_ratio"]
    trace_enabled = trace_overhead["enabled_ratio"]
    live_stage_names = set(live_update["stages"])
    checks = [
        shape_check(
            f"instrumentation overhead {ratio:.3f}x <= {ceiling}x",
            ratio <= ceiling,
        ),
        shape_check(
            f"tracing-disabled overhead {trace_disabled:.3f}x <= "
            f"{ceiling}x (enabled recorded: {trace_enabled:.3f}x)",
            trace_disabled <= ceiling,
        ),
        shape_check(
            f"fault-hook overhead {fault_ratio:.3f}x <= {ceiling}x "
            f"(armed idle plan vs no plan)",
            fault_ratio <= ceiling,
        ),
        shape_check(
            f"ops-plane overhead {ops_ratio:.3f}x <= {ceiling}x "
            f"(SLO ring + access-log line per query)",
            ops_ratio <= ceiling,
        ),
        shape_check(
            "live-update stage timers recorded "
            "(wal_append, delta_apply, compact, swap)",
            live_stage_names
            >= {"wal_append", "delta_apply", "compact", "swap"}
            and live_update["last_compaction"]["outcome"] == "ok",
        ),
        shape_check(
            "result cache absorbed the repeated trace queries",
            service["result_cache_hits"]
            >= (TRACE_REPEATS - 1) * service["unique_queries"] * 0.9,
        ),
        shape_check(
            "persistent pool started once across two parallel batches",
            pool["pool_starts"] == 1 and pool["pool_recycles"] == 0,
        ),
        shape_check(
            "no parallel query degraded or timed out",
            pool["degraded_queries"] == 0
            and pool["worker_timeouts"] == 0,
        ),
    ]
    emit(
        "serving",
        table
        + "\n"
        + trace_table
        + "\n"
        + stage_table
        + "\n"
        + ops_table
        + "\n"
        + live_table
        + "\n"
        + format_table(
            ("Serving trace", "value"),
            [
                ("queries", service["trace_queries"]),
                ("unique", service["unique_queries"]),
                ("q/s", round(service["queries_per_sec"], 1)),
                ("cache hits", service["result_cache_hits"]),
            ],
            title="Instrumented batch serving",
        )
        + "\n"
        + format_table(
            ("index_load stage", "ms"),
            [
                ("v2 binary", 1e3 * index_load["binary_load_s"]),
                ("v3 snapshot", 1e3 * index_load["snapshot_load_s"]),
            ],
            title="Cold-start stage timer (one load each)",
        )
        + "\n"
        + "\n".join(checks),
    )
    assert all("[OK ]" in check for check in checks)

    instrumented = make_suggester(setting, metrics=MetricsRegistry())
    record = setting.workloads["RAND"][0]
    instrumented.suggest(record.dirty_text, 10)  # warm
    benchmark.pedantic(
        lambda: instrumented.suggest(record.dirty_text, 10),
        rounds=3,
        iterations=1,
    )
