"""Shared infrastructure for the benchmark harness.

Every benchmark file regenerates one table or figure of the paper,
prints it, writes it to ``benchmarks/out/<name>.txt``, and checks the
*shape* claims the paper makes about it (who wins, what is slowest,
where curves flatten).  Absolute numbers are not expected to match the
paper — the substrate is a Python simulator over synthetic data — but
every qualitative claim is asserted.

Heavy work (dataset builds, the standard 4-system × 6-workload
evaluation) is memoized per process so the whole suite builds each
corpus once.

Set ``REPRO_BENCH_SCALE=small`` for a quick smoke run, and
``REPRO_BENCH_OUT=<dir>`` to redirect artifacts away from the
committed ``benchmarks/out/`` baseline (the regression gate in
``compare.py`` diffs the two).
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.eval.experiments import (
    DatasetSetting,
    all_settings,
    eps_for,
)
from repro.eval.runner import EvalResult, evaluate_suggester

# Artifact directory; REPRO_BENCH_OUT redirects it so CI can write
# candidate results next to (not over) the committed baseline.
OUT_DIR = Path(
    os.environ.get("REPRO_BENCH_OUT", str(Path(__file__).parent / "out"))
)

WORKLOAD_KINDS = ("CLEAN", "RAND", "RULE")

#: Workload order used across the paper's tables.
WORKLOAD_ORDER = (
    ("DBLP", "RAND"),
    ("DBLP", "RULE"),
    ("DBLP", "CLEAN"),
    ("INEX", "RAND"),
    ("INEX", "RULE"),
    ("INEX", "CLEAN"),
)


def bench_scale() -> str:
    """Benchmark scale; override with REPRO_BENCH_SCALE=small."""
    return os.environ.get("REPRO_BENCH_SCALE", "default")


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


@lru_cache(maxsize=2)
def settings(scale: str) -> dict[str, DatasetSetting]:
    """Both dataset settings, keyed by label."""
    return {s.label: s for s in all_settings(scale)}


def make_suggester(setting: DatasetSetting, system: str, kind: str):
    """Instantiate one of the standard systems for a workload kind."""
    eps = eps_for(kind)
    if system == "XClean":
        return setting.xclean(max_errors=eps)
    if system == "PY08":
        return setting.py08(max_errors=eps)
    if system == "SE1":
        return setting.se1(max_errors=eps)
    if system == "SE2":
        return setting.se2(max_errors=eps)
    raise ValueError(f"unknown system {system!r}")


@lru_cache(maxsize=64)
def standard_result(
    scale: str, dataset: str, kind: str, system: str
) -> EvalResult:
    """One memoized (system, dataset, workload) evaluation."""
    setting = settings(scale)[dataset]
    suggester = make_suggester(setting, system, kind)
    k = 1 if system.startswith("SE") else 10
    return evaluate_suggester(
        suggester,
        setting.workloads[kind],
        k=k,
        system=system,
        workload=f"{dataset}-{kind}",
    )


def mrr_of(scale: str, dataset: str, kind: str, system: str) -> float:
    return standard_result(scale, dataset, kind, system).mrr
