"""Ablation — pluggable error models (Section IV-B1 / VI-A).

The framework claims to "accommodate different error models without
losing rigor".  We swap the exponential model (Eq. 4/5) for the Mays
α-model (Eq. 3) and for a no-penalty model (β = 0) and verify:

* both principled models recover dirty queries well;
* removing the penalty entirely hurts — the error model carries
  real signal (this is Table IV's β = 0 column viewed differently).
"""

from _common import bench_scale, emit, settings

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.error_model import (
    ExponentialErrorModel,
    MaysErrorModel,
)
from repro.eval.reporting import format_table, shape_check
from repro.eval.runner import evaluate_suggester


def test_ablation_error_model(benchmark):
    scale = bench_scale()
    setting = settings(scale)["DBLP"]
    records = setting.workloads["RAND"]

    def build(model, eps=2):
        return XCleanSuggester(
            setting.corpus,
            generator=setting.generator,
            error_model=model,
            config=XCleanConfig(max_errors=eps, gamma=1000),
        )

    # The Mays model (Eq. 3) is a *single-error* model: within its
    # design radius ε = 1 it must match the exponential model, while at
    # ε = 2 its uniform tail degenerates to the no-penalty behaviour.
    systems = [
        ("exponential β=5 ε=2", build(ExponentialErrorModel(5.0))),
        ("exponential β=5 ε=1", build(ExponentialErrorModel(5.0), 1)),
        ("Mays α=0.9 ε=1", build(MaysErrorModel(0.9), 1)),
        ("no penalty β=0 ε=2", build(ExponentialErrorModel(0.0))),
    ]
    rows = []
    mrr = {}
    for name, suggester in systems:
        result = evaluate_suggester(suggester, records)
        mrr[name] = result.mrr
        rows.append((name, result.mrr, result.precision[1]))
    table = format_table(
        ("error model", "MRR", "P@1"),
        rows,
        title=f"Ablation — error models ({scale} scale, DBLP-RAND)",
    )

    checks = [
        shape_check(
            "Mays model matches the exponential model at its design "
            f"radius ε=1 ({mrr['Mays α=0.9 ε=1']:.2f} vs "
            f"{mrr['exponential β=5 ε=1']:.2f})",
            abs(mrr["Mays α=0.9 ε=1"] - mrr["exponential β=5 ε=1"])
            <= 0.1,
        ),
        shape_check(
            "removing the penalty does not help "
            f"({mrr['no penalty β=0 ε=2']:.2f} vs "
            f"{mrr['exponential β=5 ε=2']:.2f})",
            mrr["no penalty β=0 ε=2"]
            <= mrr["exponential β=5 ε=2"] + 1e-9,
        ),
    ]
    emit("ablation_error_model", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    record = records[0]
    exp = systems[0][1]
    benchmark.pedantic(
        lambda: exp.suggest(record.dirty_text, 10),
        rounds=5,
        iterations=1,
    )
