"""Extension — space insertion/deletion errors (Section VI-A).

The paper describes the expansion but defers its evaluation.  We build
a SPACE workload on the DBLP substitute (merge two adjacent keywords or
split a mergeable one, vocabulary-validated) and check:

* plain XClean, whose candidate space preserves the keyword count,
  cannot recover merged/split queries;
* the SpaceAwareSuggester wrapper recovers most of them;
* the wrapper does not disturb already-clean queries.
"""

import random

from _common import bench_scale, emit, settings

from repro.core.space_errors import SpaceAwareSuggester
from repro.datasets.queries import QueryRecord
from repro.eval.reporting import format_table, shape_check
from repro.eval.runner import evaluate_suggester


def build_space_workload(setting, limit=25):
    """Merge the first two keywords of clean queries ('power point' →
    'powerpoint' direction needs mergeable tokens, so we synthesize
    the inverse: the *golden* query keeps the split form and the dirty
    query is the concatenation, which the space-aware suggester must
    split back)."""
    rng = random.Random(77)
    records = []
    for record in setting.workloads["CLEAN"]:
        words = record.dirty
        if len(words) < 2:
            continue
        merged = words[0] + words[1]
        dirty = (merged,) + words[2:]
        records.append(
            QueryRecord(dirty=dirty, golden=(words,), kind="SPACE")
        )
        if len(records) >= limit:
            break
    rng.shuffle(records)
    return records


def test_extension_space_errors(benchmark):
    scale = bench_scale()
    setting = settings(scale)["DBLP"]
    records = build_space_workload(setting)
    assert records, "workload construction failed"

    plain = setting.xclean(gamma=None)
    space_aware = SpaceAwareSuggester(plain, max_changes=1)

    plain_result = evaluate_suggester(plain, records)
    aware_result = evaluate_suggester(space_aware, records)
    clean_result = evaluate_suggester(
        SpaceAwareSuggester(setting.xclean(gamma=None), max_changes=1),
        setting.workloads["CLEAN"],
    )

    table = format_table(
        ("system", "workload", "MRR", "P@1"),
        [
            ("XClean (plain)", "DBLP-SPACE", plain_result.mrr,
             plain_result.precision[1]),
            ("XClean + space expansion", "DBLP-SPACE",
             aware_result.mrr, aware_result.precision[1]),
            ("XClean + space expansion", "DBLP-CLEAN",
             clean_result.mrr, clean_result.precision[1]),
        ],
        title=f"Section VI-A — space-error extension ({scale} scale, "
        f"{len(records)} queries)",
    )
    checks = [
        shape_check(
            "plain XClean cannot change the keyword count "
            f"(MRR {plain_result.mrr:.2f})",
            plain_result.mrr <= 0.2,
        ),
        shape_check(
            "space expansion recovers merged keywords "
            f"(MRR {aware_result.mrr:.2f})",
            aware_result.mrr >= 0.6,
        ),
        shape_check(
            "clean queries unharmed by the expansion "
            f"(MRR {clean_result.mrr:.2f})",
            clean_result.mrr >= 0.85,
        ),
    ]
    emit("extension_space_errors", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    record = records[0]
    benchmark.pedantic(
        lambda: space_aware.suggest(record.dirty_text, 10),
        rounds=3,
        iterations=1,
    )
