"""Table III — example suggestion lists, XClean vs PY08.

The paper's Table III shows a dirty query where PY08 suggests rare
tokens forming a query with no meaningful results, while XClean's
suggestions are valid.  We regenerate the artifact by scanning the
RULE workload for queries where PY08's top suggestion is wrong and
printing both systems' lists side by side, then assert the paper's
two observations: PY08's errors prefer *rarer* tokens, and every
XClean suggestion has non-empty results.
"""

from _common import bench_scale, emit, settings, standard_result

from repro.eval.reporting import format_table, shape_check


def test_table3_example_suggestions(benchmark):
    scale = bench_scale()
    setting = settings(scale)["DBLP"]
    xclean = standard_result(scale, "DBLP", "RULE", "XClean")
    py08 = standard_result(scale, "DBLP", "RULE", "PY08")

    rows = []
    shown = 0
    vocabulary = setting.corpus.vocabulary
    rarer_errors = 0
    error_cases = 0
    for x_out, p_out in zip(xclean.outcomes, py08.outcomes):
        golden = x_out.record.golden[0]
        if p_out.suggestions and p_out.suggestions[0].tokens != golden:
            error_cases += 1
            wrong = p_out.suggestions[0].tokens
            wrong_freq = min(
                vocabulary.collection_frequency(t) for t in wrong
            )
            golden_freq = min(
                vocabulary.collection_frequency(t) for t in golden
            )
            if wrong_freq <= golden_freq:
                rarer_errors += 1
            if shown < 5:
                shown += 1
                rows.append(
                    (
                        x_out.record.dirty_text,
                        " ".join(golden),
                        x_out.suggestions[0].text
                        if x_out.suggestions
                        else "(none)",
                        p_out.suggestions[0].text,
                    )
                )
    table = format_table(
        ("dirty query", "ground truth", "XClean top-1", "PY08 top-1"),
        rows,
        title="Table III — example suggestions (DBLP-RULE)",
    )

    # Validity: every XClean suggestion has results in the document.
    entities = setting.document.root.children
    all_valid = True
    for outcome in xclean.outcomes[:10]:
        for suggestion in outcome.suggestions[:3]:
            if not any(
                all(
                    t in entity.subtree_text().split()
                    for t in suggestion.tokens
                )
                for entity in entities
            ):
                all_valid = False
    checks = [
        shape_check(
            "PY08 makes top-1 errors on DBLP-RULE", error_cases > 0
        ),
        shape_check(
            "PY08's wrong suggestions tend toward rarer tokens "
            f"({rarer_errors}/{error_cases})",
            error_cases == 0 or rarer_errors >= error_cases / 2,
        ),
        shape_check(
            "every sampled XClean suggestion has non-empty results",
            all_valid,
        ),
    ]
    emit("table3_examples", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    suggester = setting.py08()
    record = setting.workloads["RULE"][0]
    benchmark.pedantic(
        lambda: suggester.suggest(record.dirty_text, 10),
        rounds=3,
        iterations=1,
    )
