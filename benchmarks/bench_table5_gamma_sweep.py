"""Table V — MRR as a function of the accumulator budget γ.

Paper shapes:

* XClean's suggestion quality improves with γ and saturates — around
  γ = 1000 it reaches the unbounded quality;
* for PY08, γ is the number of top combinations kept; quality
  saturates at moderate γ there too.

Documented deviation: on these corpus scales the estimate-based victim
selection is good enough that saturation already happens by γ ≈ 10
(degradation is visible only at γ ∈ {1, 2}); the paper's larger
candidate populations push the knee out to γ ≈ 1000.  Pruning is
demonstrably *active* — the evictions column counts real victims.
"""

from _common import WORKLOAD_ORDER, bench_scale, emit, settings

from repro.eval.experiments import eps_for
from repro.eval.reporting import format_table, shape_check
from repro.eval.runner import evaluate_suggester

GAMMAS = (1, 10, 100, 1000, 10000)


def test_table5_gamma_sweep(benchmark):
    scale = bench_scale()
    by_label = settings(scale)
    rows = []
    mrr: dict[tuple[str, str, str, int], float] = {}
    for system in ("XClean", "PY08"):
        for dataset, kind in WORKLOAD_ORDER:
            setting = by_label[dataset]
            eps = eps_for(kind)
            row = [system, f"{dataset}-{kind}"]
            evictions = 0
            for gamma in GAMMAS:
                if system == "XClean":
                    suggester = setting.xclean(
                        gamma=gamma, max_errors=eps
                    )
                else:
                    suggester = setting.py08(
                        gamma=gamma, max_errors=eps
                    )
                result = evaluate_suggester(
                    suggester, setting.workloads[kind]
                )
                if system == "XClean" and gamma == GAMMAS[0]:
                    # Count evictions at the tightest budget.
                    for record in setting.workloads[kind]:
                        suggester.suggest(record.dirty_text, 10)
                        evictions += (
                            suggester.last_stats.accumulator_evictions
                        )
                mrr[(system, dataset, kind, gamma)] = result.mrr
                row.append(result.mrr)
            row.append(evictions if system == "XClean" else "-")
            rows.append(tuple(row))
    table = format_table(
        (
            "System",
            "Query set",
            *(f"γ={g}" for g in GAMMAS),
            f"evictions@γ={GAMMAS[0]}",
        ),
        rows,
        title=f"Table V — MRR vs γ ({scale} scale, β=5)",
    )

    checks = []
    for dataset, kind in WORKLOAD_ORDER:
        tiny = mrr[("XClean", dataset, kind, 1)]
        large = mrr[("XClean", dataset, kind, 1000)]
        huge = mrr[("XClean", dataset, kind, 10000)]
        # Not strictly monotone: at γ=1 a lucky eviction can hide the
        # competitor that outranks the truth in the exact evaluation,
        # so allow a one-query wobble.
        checks.append(
            shape_check(
                f"XClean {dataset}-{kind}: γ=1000 >= γ=1 "
                f"({large:.2f} vs {tiny:.2f})",
                large >= tiny - 0.05,
            )
        )
        checks.append(
            shape_check(
                f"XClean {dataset}-{kind}: saturated by γ=1000 "
                f"(Δ to γ=10000: {abs(huge - large):.3f})",
                abs(huge - large) <= 0.05,
            )
        )
    improvement = sum(
        mrr[("XClean", d, k, 1000)] - mrr[("XClean", d, k, 1)]
        for d, k in WORKLOAD_ORDER
    )
    checks.append(
        shape_check(
            "larger γ strictly improves some workload "
            f"(total gain {improvement:.3f})",
            improvement > 0,
        )
    )
    emit("table5_gamma_sweep", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    setting = by_label["INEX"]
    record = setting.workloads["RULE"][0]
    tight = setting.xclean(gamma=10, max_errors=eps_for("RULE"))
    benchmark.pedantic(
        lambda: tight.suggest(record.dirty_text, 10),
        rounds=3,
        iterations=1,
    )
