"""Table II — query sets and their sample queries.

Regenerates the six workloads of Section VII-A (CLEAN/RAND/RULE on
both datasets) and prints one sample from each, mirroring the paper's
Table II ("great barrier reef" / "gerat barrier reef" style rows).
The benchmark times workload generation end to end.
"""

import random

from _common import WORKLOAD_KINDS, bench_scale, emit, settings

from repro.datasets.queries import build_query_workloads
from repro.eval.reporting import format_table, shape_check


def test_table2_query_sets(benchmark):
    scale = bench_scale()
    by_label = settings(scale)
    rows = []
    for label in ("INEX", "DBLP"):
        for kind in WORKLOAD_KINDS:
            records = by_label[label].workloads[kind]
            sample = records[0]
            rows.append(
                (
                    f"{label}-{kind}",
                    len(records),
                    sample.dirty_text,
                    sample.golden_texts[0],
                )
            )
    table = format_table(
        ("Query set", "#queries", "sample (dirty)", "ground truth"),
        rows,
        title=f"Table II — query sets ({scale} scale)",
    )

    checks = []
    for label in ("INEX", "DBLP"):
        workloads = by_label[label].workloads
        dirty_changed = all(
            r.dirty != r.golden[0] for r in workloads["RAND"]
        )
        checks.append(
            shape_check(
                f"{label}-RAND queries all differ from ground truth",
                dirty_changed,
            )
        )
        clean_equal = all(
            r.dirty == r.golden[0] for r in workloads["CLEAN"]
        )
        checks.append(
            shape_check(
                f"{label}-CLEAN queries equal ground truth", clean_equal
            )
        )
        vocab = by_label[label].corpus.vocabulary
        oov = all(
            any(w not in vocab for w in r.dirty)
            for r in workloads["RAND"]
        )
        checks.append(
            shape_check(
                f"{label}-RAND perturbations left the vocabulary", oov
            )
        )
    emit("table2_query_sets", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    # Benchmark: regenerating one dataset's workloads from scratch.
    setting = by_label["DBLP"]
    benchmark.pedantic(
        lambda: build_query_workloads(
            setting.corpus,
            setting.document,
            count=len(setting.workloads["CLEAN"]),
            seed=random.Random(0).randint(1, 10**6),
            style="dblp",
        ),
        rounds=1,
        iterations=1,
    )
