"""Figure 3 — MRR of XClean, PY08, SE1 and SE2 on the six query sets.

Paper shapes asserted:

* XClean significantly outperforms PY08 on every query set;
* the search engines are (near-)perfect on the CLEAN sets (they do not
  fire on clean queries);
* the search engines do better on RULE (common human misspellings,
  i.e. query-log territory) than on RAND (random edits);
* XClean is competitive with the SEs without any log knowledge.
"""

from _common import (
    WORKLOAD_ORDER,
    bench_scale,
    emit,
    mrr_of,
    settings,
    standard_result,
)

from repro.eval.analysis import (
    bootstrap_mrr_ci,
    paired_comparison,
)
from repro.eval.reporting import format_table, shape_check

SYSTEMS = ("XClean", "PY08", "SE1", "SE2")


def test_fig3_mrr(benchmark):
    scale = bench_scale()
    rows = []
    for dataset, kind in WORKLOAD_ORDER:
        row = [f"{dataset}-{kind}"]
        for system in SYSTEMS:
            row.append(mrr_of(scale, dataset, kind, system))
        rows.append(tuple(row))
    table = format_table(
        ("Query set", *SYSTEMS),
        rows,
        title=f"Figure 3 — MRR by system ({scale} scale)",
    )

    # Uncertainty: bootstrap CI for XClean plus paired significance of
    # the XClean-vs-PY08 gap per workload.
    significance_rows = []
    for dataset, kind in WORKLOAD_ORDER:
        xclean = standard_result(scale, dataset, kind, "XClean")
        py08 = standard_result(scale, dataset, kind, "PY08")
        ci = bootstrap_mrr_ci(xclean, seed=11)
        head_to_head = paired_comparison(xclean, py08)
        significance_rows.append(
            (
                f"{dataset}-{kind}",
                f"[{ci.low:.2f}, {ci.high:.2f}]",
                f"{head_to_head.wins}/{head_to_head.ties}/"
                f"{head_to_head.losses}",
                f"{head_to_head.p_value:.2g}",
            )
        )
    table += "\n\n" + format_table(
        ("Query set", "XClean MRR 95% CI", "XClean W/T/L vs PY08",
         "sign-test p"),
        significance_rows,
        title="Significance (bootstrap + paired sign test)",
    )

    checks = []
    for dataset, kind in WORKLOAD_ORDER:
        checks.append(
            shape_check(
                f"XClean > PY08 on {dataset}-{kind}",
                mrr_of(scale, dataset, kind, "XClean")
                > mrr_of(scale, dataset, kind, "PY08"),
            )
        )
    for dataset in ("DBLP", "INEX"):
        for se in ("SE1", "SE2"):
            checks.append(
                shape_check(
                    f"{se} near-perfect on {dataset}-CLEAN",
                    mrr_of(scale, dataset, "CLEAN", se) >= 0.95,
                )
            )
        checks.append(
            shape_check(
                f"SE1 better on {dataset}-RULE than {dataset}-RAND "
                "(query-log knowledge)",
                mrr_of(scale, dataset, "RULE", "SE1")
                > mrr_of(scale, dataset, "RAND", "SE1") - 1e-9,
            )
        )
    emit("fig3_mrr", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    # Benchmark: one representative XClean query per dataset.
    setting = settings(scale)["DBLP"]
    suggester = setting.xclean()
    record = setting.workloads["RAND"][0]
    benchmark.pedantic(
        lambda: suggester.suggest(record.dirty_text, 10),
        rounds=5,
        iterations=1,
    )
    # Touch the cache so later benchmarks reuse these results.
    for dataset, kind in WORKLOAD_ORDER:
        for system in SYSTEMS:
            standard_result(scale, dataset, kind, system)
