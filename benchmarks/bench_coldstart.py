"""Cold-start benchmark — snapshot v3 vs the v1/v2 object-graph loaders.

Measures, on the synthetic DBLP dataset:

* **save/build time** for every on-disk format, including the v3
  parallel builder (whose output must be byte-identical to serial);
* **load time** (best of N) for text v1, binary v2, and mmap v3 — the
  claim under test is that v3 is at least 5x faster than
  ``load_index_binary`` at the default scale, because it maps sections
  instead of materializing per-posting Python objects;
* **worker-pool spin-up**: time to first parallel answer and the
  pickled initializer payload for a pickled-corpus pool vs a
  snapshot-path pool (the payload must be bounded by a constant, not
  the corpus size);
* **per-worker RSS** right after initialization, via
  ``/proc/self/status`` (best-effort; 0 on platforms without procfs);
* **equivalence**: top-k suggestions over the mapped snapshot must be
  byte-identical (exact tokens, scores, and result types) to the
  in-memory packed engine on every workload query.

Results are emitted as text (``out/coldstart.txt``) and JSON
(``out/BENCH_coldstart.json``).  Run as a script::

    PYTHONPATH=src python benchmarks/bench_coldstart.py --scale smoke

or through pytest (scale from ``REPRO_BENCH_SCALE``).
"""

import argparse
import json
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

if __package__ is None or __package__ == "":
    sys.path.insert(0, str(Path(__file__).parent))

from _common import OUT_DIR, bench_scale, emit

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService, _init_worker_snapshot
from repro.eval.experiments import dblp_setting
from repro.eval.reporting import format_table, shape_check
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.index.storage import load_index, save_index
from repro.index.storage_binary import (
    load_index_binary,
    save_index_binary,
)

#: Load repetitions (best-of wins); the first rep also warms the page
#: cache so every format is measured warm-cache.
LOAD_REPS = 3

#: Required v2/v3 load-time ratio per scale.  The 5x acceptance bar
#: applies at the default scale; the tiny corpora of the smoke scales
#: are dominated by fixed per-call costs, so only a relaxed bound is
#: asserted there.
SPEEDUP_FLOORS = {"default": 5.0, "small": 2.0, "smoke": 2.0}

#: The snapshot pool initializer carries (path, config); anything past
#: this many pickled bytes means the corpus leaked into the payload.
INIT_PAYLOAD_CEILING = 4096


def _worker_rss_kb(_task=None) -> int:
    """Resident set size of the calling process in kB (0 if unknown)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def best_of(action, reps: int = LOAD_REPS) -> float:
    clock = time.perf_counter
    best = float("inf")
    for _ in range(reps):
        began = clock()
        action()
        best = min(best, clock() - began)
    return best


def bench_formats(setting, directory: Path) -> dict:
    """Save + load timings for v1/v2/v3, plus parallel-build parity."""
    corpus = setting.corpus
    clock = time.perf_counter
    paths = {
        "v1_text": directory / "dblp.xci",
        "v2_binary": directory / "dblp.xcib",
        "v3_snapshot": directory / "dblp.xcs3",
    }

    began = clock()
    save_index(corpus, str(paths["v1_text"]))
    v1_save = clock() - began
    began = clock()
    save_index_binary(corpus, str(paths["v2_binary"]))
    v2_save = clock() - began
    began = clock()
    build_snapshot(
        corpus, str(paths["v3_snapshot"]), generator=setting.generator
    )
    v3_save = clock() - began

    parallel_path = directory / "dblp-par.xcs3"
    began = clock()
    build_snapshot(
        corpus,
        str(parallel_path),
        generator=setting.generator,
        workers=4,
    )
    v3_parallel_save = clock() - began
    parallel_identical = (
        paths["v3_snapshot"].read_bytes() == parallel_path.read_bytes()
    )

    loads = {
        "v1_text": best_of(lambda: load_index(str(paths["v1_text"]))),
        "v2_binary": best_of(
            lambda: load_index_binary(str(paths["v2_binary"]))
        ),
        "v3_snapshot": best_of(
            lambda: load_snapshot(str(paths["v3_snapshot"]))
        ),
    }
    return {
        "bytes": {
            name: path.stat().st_size for name, path in paths.items()
        },
        "save_s": {
            "v1_text": v1_save,
            "v2_binary": v2_save,
            "v3_snapshot": v3_save,
            "v3_snapshot_parallel": v3_parallel_save,
        },
        "load_s": loads,
        "parallel_build_identical": parallel_identical,
        "speedup_v3_vs_v2": loads["v2_binary"] / loads["v3_snapshot"],
        "speedup_v3_vs_v1": loads["v1_text"] / loads["v3_snapshot"],
    }


def bench_pool(setting, snapshot_path: Path, query: str) -> dict:
    """Pool spin-up to first parallel answer, pickled vs snapshot."""
    config = XCleanConfig(max_errors=2, beta=5.0, gamma=1000)
    clock = time.perf_counter
    out = {}
    snapshot_corpus = load_snapshot(str(snapshot_path))
    for label, corpus in (
        ("pickled", setting.corpus),
        ("snapshot", snapshot_corpus),
    ):
        began = clock()
        with SuggestionService(corpus, config=config) as service:
            service.suggest_batch([query], 10, workers=2)
            out[label] = {
                "first_answer_s": clock() - began,
                "init_payload_bytes": service.stats.pool_init_bytes,
            }
    # Best-effort RSS of a worker initialized from the snapshot alone.
    try:
        with ProcessPoolExecutor(
            max_workers=1,
            initializer=_init_worker_snapshot,
            initargs=(str(snapshot_path), config),
        ) as pool:
            out["snapshot"]["worker_rss_kb"] = pool.submit(
                _worker_rss_kb
            ).result(timeout=60)
    except Exception:
        out["snapshot"]["worker_rss_kb"] = 0
    return out


def bench_equivalence(setting, snapshot_path: Path) -> dict:
    """Exact top-k parity: in-memory packed engine vs mapped snapshot."""
    config = XCleanConfig(max_errors=3, beta=5.0, gamma=1000)
    memory = XCleanSuggester(
        setting.corpus,
        generator=setting.generator.fresh_cache(),
        config=config,
    )
    mapped = XCleanSuggester(
        load_snapshot(str(snapshot_path)), config=config
    )
    queries = checked = mismatches = suggestions = 0
    for records in setting.workloads.values():
        for record in records:
            queries += 1
            a = memory.suggest(record.dirty_text, 10)
            b = mapped.suggest(record.dirty_text, 10)
            rows_a = [(s.tokens, s.score, s.result_type) for s in a]
            rows_b = [(s.tokens, s.score, s.result_type) for s in b]
            checked += 1
            suggestions += len(rows_a)
            if rows_a != rows_b:
                mismatches += 1
    return {
        "queries": queries,
        "checked": checked,
        "suggestions": suggestions,
        "mismatches": mismatches,
    }


def run(scale: str) -> dict:
    setting = dblp_setting("small" if scale == "smoke" else scale)
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        formats = bench_formats(setting, directory)
        snapshot_path = directory / "dblp.xcs3"
        query = setting.workloads["RAND"][0].dirty_text
        pool = bench_pool(setting, snapshot_path, query)
        equivalence = bench_equivalence(setting, snapshot_path)

    floor = SPEEDUP_FLOORS.get(scale, SPEEDUP_FLOORS["smoke"])
    report = {
        "benchmark": "coldstart",
        "scale": scale,
        "dataset": "DBLP",
        "corpus": setting.corpus.describe(
            generator=setting.generator
        ),
        "formats": formats,
        "pool": pool,
        "equivalence": equivalence,
        "speedup_floor": floor,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_coldstart.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    load_table = format_table(
        ("Format", "bytes", "save (ms)", "load (ms)"),
        [
            (
                name,
                formats["bytes"][name],
                1e3 * formats["save_s"][name],
                1e3 * formats["load_s"][name],
            )
            for name in ("v1_text", "v2_binary", "v3_snapshot")
        ],
        title=f"Cold start by format ({scale} scale)",
    )
    pool_table = format_table(
        ("Pool init", "first answer (ms)", "init payload (bytes)"),
        [
            (
                label,
                1e3 * pool[label]["first_answer_s"],
                pool[label]["init_payload_bytes"],
            )
            for label in ("pickled", "snapshot")
        ],
        title="Worker-pool spin-up (2 workers)",
    )
    speedup = formats["speedup_v3_vs_v2"]
    checks = [
        shape_check(
            f"v3 mmap load {speedup:.1f}x faster than "
            f"load_index_binary (floor {floor}x)",
            speedup >= floor,
        ),
        shape_check(
            "parallel snapshot build is byte-identical to serial",
            formats["parallel_build_identical"],
        ),
        shape_check(
            f"snapshot pool init payload "
            f"{pool['snapshot']['init_payload_bytes']} bytes is "
            f"constant-bounded (<= {INIT_PAYLOAD_CEILING}) and below "
            f"the pickled corpus "
            f"({pool['pickled']['init_payload_bytes']} bytes)",
            pool["snapshot"]["init_payload_bytes"]
            <= INIT_PAYLOAD_CEILING
            < pool["pickled"]["init_payload_bytes"],
        ),
        shape_check(
            f"snapshot top-k byte-identical on "
            f"{equivalence['checked']} workload queries "
            f"({equivalence['suggestions']} suggestions)",
            equivalence["mismatches"] == 0
            and equivalence["checked"] > 0,
        ),
    ]
    emit(
        "coldstart",
        load_table
        + "\n"
        + pool_table
        + "\n"
        + format_table(
            ("Cold-start summary", "value"),
            [
                ("v3 vs v2 load speedup", f"{speedup:.1f}x"),
                (
                    "v3 vs v1 load speedup",
                    f"{formats['speedup_v3_vs_v1']:.1f}x",
                ),
                (
                    "snapshot worker RSS (kB)",
                    pool["snapshot"].get("worker_rss_kb", 0),
                ),
            ],
            title="Summary",
        )
        + "\n"
        + "\n".join(checks),
    )
    assert all("[OK ]" in check for check in checks)
    return report


def test_coldstart():
    run(bench_scale())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Cold-start benchmark (snapshot v3 vs v1/v2)"
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "small", "default"),
        default=bench_scale(),
    )
    args = parser.parse_args(argv)
    run(args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
