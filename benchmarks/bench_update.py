"""Live-update benchmark — ack latency, compaction, swap downtime.

Measures, on the synthetic DBLP dataset:

* **update-visibility latency** — wall time of
  ``SuggestionService.apply_updates`` for a single subtree add (the
  WAL fsync + delta fold + overlay install), and the cost of the very
  next query proving the new content is both findable and
  *misspellable*;
* **compaction wall time** — folding the acknowledged updates into a
  fresh snapshot generation (a full rebuild through the atomic
  writer) while queries keep being served from the overlay;
* **swap downtime** — a concurrent query stream runs across an
  update → compact → snapshot-swap storm; every request must complete
  (zero errors, zero drops) and every answer must equal one of the
  two legal generations' answers (no mixed-generation results).

Shapes asserted: every update is query-visible within one request;
acknowledging an update is cheaper than a compaction (the reason the
WAL + delta overlay exists — rebuilding per update would cost the
compaction price every time); the racing stream completes with zero
errors and zero mixed-generation answers.

Results are emitted as text (``out/update.txt``) and JSON
(``out/BENCH_update.json``).
"""

import dataclasses
import json
import string
import tempfile
import threading
import time
from pathlib import Path

from _common import OUT_DIR, bench_scale, emit

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.eval.experiments import dblp_setting
from repro.eval.reporting import format_table, shape_check
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.index.wal import WalRecord
from repro.xmltree.node import XMLNode

#: Updates applied one by one (each timed as its own ack).
UPDATE_COUNTS = {"default": 12, "small": 4}

#: Concurrent readers racing the generation swap.
STREAM_THREADS = 3


def unique_token(i: int) -> str:
    a, b = divmod(i, len(string.ascii_lowercase))
    return "zanzibar" + string.ascii_lowercase[a] + string.ascii_lowercase[b]


def misspell(token: str) -> str:
    # One substitution: zanzibar.. -> zanziber..
    return token.replace("zanzibar", "zanziber", 1)


def book_record(token: str) -> WalRecord:
    from repro.index.delta import node_to_json

    node = XMLNode("book")
    title = XMLNode("title", text=f"{token} consistency")
    author = XMLNode("author", text="spanner")
    node.add_child(title)
    node.add_child(author)
    return WalRecord(op="add", dewey=(1,), subtree=node_to_json(node))


def answers(suggestions):
    return tuple(dataclasses.astuple(s) for s in suggestions)


def bench_ack_latency(service, count):
    """Apply ``count`` single-record updates, timing each ack."""
    clock = time.perf_counter
    acks, visibility, all_visible = [], [], True
    for i in range(count):
        token = unique_token(i)
        began = clock()
        service.apply_updates([book_record(token)])
        acks.append(clock() - began)
        began = clock()
        found = service.suggest(misspell(token), 5)
        visibility.append(clock() - began)
        if not (found and token in found[0].tokens[0]):
            all_visible = False
    acks.sort()
    return {
        "updates": count,
        "ack_mean_ms": 1e3 * sum(acks) / len(acks),
        "ack_p50_ms": 1e3 * acks[len(acks) // 2],
        "ack_max_ms": 1e3 * acks[-1],
        "first_query_mean_ms": 1e3 * sum(visibility) / len(visibility),
        "all_visible_within_one_request": all_visible,
    }


def bench_compaction(service):
    clock = time.perf_counter
    pending = len(service.live.delta.records)
    began = clock()
    generation = service.compact()
    wall = clock() - began
    return {
        "records_folded": pending,
        "generation": generation,
        "wall_s": wall,
        "serving_generation": service.data_generation,
    }


def bench_swap_stream(service, count):
    """Readers race one more update → compact → swap storm."""
    token = unique_token(count)
    query = misspell(token)
    legal = {answers(service.suggest(query, 5))}
    stop = threading.Event()
    errors: list = []
    observed: list = []

    def hammer():
        while not stop.is_set():
            try:
                observed.append(answers(service.suggest(query, 5)))
            except Exception as exc:  # noqa: BLE001 - recorded below
                errors.append(repr(exc))
                return

    threads = [
        threading.Thread(target=hammer) for _ in range(STREAM_THREADS)
    ]
    for thread in threads:
        thread.start()
    clock = time.perf_counter
    began = clock()
    try:
        service.apply_updates([book_record(token)])
        service.compact()
        service.swap_snapshot()
    finally:
        stop.set()
        for thread in threads:
            thread.join(60.0)
    storm = clock() - began
    legal.add(answers(service.suggest(query, 5)))
    mixed = [o for o in observed if o not in legal]
    return {
        "storm_wall_s": storm,
        "stream_threads": STREAM_THREADS,
        "completed_requests": len(observed),
        "errors": errors,
        "distinct_answers": len(set(observed)),
        "mixed_generation_answers": len(mixed),
    }


def test_update(benchmark):
    scale = bench_scale()
    setting = dblp_setting(scale)
    count = UPDATE_COUNTS.get(scale, UPDATE_COUNTS["small"])

    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "live.xcs3")
        build_snapshot(setting.corpus, path)
        with SuggestionService(
            load_snapshot(path),
            config=XCleanConfig(max_errors=2, beta=5.0, gamma=1000),
        ) as service:
            service.enable_live_updates(setting.document)
            ack = bench_ack_latency(service, count)
            compaction = bench_compaction(service)
            stream = bench_swap_stream(service, count)
            swaps = service.stats.generation_swaps
            applied = service.stats.updates_applied

            report = {
                "benchmark": "update",
                "scale": scale,
                "dataset": "DBLP",
                "corpus": setting.corpus.describe(),
                "ack": ack,
                "compaction": compaction,
                "stream": stream,
                "generation_swaps": swaps,
                "updates_applied": applied,
            }
            OUT_DIR.mkdir(exist_ok=True)
            (OUT_DIR / "BENCH_update.json").write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )

            table = format_table(
                ("Live-update stage", "value"),
                [
                    ("updates applied", applied),
                    ("ack p50 (ms)", ack["ack_p50_ms"]),
                    ("ack max (ms)", ack["ack_max_ms"]),
                    (
                        "first query after ack (ms)",
                        ack["first_query_mean_ms"],
                    ),
                    (
                        "compaction wall (ms)",
                        1e3 * compaction["wall_s"],
                    ),
                    ("records folded", compaction["records_folded"]),
                    ("generation swaps", swaps),
                ],
                title=f"Live updates ({scale} scale)",
            )
            stream_table = format_table(
                ("Swap-storm stream", "value"),
                [
                    ("threads", stream["stream_threads"]),
                    ("completed", stream["completed_requests"]),
                    ("errors", len(stream["errors"])),
                    ("distinct answers", stream["distinct_answers"]),
                    (
                        "mixed-generation answers",
                        stream["mixed_generation_answers"],
                    ),
                    ("storm wall (ms)", 1e3 * stream["storm_wall_s"]),
                ],
                title="Query stream across update+compact+swap",
            )
            checks = [
                shape_check(
                    "every update query-visible within one request",
                    ack["all_visible_within_one_request"],
                ),
                shape_check(
                    f"update ack ({ack['ack_mean_ms']:.1f} ms mean) "
                    f"cheaper than compaction "
                    f"({1e3 * compaction['wall_s']:.1f} ms)",
                    ack["ack_mean_ms"] < 1e3 * compaction["wall_s"],
                ),
                shape_check(
                    "compacted generation is the one being served",
                    compaction["serving_generation"]
                    == compaction["generation"],
                ),
                shape_check(
                    "swap storm: zero query errors or drops",
                    not stream["errors"]
                    and stream["completed_requests"] > 0,
                ),
                shape_check(
                    "swap storm: no mixed-generation answers",
                    stream["mixed_generation_answers"] == 0,
                ),
            ]
            emit(
                "update",
                table + "\n" + stream_table + "\n" + "\n".join(checks),
            )
            assert all("[OK ]" in check for check in checks)

            warm = misspell(unique_token(0))
            service.suggest(warm, 5)
            benchmark.pedantic(
                lambda: service.suggest(warm, 5),
                rounds=3,
                iterations=1,
            )
