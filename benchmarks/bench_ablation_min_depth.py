"""Ablation — the minimal depth threshold d (Section V-B).

The paper: "a large portion of the candidate query space is
unpromising, and d = 2 is usually enough to prune them without
affecting the suggestion quality."  This ablation sweeps d ∈ {1, 2, 3}
and reports MRR, candidates evaluated, and time:

* d = 2 matches d = 1's quality (pruning is safe);
* d = 2 evaluates no more candidates than d = 1 (the pruning is real —
  at d = 1 every pair of keyword occurrences connects at the root).
"""

from _common import bench_scale, emit, settings

from repro.eval.reporting import format_table, shape_check
from repro.eval.runner import evaluate_suggester

DEPTHS = (1, 2, 3)


def test_ablation_min_depth(benchmark):
    scale = bench_scale()
    setting = settings(scale)["DBLP"]
    records = setting.workloads["RAND"]

    rows = []
    results = {}
    for depth in DEPTHS:
        suggester = setting.xclean(min_depth=depth)
        candidates = 0
        groups = 0
        for record in records:
            suggester.suggest(record.dirty_text, 10)
            candidates += suggester.last_stats.candidates_evaluated
            groups += suggester.last_stats.groups_processed
        timed = evaluate_suggester(suggester, records)
        results[depth] = (timed, candidates, groups)
        rows.append(
            (
                f"d={depth}",
                timed.mrr,
                candidates,
                groups,
                timed.mean_time * 1000,
            )
        )
    table = format_table(
        ("min depth", "MRR", "candidates", "groups", "mean time (ms)"),
        rows,
        title=f"Ablation — minimal depth threshold ({scale} scale, "
        "DBLP-RAND)",
    )

    checks = [
        shape_check(
            "d=2 preserves d=1's suggestion quality "
            f"({results[2][0].mrr:.2f} vs {results[1][0].mrr:.2f})",
            results[2][0].mrr >= results[1][0].mrr - 0.05,
        ),
        shape_check(
            "d=2 evaluates no more candidates than d=1 "
            f"({results[2][1]} vs {results[1][1]})",
            results[2][1] <= results[1][1],
        ),
        shape_check(
            "deeper d keeps shrinking the work "
            f"({results[3][1]} candidates at d=3)",
            results[3][1] <= results[2][1],
        ),
    ]
    emit("ablation_min_depth", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    record = records[0]
    d2 = setting.xclean(min_depth=2)
    benchmark.pedantic(
        lambda: d2.suggest(record.dirty_text, 10),
        rounds=5,
        iterations=1,
    )
