"""Section VI-B — SLCA/ELCA semantics vs specific-node-type semantics.

The paper: "It works equally well on the DBLP dataset (which is
data-centric), but less well on the INEX dataset (which is
document-centric)."  We evaluate the alternative LCA semantics (SLCA
per Section VI-B, plus the ELCA extension) against node types on both
datasets' RAND workloads and assert that comparison.
"""

from _common import bench_scale, emit, settings

from repro.core.config import XCleanConfig
from repro.core.slca_cleaner import ELCACleanSuggester
from repro.eval.reporting import format_table, shape_check
from repro.eval.runner import evaluate_suggester


def test_ablation_slca(benchmark):
    scale = bench_scale()
    rows = []
    mrr = {}
    for dataset in ("DBLP", "INEX"):
        setting = settings(scale)[dataset]
        records = setting.workloads["RAND"]
        node_type = evaluate_suggester(setting.xclean(), records)
        slca = evaluate_suggester(setting.xclean_slca(), records)
        elca_suggester = ELCACleanSuggester(
            setting.corpus,
            generator=setting.generator.fresh_cache(),
            config=XCleanConfig(max_errors=2, gamma=1000),
        )
        elca = evaluate_suggester(elca_suggester, records)
        mrr[(dataset, "node-type")] = node_type.mrr
        mrr[(dataset, "slca")] = slca.mrr
        mrr[(dataset, "elca")] = elca.mrr
        rows.append(
            (
                dataset,
                node_type.mrr,
                slca.mrr,
                elca.mrr,
                node_type.mean_time * 1000,
                slca.mean_time * 1000,
                elca.mean_time * 1000,
            )
        )
    table = format_table(
        (
            "Dataset",
            "node-type MRR",
            "SLCA MRR",
            "ELCA MRR",
            "node-type ms",
            "SLCA ms",
            "ELCA ms",
        ),
        rows,
        title=f"Section VI-B — LCA semantics vs node types "
        f"({scale} scale, RAND)",
    )

    dblp_gap = abs(mrr[("DBLP", "slca")] - mrr[("DBLP", "node-type")])
    elca_gap = abs(mrr[("DBLP", "elca")] - mrr[("DBLP", "node-type")])
    checks = [
        shape_check(
            "SLCA works about as well as node types on data-centric "
            f"DBLP (gap {dblp_gap:.2f})",
            dblp_gap <= 0.15,
        ),
        shape_check(
            "ELCA (extension) also holds up on DBLP "
            f"(gap {elca_gap:.2f})",
            elca_gap <= 0.15,
        ),
        shape_check(
            "SLCA does not beat node types on document-centric INEX "
            f"({mrr[('INEX', 'slca')]:.2f} vs "
            f"{mrr[('INEX', 'node-type')]:.2f})",
            mrr[("INEX", "slca")]
            <= mrr[("INEX", "node-type")] + 0.02,
        ),
    ]
    emit("ablation_slca", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    setting = settings(scale)["DBLP"]
    record = setting.workloads["RAND"][0]
    slca_suggester = setting.xclean_slca()
    benchmark.pedantic(
        lambda: slca_suggester.suggest(record.dirty_text, 10),
        rounds=5,
        iterations=1,
    )
