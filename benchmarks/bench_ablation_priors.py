"""Ablation — non-uniform entity priors (the Eq. 8 generalization).

Section IV-B2: "this can be easily generalized to non-uniform priors
if additional data or domain knowledge is available."  We compare the
paper's uniform prior with a length prior P(r|T) ∝ |D(r)| and check:

* both priors keep the suggestion quality (the prior is a refinement,
  not a crutch — rankings barely move on clean-cut corrections);
* the prior changes scores (it is actually wired into Eq. 8);
* the runtime cost of the weighted prior is negligible.
"""

from _common import bench_scale, emit, settings

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.eval.reporting import format_table, shape_check
from repro.eval.runner import evaluate_suggester


def test_ablation_priors(benchmark):
    scale = bench_scale()
    setting = settings(scale)["DBLP"]
    records = setting.workloads["RAND"]

    def build(prior):
        return XCleanSuggester(
            setting.corpus,
            generator=setting.generator.fresh_cache(),
            config=XCleanConfig(max_errors=2, gamma=1000, prior=prior),
        )

    uniform = build("uniform")
    weighted = build("length")
    uniform_result = evaluate_suggester(uniform, records)
    weighted_result = evaluate_suggester(weighted, records)

    # Score divergence on one query (proves the prior is active).
    sample = records[0].dirty_text
    u_scores = build("uniform").score_all(sample)
    w_scores = build("length").score_all(sample)
    diverges = any(
        abs(u_scores[c] - w_scores.get(c, 0.0)) > 1e-15 * (1 + u_scores[c])
        for c in u_scores
    )

    table = format_table(
        ("entity prior", "MRR", "P@1", "mean time (ms)"),
        [
            (
                "uniform (paper)",
                uniform_result.mrr,
                uniform_result.precision[1],
                uniform_result.mean_time * 1000,
            ),
            (
                "length  P(r|T) ∝ |D(r)|",
                weighted_result.mrr,
                weighted_result.precision[1],
                weighted_result.mean_time * 1000,
            ),
        ],
        title=f"Ablation — entity priors ({scale} scale, DBLP-RAND)",
    )
    checks = [
        shape_check(
            "length prior preserves quality "
            f"({weighted_result.mrr:.2f} vs {uniform_result.mrr:.2f})",
            abs(weighted_result.mrr - uniform_result.mrr) <= 0.1,
        ),
        shape_check("prior actually changes candidate scores", diverges),
        shape_check(
            "weighted prior costs <= 2x the uniform prior",
            weighted_result.mean_time
            <= 2 * uniform_result.mean_time + 1e-3,
        ),
    ]
    emit("ablation_priors", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    record = records[0]
    benchmark.pedantic(
        lambda: weighted.suggest(record.dirty_text, 10),
        rounds=5,
        iterations=1,
    )
