"""Figure 1 — PY08's scoring bias ("health insurance" scenario).

The paper's Section II example: for the dirty query "health insurence",
PY08's max-tf·idf scoring prefers the rare, disconnected correction
"health instance", while XClean — scoring candidates by their query
results — suggests "health insurance" and never suggests the
disconnected pair at all.
"""

import pytest

from _common import emit

from repro.baselines.py08 import PY08Config, PY08Suggester
from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.eval.reporting import format_table, shape_check
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import build_tree
from repro.xmltree.document import XMLDocument

QUERY = "health insurence"


@pytest.fixture(scope="module")
def corpus():
    records = [
        ("record", [("text", "health insurance policy coverage")])
        for _ in range(8)
    ]
    records.append(("record", [("text", "singular instance")]))
    records.append(("record", [("text", "health checkup")]))
    return build_corpus_index(
        XMLDocument(build_tree(("db", records)), name="figure-1")
    )


def test_fig1_bias(corpus, benchmark):
    py08 = PY08Suggester(corpus, config=PY08Config(max_errors=3))
    xclean = XCleanSuggester(
        corpus, config=XCleanConfig(max_errors=3, gamma=None)
    )

    py08_list = py08.suggest(QUERY, k=3)
    xclean_list = xclean.suggest(QUERY, k=3)

    rows = []
    for rank in range(max(len(py08_list), len(xclean_list))):
        rows.append(
            (
                rank + 1,
                py08_list[rank].text if rank < len(py08_list) else "",
                xclean_list[rank].text
                if rank < len(xclean_list)
                else "",
            )
        )
    table = format_table(
        ("rank", "PY08", "XClean"),
        rows,
        title=f"Figure 1 — suggestions for {QUERY!r}",
    )

    py08_tokens = [s.tokens for s in py08_list]
    xclean_tokens = [s.tokens for s in xclean_list]
    checks = [
        shape_check(
            "PY08 ranks the rare 'health instance' first",
            py08_tokens
            and py08_tokens[0] == ("health", "instance"),
        ),
        shape_check(
            "XClean ranks 'health insurance' first",
            xclean_tokens
            and xclean_tokens[0] == ("health", "insurance"),
        ),
        shape_check(
            "XClean never suggests the disconnected pair",
            ("health", "instance") not in xclean_tokens,
        ),
    ]
    emit("fig1_bias", table + "\n" + "\n".join(checks))
    assert all("[OK ]" in c for c in checks)

    benchmark.pedantic(
        lambda: xclean.suggest(QUERY, k=3), rounds=5, iterations=1
    )
