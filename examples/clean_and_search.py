"""End-to-end: clean a dirty query, then execute the top suggestion.

The paper's Example 1 workflow completed: the user's misspelt
bibliography query is corrected by XClean and the corrected query is
run through the entity search that shares the same scoring model, so
the suggested query demonstrably has results.

Usage::

    python examples/clean_and_search.py
"""

from repro import (
    EntitySearch,
    XCleanConfig,
    XCleanSuggester,
    XMLDocument,
    build_corpus_index,
)


BIBLIOGRAPHY = """
<dblp>
  <article>
    <author>hinrich schuetze</author>
    <title>introduction to information retrieval</title>
    <year>2008</year>
  </article>
  <article>
    <author>hinrich schuetze</author>
    <title>automatic word sense discrimination</title>
    <year>1998</year>
  </article>
  <article>
    <author>gerard salton</author>
    <title>term weighting approaches in automatic text retrieval</title>
    <year>1988</year>
  </article>
  <inproceedings>
    <author>sergey brin</author>
    <author>lawrence page</author>
    <title>anatomy of a large scale hypertextual web search engine</title>
    <booktitle>www conference</booktitle>
  </inproceedings>
</dblp>
"""


def main() -> None:
    document = XMLDocument.from_string(BIBLIOGRAPHY, name="bibliography")
    corpus = build_corpus_index(document)
    config = XCleanConfig(max_errors=2, gamma=None)
    suggester = XCleanSuggester(corpus, config=config)
    search = EntitySearch(corpus, config=config)

    dirty = "hinrch shuetze retrieval"
    print(f"Dirty query: {dirty!r}")
    print()

    suggestions = suggester.suggest(dirty, k=3)
    print("Suggestions:")
    for rank, s in enumerate(suggestions, 1):
        print(f"  {rank}. {s.text}   (result type {s.result_type})")
    print()

    best = suggestions[0]
    print(f"Running the top suggestion {best.text!r}:")
    for result in search.search(best.text, k=5):
        print(
            f"  {'.'.join(map(str, result.dewey))}  "
            f"score={result.score:.3e}  {result.render(document)}"
        )


if __name__ == "__main__":
    main()
