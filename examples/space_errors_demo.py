"""Space insertion/deletion errors (Section VI-A extension).

"power point" vs "powerpoint": spacing errors change the *number* of
keywords, so plain per-keyword variant generation cannot fix them.  The
SpaceAwareSuggester wrapper expands the query with up to τ space edits
whose resulting tokens are vocabulary members, cleans every expansion,
and merges the ranked lists with an exp(-β·changes) penalty.

Usage::

    python examples/space_errors_demo.py
"""

from repro import (
    SpaceAwareSuggester,
    XCleanConfig,
    XCleanSuggester,
    XMLDocument,
    build_corpus_index,
)


def main() -> None:
    document = XMLDocument.from_string(
        """
        <kb>
          <doc><title>powerpoint slides template</title></doc>
          <doc><title>powerpoint presentation design</title></doc>
          <doc><title>power outage report</title></doc>
          <doc><title>point cloud rendering</title></doc>
          <doc><title>datamining lecture notes</title></doc>
          <doc><title>data warehouse architecture</title></doc>
          <doc><title>mining equipment safety</title></doc>
        </kb>
        """,
        name="space-errors",
    )
    corpus = build_corpus_index(document)
    base = XCleanSuggester(
        corpus, config=XCleanConfig(max_errors=1, gamma=None)
    )
    space_aware = SpaceAwareSuggester(base, max_changes=1)

    for query in ("power point", "datamining", "data mining"):
        print(f"Query: {query!r}")
        print("  plain XClean:")
        for rank, s in enumerate(base.suggest(query, k=3), 1):
            print(f"    {rank}. {s.text}")
        print("  space-aware XClean:")
        for rank, s in enumerate(space_aware.suggest(query, k=3), 1):
            print(f"    {rank}. {s.text}")
        print()


if __name__ == "__main__":
    main()
