"""Document-centric search: common misspellings over a Wikipedia-like
corpus, and node-type vs SLCA semantics side by side.

Reproduces the paper's INEX scenario (Table II's "gerat barrier reef"
style queries) on the synthetic Wikipedia corpus, using the embedded
common-misspellings list for the perturbation, and shows how the same
framework answers under the alternative SLCA semantics (Section VI-B).

Usage::

    python examples/wikipedia_search.py
"""

import random

from repro import SLCACleanSuggester, XCleanSuggester, XCleanConfig
from repro.datasets.queries import (
    rule_perturb_query,
    sample_clean_queries,
)
from repro.datasets.synthetic_wiki import WikiConfig, generate_wiki
from repro.index.corpus import build_corpus_index


def main() -> None:
    print("Generating a synthetic Wikipedia collection ...")
    wiki = generate_wiki(WikiConfig(articles=250, seed=23))
    corpus = build_corpus_index(wiki.document)
    stats = wiki.document.stats
    print(
        f"  {len(wiki.document.root.children)} articles, "
        f"{stats.node_count} nodes, max depth {stats.max_depth}, "
        f"vocabulary {len(corpus.vocabulary)}"
    )
    print()

    rng = random.Random(9)
    clean_queries = sample_clean_queries(
        wiki.document, corpus.tokenizer, 3, rng
    )
    config = XCleanConfig(max_errors=3, gamma=1000)
    node_type = XCleanSuggester(corpus, config=config)
    slca = SLCACleanSuggester(corpus, config=config)

    for clean in clean_queries:
        dirty = rule_perturb_query(clean, corpus.vocabulary, rng)
        print(f"Intended : {' '.join(clean)}")
        print(f"Typed    : {' '.join(dirty)}")
        for name, suggester in (
            ("node-type semantics", node_type),
            ("SLCA semantics     ", slca),
        ):
            suggestions = suggester.suggest(" ".join(dirty), k=3)
            rendered = ", ".join(s.text for s in suggestions) or "(none)"
            hit = any(s.tokens == clean for s in suggestions[:1])
            marker = "  [top-1 correct]" if hit else ""
            print(f"  {name}: {rendered}{marker}")
        print()


if __name__ == "__main__":
    main()
