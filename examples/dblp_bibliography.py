"""Bibliography search with typos — the paper's motivating scenario.

Example 1 of the paper: a user looks for publications by a specific
author on a specific topic, but the query carries typographical errors.
We reproduce the scenario on the synthetic DBLP corpus, comparing
XClean against the PY08 baseline and a search-engine-style corrector.

Usage::

    python examples/dblp_bibliography.py
"""

import random

from repro import PY08Suggester, XCleanSuggester, XCleanConfig
from repro.baselines.dictionary import DictionaryCorrector
from repro.datasets.queries import rand_perturb_query
from repro.datasets.synthetic_dblp import DBLPConfig, generate_dblp
from repro.index.corpus import build_corpus_index


def main() -> None:
    print("Generating a synthetic DBLP bibliography ...")
    dblp = generate_dblp(DBLPConfig(publications=3000, seed=17))
    corpus = build_corpus_index(dblp.document)
    stats = dblp.document.stats
    print(
        f"  {len(dblp.document.root.children)} publications, "
        f"{stats.node_count} nodes, vocabulary {len(corpus.vocabulary)}"
    )
    print()

    # Build an Example-1-style query: author last name + topic words,
    # then corrupt it like a hurried user would.
    rng = random.Random(4)
    publication = dblp.document.root.children[42]
    author = next(
        c.text.split()[-1]
        for c in publication.children
        if c.label == "author"
    )
    title_words = [
        w
        for c in publication.children
        if c.label == "title"
        for w in c.text.split()
        if len(w) >= 6
    ]
    clean = (author, *title_words[:2])
    dirty = rand_perturb_query(clean, corpus.vocabulary, rng)
    print(f"Intended query : {' '.join(clean)}")
    print(f"Typed (dirty)  : {' '.join(dirty)}")
    print()

    suggesters = [
        (
            "XClean",
            XCleanSuggester(
                corpus, config=XCleanConfig(max_errors=2, gamma=1000)
            ),
        ),
        ("PY08", PY08Suggester(corpus)),
        ("SE-style", DictionaryCorrector(corpus)),
    ]
    for name, suggester in suggesters:
        print(f"{name} suggestions:")
        suggestions = suggester.suggest(" ".join(dirty), k=5)
        if not suggestions:
            print("  (no suggestions — query considered clean)")
        for rank, s in enumerate(suggestions, 1):
            marker = " <== intended" if s.tokens == clean else ""
            print(f"  {rank}. {s.text}{marker}")
        print()


if __name__ == "__main__":
    main()
