"""Cognitive errors: phonetic variant generation (Section VI-A).

The paper's Example 1 user "is not aware of or cannot input ü" and
types "schutze" for "schütze"/"schuetze".  Transliterations like this
can exceed any reasonable edit-distance radius, but they *sound* the
same — Section VI-A proposes extending var(q) with cognitive-error
sources such as Soundex.  This example wires the phonetic variant
source into XClean alongside FastSS.

Usage::

    python examples/phonetic_errors.py
"""

from repro import (
    CompositeVariantGenerator,
    PhoneticIndex,
    VariantGenerator,
    XCleanConfig,
    XCleanSuggester,
    XMLDocument,
    build_corpus_index,
    soundex,
)

BIBLIOGRAPHY = """
<dblp>
  <article>
    <author>hinrich schuetze</author>
    <title>foundations of statistical natural language processing</title>
  </article>
  <article>
    <author>marie catherine smith</author>
    <title>parsing morphologically rich languages</title>
  </article>
  <article>
    <author>john smyth</author>
    <title>probabilistic topic models survey</title>
  </article>
</dblp>
"""


def main() -> None:
    document = XMLDocument.from_string(BIBLIOGRAPHY)
    corpus = build_corpus_index(document)
    print(
        "soundex('shootze') =", soundex("shootze"),
        "  soundex('schuetze') =", soundex("schuetze"),
    )
    print()

    config = XCleanConfig(max_errors=1, gamma=None)
    plain = XCleanSuggester(corpus, config=config)
    phonetic = XCleanSuggester(
        corpus,
        generator=CompositeVariantGenerator(
            [
                VariantGenerator(corpus.vocabulary.tokens(),
                                 max_errors=1),
                PhoneticIndex(corpus.vocabulary.tokens(), distance=2),
            ],
            max_errors=2,
        ),
        config=XCleanConfig(max_errors=2, gamma=None),
    )

    for query in ("shootze language", "smythe topic"):
        print(f"Query: {query!r}")
        for name, suggester in (
            ("edit-distance only  ", plain),
            ("with phonetic source", phonetic),
        ):
            suggestions = suggester.suggest(query, k=2)
            rendered = ", ".join(s.text for s in suggestions) or "(none)"
            print(f"  {name}: {rendered}")
        print()


if __name__ == "__main__":
    main()
