"""Quickstart: clean a misspelt keyword query over a small XML document.

Runs the paper's running example (Figure 2 / Examples 2-5): the dirty
query "tree icdt" over a tree with c/d record nodes, showing the ranked
alternative queries and their inferred result types.

Usage::

    python examples/quickstart.py
"""

from repro import (
    XCleanConfig,
    XCleanSuggester,
    XMLDocument,
    build_corpus_index,
)
from repro.xmltree import paper_example_tree


def main() -> None:
    # 1. Load an XML document.  Any parser input works; here we use the
    #    paper's example tree built programmatically.
    document = XMLDocument(paper_example_tree(), name="paper-example")
    print("Document:")
    print(document.serialize())
    print()

    # 2. Index it: one pass builds the Dewey-coded inverted lists, the
    #    path index for result-type inference, and the statistics for
    #    the language model.
    corpus = build_corpus_index(document)
    print(f"Index: {corpus.describe()}")
    print()

    # 3. Ask for suggestions.  gamma=None disables pruning (the corpus
    #    is tiny); beta=5 is the paper's error penalty.
    suggester = XCleanSuggester(
        corpus,
        config=XCleanConfig(max_errors=1, beta=5.0, gamma=None),
    )
    query = "tree icdt"
    print(f"Query: {query!r}")
    for rank, suggestion in enumerate(suggester.suggest(query, k=5), 1):
        print(
            f"  {rank}. {suggestion.text:<15} "
            f"score={suggestion.score:.3e}  "
            f"result type={suggestion.result_type}"
        )

    # 4. Inspect what the single-pass algorithm did.
    stats = suggester.last_stats
    print()
    print(
        f"Work: {stats.groups_processed} subtree groups, "
        f"{stats.candidates_evaluated} candidates, "
        f"{stats.postings_read} postings read, "
        f"{stats.postings_skipped} skipped"
    )


if __name__ == "__main__":
    main()
