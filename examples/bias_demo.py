"""Figure 1 live: PY08's scoring biases versus XClean.

Builds the "health insurance" scenario of Section II — a frequent,
co-occurring correction versus a rare, disconnected one — and shows
PY08 suggesting "health instance" while XClean suggests
"health insurance".

Usage::

    python examples/bias_demo.py
"""

from repro import (
    PY08Config,
    PY08Suggester,
    XCleanConfig,
    XCleanSuggester,
    XMLDocument,
    build_corpus_index,
)
from repro.xmltree.builder import build_tree


def build_scenario():
    """Records where 'insurance' is frequent and co-occurs with
    'health', while 'instance' is rare and never does."""
    records = [
        ("record", [("text", "health insurance policy coverage")])
        for _ in range(8)
    ]
    records.append(("record", [("text", "singular instance")]))
    records.append(("record", [("text", "health checkup")]))
    return XMLDocument(build_tree(("db", records)), name="figure-1")


def main() -> None:
    corpus = build_corpus_index(build_scenario())
    query = "health insurence"
    print(f"Query: {query!r}")
    print(
        "  ed(insurence, insurance) = 1 (frequent, co-occurs with"
        " health)"
    )
    print(
        "  ed(insurence, instance)  = 3 (rare => huge idf, never"
        " co-occurs)"
    )
    print()

    py08 = PY08Suggester(corpus, config=PY08Config(max_errors=3))
    print("PY08 (max tf.idf per keyword, biased):")
    for rank, s in enumerate(py08.suggest(query, k=3), 1):
        print(f"  {rank}. {s.text}   score={s.score:.4f}")
    print()

    xclean = XCleanSuggester(
        corpus, config=XCleanConfig(max_errors=3, gamma=None)
    )
    print("XClean (scores candidates by their query results):")
    for rank, s in enumerate(xclean.suggest(query, k=3), 1):
        print(
            f"  {rank}. {s.text}   score={s.score:.3e}   "
            f"type={s.result_type}"
        )
    print()
    print(
        "XClean never suggests 'health instance': no entity below the"
    )
    print(
        "root contains both words, so that candidate has no results"
    )
    print("and is dropped — the paper's validity guarantee.")


if __name__ == "__main__":
    main()
