"""SLCA/ELCA substrate: LCA-based result semantics computations."""

from repro.slca.elca import containing_ancestors, elca, elca_brute_force
from repro.slca.multiway import remove_ancestors, slca, slca_brute_force

__all__ = [
    "containing_ancestors",
    "elca",
    "elca_brute_force",
    "remove_ancestors",
    "slca",
    "slca_brute_force",
]
