"""Exclusive Lowest Common Ancestors (ELCA, XRANK semantics).

The paper's framework "is general enough to accommodate other
semantics"; besides the SLCA variant of Section VI-B the XML keyword
search literature's other standard result definition is the ELCA
[Guo et al., XRANK]: a node v is an ELCA if its subtree contains at
least one occurrence of *every* keyword even after excluding the
occurrences located under descendants of v that themselves contain all
keywords.  Every SLCA is an ELCA; ELCAs additionally include ancestors
that have their own exclusive witnesses.

Computation here uses the classic characterization:

* the *CA set* (nodes containing all keywords) is exactly the set of
  ancestors-or-self of the SLCA nodes;
* arrange the CA set as a tree (by ancestorship); v is an ELCA iff for
  every keyword, v's occurrence count strictly exceeds the sum over
  v's CA-children — i.e. some occurrence survives the exclusion.

A brute-force implementation straight from the definition backs the
property tests.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.slca.multiway import slca
from repro.xmltree.dewey import DeweyCode, is_ancestor


def _subtree_count(
    sorted_codes: Sequence[DeweyCode], root: DeweyCode
) -> int:
    """Occurrences with Dewey codes inside ``root``'s subtree."""
    low = bisect_left(sorted_codes, root)
    upper_bound = root[:-1] + (root[-1] + 1,)
    high = bisect_left(sorted_codes, upper_bound)
    return high - low


def containing_ancestors(
    slca_nodes: Sequence[DeweyCode],
) -> list[DeweyCode]:
    """The CA set: every ancestor-or-self of an SLCA, document order."""
    seen: set[DeweyCode] = set()
    for node in slca_nodes:
        for depth in range(1, len(node) + 1):
            seen.add(node[:depth])
    return sorted(seen)


def elca(lists: Sequence[Sequence[DeweyCode]]) -> list[DeweyCode]:
    """ELCA nodes of the given occurrence lists (document order).

    Input lists must be sorted in document order.
    """
    if not lists or any(not lst for lst in lists):
        return []
    smallest = slca(lists)
    if not smallest:
        return []
    ca_nodes = containing_ancestors(smallest)

    # CA-children: the maximal CA-descendants of each CA node.  A stack
    # sweep over document order links each node to its nearest CA
    # ancestor.
    children: dict[DeweyCode, list[DeweyCode]] = {c: [] for c in ca_nodes}
    stack: list[DeweyCode] = []
    for node in ca_nodes:
        while stack and not is_ancestor(stack[-1], node):
            stack.pop()
        if stack:
            children[stack[-1]].append(node)
        stack.append(node)

    result = []
    for node in ca_nodes:
        if all(
            _subtree_count(lst, node)
            > sum(_subtree_count(lst, child) for child in children[node])
            for lst in lists
        ):
            result.append(node)
    return result


def elca_brute_force(
    lists: Sequence[Sequence[DeweyCode]],
) -> list[DeweyCode]:
    """Reference ELCA straight from the XRANK definition."""
    if not lists or any(not lst for lst in lists):
        return []
    # CA set by direct containment test.
    candidates: set[DeweyCode] = set()
    for lst in lists:
        for code in lst:
            for depth in range(1, len(code) + 1):
                candidates.add(code[:depth])
    ca = sorted(
        c
        for c in candidates
        if all(_subtree_count(sorted(lst), c) > 0 for lst in lists)
    )
    ca_set = set(ca)

    result = []
    for node in ca:
        is_exclusive = True
        for lst in lists:
            survivors = 0
            for code in lst:
                if code[: len(node)] != node:
                    continue
                # Excluded if some CA node sits strictly between node
                # and the occurrence (or is the occurrence itself).
                excluded = any(
                    code[:depth] in ca_set
                    for depth in range(len(node) + 1, len(code) + 1)
                )
                if not excluded:
                    survivors += 1
            if survivors == 0:
                is_exclusive = False
                break
        if is_exclusive:
            result.append(node)
    return result
