"""Multi-way SLCA computation over Dewey-coded node lists.

The Smallest Lowest Common Ancestor (SLCA) semantics [Xu &
Papakonstantinou] defines the results of a keyword query as the nodes
whose subtrees contain at least one instance of *every* keyword and none
of whose proper descendants do.  Section VI-B of the paper scores
candidate queries by treating their SLCA nodes as entity roots.

The implementation follows the Indexed Lookup Eager idea: for every
occurrence ``u`` in the smallest list, the deepest node containing ``u``
plus one element of another list L is ``lca(u, m)`` where ``m`` is the
match of ``u`` in L — the deeper of pred(u, L) and succ(u, L) by LCA
depth.  Folding over all lists yields the deepest common container of
``u``; removing ancestors from the candidate set yields the SLCAs.

A brute-force reference (:func:`slca_brute_force`) backs the property
tests.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.xmltree.dewey import DeweyCode, common_prefix, is_ancestor


def _closest_lca(u: DeweyCode, sorted_list: Sequence[DeweyCode]) -> DeweyCode:
    """Deepest LCA of ``u`` with any element of ``sorted_list``.

    The deepest LCA is achieved by one of the two document-order
    neighbours of ``u`` in the list (standard SLCA lemma).
    """
    position = bisect_left(sorted_list, u)
    best: DeweyCode = ()
    if position < len(sorted_list):
        candidate = common_prefix(u, sorted_list[position])
        if len(candidate) > len(best):
            best = candidate
    if position > 0:
        candidate = common_prefix(u, sorted_list[position - 1])
        if len(candidate) > len(best):
            best = candidate
    return best


def slca(lists: Sequence[Sequence[DeweyCode]]) -> list[DeweyCode]:
    """SLCA nodes of the given occurrence lists (document order).

    Every input list must be sorted in document order and non-empty for
    a non-empty result; with a single list the nodes themselves are the
    SLCAs (after removing ancestors of other list members).
    """
    if not lists or any(not lst for lst in lists):
        return []
    # Iterate the smallest list; fold matches against the rest.
    anchor_index = min(range(len(lists)), key=lambda i: len(lists[i]))
    others = [lists[i] for i in range(len(lists)) if i != anchor_index]
    candidates: set[DeweyCode] = set()
    for u in lists[anchor_index]:
        container: DeweyCode = u
        for other in others:
            match = _closest_lca(u, other)
            if len(match) < len(container):
                container = match
            if not container:
                break
        if container:
            candidates.add(container)
    return remove_ancestors(sorted(candidates))


def remove_ancestors(sorted_codes: Sequence[DeweyCode]) -> list[DeweyCode]:
    """Keep only codes that are not proper ancestors of a later code.

    Input must be sorted in document order (ancestors precede their
    descendants, so a single backward check per element suffices).
    """
    result: list[DeweyCode] = []
    for code in sorted_codes:
        while result and is_ancestor(result[-1], code):
            result.pop()
        if result and result[-1] == code:
            continue
        result.append(code)
    return result


def slca_brute_force(
    lists: Sequence[Sequence[DeweyCode]],
) -> list[DeweyCode]:
    """Reference SLCA: test every ancestor of every occurrence.

    Exponential-free but quadratic; only suitable for tests.
    """
    if not lists or any(not lst for lst in lists):
        return []
    # Candidate containers: every ancestor-or-self of every occurrence.
    candidates: set[DeweyCode] = set()
    for lst in lists:
        for code in lst:
            for depth in range(1, len(code) + 1):
                candidates.add(code[:depth])

    def contains_all(container: DeweyCode) -> bool:
        # The first element >= container in document order is inside
        # container's subtree iff container has any occurrence below it.
        for lst in lists:
            lo = bisect_left(lst, container)
            if lo >= len(lst) or lst[lo][: len(container)] != container:
                return False
        return True

    containing = sorted(c for c in candidates if contains_all(c))
    return remove_ancestors(containing)
