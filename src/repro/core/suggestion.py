"""Public result types shared by all suggesters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol


@dataclass(frozen=True)
class Suggestion:
    """One suggested alternative query.

    Attributes:
        tokens: the candidate query C as a token tuple.
        score: the suggester's score (for XClean: P(C|Q,T) up to the
            query-constant κ of Eq. 2); comparable only within one
            suggester's output for one query.
        result_type: the inferred result node type p_C as a path string
            (XClean-family suggesters only).
    """

    tokens: tuple[str, ...]
    score: float
    result_type: str | None = None

    @property
    def text(self) -> str:
        """The suggestion as a plain query string."""
        return " ".join(self.tokens)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.text


class Suggester(Protocol):
    """Anything that can clean a keyword query."""

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Top-k alternative queries for ``query``, best first."""
        ...  # pragma: no cover - protocol


@dataclass
class CleaningStats:
    """Work counters of one ``suggest`` call (benchmarks/ablations).

    All counters are cumulative over the single query evaluation that
    produced them.
    """

    keywords: int = 0
    space_size: int = 0
    groups_processed: int = 0
    candidates_evaluated: int = 0
    entities_scored: int = 0
    postings_read: int = 0
    postings_skipped: int = 0
    accumulator_evictions: int = 0
    #: Result types computed *during this query* (type-cache misses);
    #: cached lookups are counted in ``result_type_cache_hits``.
    result_types_computed: int = 0
    #: Per-query hit/miss deltas of the bounded ResultTypeFinder LRU.
    result_type_cache_hits: int = 0
    result_type_cache_misses: int = 0
    #: var_ε(q) memo hits/misses during this call (VariantGenerator).
    variant_cache_hits: int = 0
    variant_cache_misses: int = 0
    #: Variant-set → posting-list resolution memo (CorpusIndex).
    merged_cache_hits: int = 0
    merged_cache_misses: int = 0
    #: Merge-kernel intersection (plan) cache: a hit replays the
    #: precomputed group runs for this query's variant sets instead of
    #: re-intersecting the packed columns (``index/merge_kernel``).
    intersection_cache_hits: int = 0
    intersection_cache_misses: int = 0
    #: Candidates the kernel's in-loop γ-pruning skipped because their
    #: score upper bound fell below the saturated accumulator floor —
    #: never materialized, never scored, and provably the same adds the
    #: pool would have rejected.
    kernel_pruned: int = 0
    #: Whole-result LRU of the serving layer (SuggestionService); a hit
    #: means Algorithm 1 never ran for the query.
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    #: True when a deadline expired mid-query and the suggestions are
    #: the best-so-far top-k rather than the exact answer (the anytime
    #: contract of ``core/deadline.py``).  Partial results are served
    #: but never cached.
    partial: bool = False
    #: Trace id of the span tree covering this query, when a live
    #: tracer was attached (``repro.obs.trace``); correlates batch
    #: output, flight-recorder entries, and exported traces.
    trace_id: str | None = None
    extra: dict[str, float] = field(default_factory=dict)
