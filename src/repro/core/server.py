"""The batch serving layer: one warm index, many queries.

:class:`SuggestionService` wraps an :class:`XCleanSuggester` with the
two things a production front-end needs that a single ``suggest`` call
cannot provide:

* a **whole-result LRU cache** keyed by the *normalized* query (token
  sequence after tokenization) and k — real traffic is heavily skewed,
  and a hit skips Algorithm 1, variant generation, everything;
* a **batch API** (:meth:`SuggestionService.suggest_batch`) that
  de-duplicates the batch, serves cached entries, and optionally fans
  the remaining unique queries out over a ``concurrent.futures``
  process pool whose workers share the read-only corpus index (on
  POSIX the fork inherits the parent's index pages copy-on-write, so
  workers start without re-building or re-pickling anything).

The service keeps the :class:`CleaningStats` contract: after every
``suggest`` call ``last_stats`` describes the work done, including the
``result_cache_*`` counters (a hit reports a stats object with
``result_cache_hits=1`` and no algorithm work).
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.suggestion import CleaningStats, Suggestion
from repro.exceptions import QueryError
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import CorpusIndex

#: Default bound of the whole-result LRU.
DEFAULT_RESULT_CACHE_SIZE = 4096


@dataclass
class ServiceStats:
    """Cumulative serving counters (whole service lifetime)."""

    queries_served: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    unanswerable: int = 0


# ----------------------------------------------------------------------
# Process-pool plumbing.  Module-level so the worker side is picklable;
# each worker builds its suggester once in the initializer and reuses
# it for every query it is handed.
# ----------------------------------------------------------------------

_WORKER_SUGGESTER: XCleanSuggester | None = None


def _init_worker(corpus: CorpusIndex, config: XCleanConfig) -> None:
    global _WORKER_SUGGESTER
    _WORKER_SUGGESTER = XCleanSuggester(corpus, config=config)


def _worker_suggest(task: tuple[str, int]) -> list[Suggestion]:
    query, k = task
    assert _WORKER_SUGGESTER is not None, "worker not initialized"
    try:
        return _WORKER_SUGGESTER.suggest(query, k)
    except QueryError:
        return []


class SuggestionService:
    """Query-serving facade over one read-only :class:`CorpusIndex`."""

    def __init__(
        self,
        corpus: CorpusIndex,
        config: XCleanConfig | None = None,
        generator: VariantGenerator | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
    ):
        self.corpus = corpus
        self.config = config or XCleanConfig()
        self.suggester = XCleanSuggester(
            corpus, generator=generator, config=self.config
        )
        self.result_cache_size = result_cache_size
        self._result_cache: OrderedDict[
            tuple[tuple[str, ...], int], tuple[Suggestion, ...]
        ] = OrderedDict()
        self.stats = ServiceStats()
        self.last_stats = CleaningStats()

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------

    def _cache_key(
        self, query: str, k: int
    ) -> tuple[tuple[str, ...], int]:
        """Normalize the query so trivial rewrites share a cache slot."""
        return (tuple(self.corpus.tokenizer.tokenize(query)), k)

    def _cache_put(
        self,
        key: tuple[tuple[str, ...], int],
        suggestions: Sequence[Suggestion],
    ) -> None:
        cache = self._result_cache
        cache[key] = tuple(suggestions)
        if len(cache) > self.result_cache_size:
            cache.popitem(last=False)

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Top-k suggestions, served from the result cache when possible.

        Raises:
            QueryError: when the query has no usable keywords (callers
                that prefer empty answers should use ``suggest_batch``).
        """
        self.stats.queries_served += 1
        key = self._cache_key(query, k)
        cached = self._result_cache.get(key)
        if cached is not None:
            self._result_cache.move_to_end(key)
            self.stats.result_cache_hits += 1
            self.last_stats = CleaningStats(result_cache_hits=1)
            return list(cached)
        # Count the miss only once the suggester answers: unanswerable
        # queries raise and are tallied separately, exactly as in the
        # parallel batch path.
        suggestions = self.suggester.suggest(query, k)
        self.stats.result_cache_misses += 1
        stats = self.suggester.last_stats
        stats.result_cache_misses += 1
        self.last_stats = stats
        self._cache_put(key, suggestions)
        return list(suggestions)

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def suggest_batch(
        self,
        queries: Sequence[str],
        k: int = 10,
        workers: int | None = None,
    ) -> list[list[Suggestion]]:
        """Answer every query; order and length match ``queries``.

        Unusable queries (no keywords after tokenization) yield empty
        lists instead of raising.  The batch is de-duplicated through
        the result cache first; with ``workers`` > 1 the remaining
        unique queries run on a process pool over the shared index.
        """
        if workers is not None and workers > 1:
            return self._suggest_batch_parallel(queries, k, workers)
        out: list[list[Suggestion]] = []
        for query in queries:
            try:
                out.append(self.suggest(query, k))
            except QueryError:
                self.stats.unanswerable += 1
                out.append([])
        return out

    def _suggest_batch_parallel(
        self, queries: Sequence[str], k: int, workers: int
    ) -> list[list[Suggestion]]:
        keys = [self._cache_key(query, k) for query in queries]
        cache = self._result_cache
        # Unique cache misses, first-occurrence order.
        pending: dict[tuple[tuple[str, ...], int], str] = {}
        for key, query in zip(keys, queries):
            if key not in cache and key not in pending and key[0]:
                pending[key] = query
        if pending:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self.corpus, self.config),
            ) as pool:
                answers = pool.map(
                    _worker_suggest,
                    [(query, k) for query in pending.values()],
                )
                for key, suggestions in zip(pending, answers):
                    self._cache_put(key, suggestions)
        out: list[list[Suggestion]] = []
        computed = set(pending)
        for key in keys:
            self.stats.queries_served += 1
            cached = cache.get(key)
            if cached is None:
                # Empty token tuple: unanswerable, never cached.
                self.stats.unanswerable += 1
                out.append([])
                continue
            cache.move_to_end(key)
            if key in computed:
                # First service of a freshly computed answer is a miss;
                # duplicates later in the batch hit the cache.
                self.stats.result_cache_misses += 1
                computed.discard(key)
            else:
                self.stats.result_cache_hits += 1
            out.append(list(cached))
        return out
