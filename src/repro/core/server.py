"""The batch serving layer: one warm index, many queries.

:class:`SuggestionService` wraps an :class:`XCleanSuggester` with the
things a production front-end needs that a single ``suggest`` call
cannot provide:

* a **whole-result LRU cache** keyed by the *normalized* query (token
  sequence after tokenization) and k — real traffic is heavily skewed,
  and a hit skips Algorithm 1, variant generation, everything;
* a **batch API** (:meth:`SuggestionService.suggest_batch`) that
  de-duplicates the batch, serves cached entries, and optionally fans
  the remaining unique queries out over a **persistent process pool**
  whose workers share the read-only corpus index (on POSIX the fork
  inherits the parent's index pages copy-on-write, so workers start
  without re-building or re-pickling anything);
* **resilience**: the pool is started lazily, reused across batches
  (workers keep their warm caches), recycled after
  ``worker_recycle_after`` dispatched queries, and every dispatched
  query can carry a ``worker_timeout`` — on timeout the query is
  retried once and then *degraded* to in-process execution, so a hung
  or crashed worker slows one answer instead of losing it.  A suspect
  pool is torn down after the batch and restarted on demand;
* **self-healing** (see ``docs/serving.md`` → Reliability):
  *admission control* bounds concurrent in-flight work and sheds the
  excess with a typed :class:`~repro.exceptions.Overloaded` instead of
  queueing without bound; a per-pool *circuit breaker* stops
  dispatching to a pool that keeps failing (open after
  ``breaker_threshold`` consecutive failures, half-open probe after
  ``breaker_cooldown`` seconds, transitions visible in metrics); and
  *snapshot quarantine* — when pool trouble coincides with a corrupt
  on-disk snapshot, the file is verified, moved aside, and the service
  degrades to the parent's still-valid mapping in-process;
* **observability**: per-stage timers, counters, and latency
  histograms collected in a :class:`~repro.obs.MetricsRegistry`,
  snapshotted by :meth:`SuggestionService.metrics` as JSON or
  Prometheus text.  Pool workers keep their own registries and ship
  per-query stage-timer *deltas* back in the result payload; the
  parent merges them tally-for-tally, so ``metrics()`` covers pool
  work too.  With a live :class:`~repro.obs.Tracer` attached every
  request gets a span tree — batch fan-out included: each worker runs
  a per-task tracer under the parent's trace id, returns the finished
  subtree, and the parent stitches it under a ``pool.task`` span —
  and a :class:`~repro.obs.FlightRecorder` retains the last N traces
  plus every slow/partial/degraded/faulted one, dumped on demand
  (:meth:`SuggestionService.dump_flight_record`) or automatically
  when the circuit breaker opens or a snapshot is quarantined (see
  ``docs/observability.md``).

The service keeps the :class:`CleaningStats` contract on *both* batch
paths: after every served query ``last_stats`` describes the work done
for it (a cache hit reports ``result_cache_hits=1`` and no algorithm
work; a fresh parallel answer carries the worker's counters), and
unanswerable queries are tallied per occurrence and never cached.

Lifecycle: the service is a context manager; :meth:`close` shuts the
pool down.  A closed service still answers queries — parallel batches
simply degrade to in-process execution.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from contextlib import contextmanager
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Iterator, Sequence

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.suggestion import CleaningStats, Suggestion
from repro.exceptions import (
    ConfigurationError,
    Overloaded,
    QueryError,
    StorageError,
)
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import CorpusIndex
from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.obs.faults import active as _active_faults
from repro.obs.metrics import NULL_METRICS
from repro.obs.recorder import FlightEntry, FlightRecorder
from repro.obs.trace import NULL_TRACER, Span, Tracer

logger = logging.getLogger(__name__)

#: Result-LRU key: (index identity+generation, normalized tokens, k).
#: The identity component makes answers computed against a replaced or
#: invalidated snapshot unreachable instead of stale.  The leading
#: swap-epoch counter covers corpus *replacement* (id() can be reused
#: by the allocator once the old index is collected).
_CacheKey = tuple[tuple[int, int, int], tuple[str, ...], int]

#: Default bound of the whole-result LRU.
DEFAULT_RESULT_CACHE_SIZE = 4096

#: Default number of dispatched queries after which the worker pool is
#: recycled (between batches).  Bounds slow leaks in long-lived
#: workers — fresh processes re-fork from the warm parent.
DEFAULT_RECYCLE_AFTER = 10_000

#: Consecutive pool failures before the circuit breaker opens.
DEFAULT_BREAKER_THRESHOLD = 5

#: Seconds an open breaker waits before letting a half-open probe
#: batch through.
DEFAULT_BREAKER_COOLDOWN = 30.0

#: Seconds :meth:`SuggestionService.close` grants workers to exit
#: before escalating to ``terminate``/``kill`` — a hung worker must
#: never turn close() into a deadlock or a leaked process.
DEFAULT_CLOSE_GRACE = 1.0

#: Floor (seconds) of the ``retry_after`` hint attached to admission
#: rejections.  Before the service has latency samples this is the
#: whole hint; afterwards the hint tracks the request-latency EWMA —
#: roughly the time for one in-flight slot to free up.
DEFAULT_RETRY_AFTER = 0.05

#: Smoothing factor of the request-latency EWMA behind
#: :meth:`SuggestionService.retry_after_hint`.
_LATENCY_EWMA_ALPHA = 0.2


@dataclass
class ServiceStats:
    """Cumulative serving counters (whole service lifetime)."""

    queries_served: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    unanswerable: int = 0
    #: Process-pool lifecycle and resilience counters.
    pool_starts: int = 0
    pool_recycles: int = 0
    worker_timeouts: int = 0
    worker_failures: int = 0
    degraded_queries: int = 0
    #: Queries rejected with :class:`Overloaded` before any work ran
    #: (admission bound hit, or pool work refused by an open breaker).
    shed_queries: int = 0
    #: Answers served with ``CleaningStats.partial = True`` (deadline
    #: expired mid-query; best-so-far top-k, never cached).
    partial_results: int = 0
    #: Live-update records durably applied via :meth:`apply_updates`.
    updates_applied: int = 0
    #: Generation swaps: overlay installs, compactions, and snapshot
    #: hot-swaps (each one bumps the result-cache epoch).
    generation_swaps: int = 0
    #: Corrupt snapshot files moved aside (see ``index/snapshot.py``).
    snapshot_quarantined: int = 0
    #: Pickled size of the worker initializer payload (bytes).  With a
    #: snapshot-backed corpus this is a file path plus the config —
    #: constant in corpus size; the pickled-corpus fallback makes the
    #: O(corpus) transfer visible here.  0 until the first pool start.
    pool_init_bytes: int = 0


class CircuitBreaker:
    """Consecutive-failure circuit breaker guarding the worker pool.

    States: ``closed`` (dispatch normally) → ``open`` after
    ``threshold`` consecutive failures (dispatch refused; callers shed
    with :class:`Overloaded`) → ``half_open`` once ``cooldown`` seconds
    have passed (exactly one probe is let through) → back to ``closed``
    on probe success or ``open`` on probe failure.

    Transitions are recorded in the ``breaker_transitions_total``
    counter, labeled by destination state, so the current state is
    reconstructible from metrics.  ``clock`` is injectable for tests.
    ``on_open`` is an optional zero-argument callback invoked whenever
    the breaker transitions *to* open — the service uses it to dump
    the flight record while the evidence is still retained.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        metrics: MetricsRegistry | None = None,
        clock=monotonic,
        on_open=None,
    ):
        if threshold < 1:
            raise ConfigurationError("breaker threshold must be >= 1")
        if cooldown < 0:
            raise ConfigurationError("breaker cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.failures = 0
        self.on_open = on_open
        self._metrics = metrics or NULL_METRICS
        self._clock = clock
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May work be dispatched right now?

        In ``open`` state this flips to ``half_open`` (returning True —
        the caller's dispatch *is* the probe) once the cooldown has
        elapsed; in ``half_open`` further dispatches are refused until
        the in-flight probe resolves via ``record_*``.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at >= self.cooldown:
                self._transition("half_open")
                return True
            return False
        return False  # half_open: one probe at a time

    def record_success(self) -> None:
        self.failures = 0
        if self.state != "closed":
            self._transition("closed")

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or (
            self.state == "closed" and self.failures >= self.threshold
        ):
            self._opened_at = self._clock()
            self._transition("open")

    def retry_after(self) -> float | None:
        """Seconds until a probe would be allowed (None when not open)."""
        if self.state != "open":
            return None
        left = self.cooldown - (self._clock() - self._opened_at)
        return left if left > 0 else 0.0

    def _transition(self, to: str) -> None:
        if to == self.state:
            return
        logger.info("circuit breaker %s -> %s", self.state, to)
        self.state = to
        if self._metrics.enabled:
            self._metrics.inc("breaker_transitions_total", to=to)
        if to == "open" and self.on_open is not None:
            try:
                self.on_open()
            except Exception:  # pragma: no cover - diagnostics only
                logger.exception("breaker on_open callback failed")


# ----------------------------------------------------------------------
# Process-pool plumbing.  Module-level so the worker side is picklable;
# each worker builds its suggester once in the initializer and reuses
# it for every query it is handed.
# ----------------------------------------------------------------------

_WORKER_SUGGESTER: XCleanSuggester | None = None

#: Worker-local registry; per-task stage-timer *deltas* are shipped
#: back in the result payload and merged into the parent's registry,
#: so pool work shows up in ``SuggestionService.metrics()``.
_WORKER_METRICS: MetricsRegistry | None = None


def _enter_worker(config: XCleanConfig) -> None:
    """Shared worker-initializer prologue: faults, then the init site.

    The parent's fault plan travels in the (picklable) config, so it
    reaches workers under any start method, not just fork; a ``raise``
    at ``worker.init`` breaks the pool exactly like a real initializer
    crash (bad snapshot, OOM) would.
    """
    if config.fault_plan is not None:
        from repro.obs import faults

        faults.install_spec(config.fault_plan, seed=config.fault_seed)
    faults = _active_faults()
    if faults.enabled:
        faults.hit("worker.init")


def _init_worker(corpus: CorpusIndex, config: XCleanConfig) -> None:
    global _WORKER_SUGGESTER, _WORKER_METRICS
    _enter_worker(config)
    _WORKER_METRICS = MetricsRegistry(buckets=config.latency_buckets)
    _WORKER_SUGGESTER = XCleanSuggester(
        corpus, config=config, metrics=_WORKER_METRICS
    )


def _init_worker_snapshot(
    snapshot_path: str, config: XCleanConfig
) -> None:
    """Initialize a worker from a v3 snapshot path.

    Every worker mmaps the same file, so the posting bytes live once
    in the OS page cache no matter how many workers the pool runs —
    the init payload is a path string instead of a pickled corpus.
    """
    global _WORKER_SUGGESTER, _WORKER_METRICS
    from repro.index.snapshot import load_snapshot

    _enter_worker(config)
    _WORKER_METRICS = MetricsRegistry(buckets=config.latency_buckets)
    _WORKER_SUGGESTER = XCleanSuggester(
        load_snapshot(snapshot_path), config=config,
        metrics=_WORKER_METRICS,
    )


def _worker_suggest(task: tuple[str, int, dict | None]):
    """Answer one query in a worker.

    ``task`` is ``(query, k, trace_ctx)`` where ``trace_ctx`` is a
    small picklable dict carrying the parent's trace id (or ``None``
    when tracing is off).  Returns ``(suggestions, stats, extras)`` so
    the parent can keep the ``last_stats`` contract — ``extras`` holds
    the worker's per-query stage-timer deltas and, when traced, the
    finished ``worker`` span subtree for the parent to stitch.
    Returns ``None`` for an unanswerable query — the parent must *not*
    cache that (the serial path re-raises per occurrence, so a cached
    empty answer would diverge).
    """
    query, k, trace_ctx = task
    assert _WORKER_SUGGESTER is not None, "worker not initialized"
    faults = _active_faults()
    if faults.enabled:
        # ``raise`` here surfaces in the parent as a worker failure;
        # ``delay`` past the worker timeout exercises the retry →
        # degrade ladder.
        faults.hit("worker.query")
    registry = _WORKER_METRICS
    before = registry.stage_states() if registry is not None else {}
    tracer = None
    worker_span = None
    if trace_ctx is not None:
        tracer = Tracer()
        tracer.begin(
            "worker",
            trace_id=trace_ctx.get("trace_id"),
            query=query,
            pid=os.getpid(),
        )
        _WORKER_SUGGESTER.bind_tracer(tracer)
    try:
        try:
            suggestions = _WORKER_SUGGESTER.suggest(query, k)
        except QueryError:
            return None
    finally:
        if tracer is not None:
            worker_span = tracer.end()
            _WORKER_SUGGESTER.bind_tracer(None)
    extras: dict = {}
    if registry is not None:
        deltas = registry.stage_deltas(before)
        if deltas:
            extras["stages"] = deltas
    if worker_span is not None:
        extras["span"] = worker_span
    return (
        tuple(suggestions),
        _WORKER_SUGGESTER.last_stats,
        extras or None,
    )


class SuggestionService:
    """Query-serving facade over one read-only :class:`CorpusIndex`."""

    def __init__(
        self,
        corpus: CorpusIndex,
        config: XCleanConfig | None = None,
        generator: VariantGenerator | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        workers: int | None = None,
        worker_timeout: float | None = None,
        worker_recycle_after: int = DEFAULT_RECYCLE_AFTER,
        metrics: MetricsRegistry | None = None,
        max_pending: int | None = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        close_grace: float = DEFAULT_CLOSE_GRACE,
        tracer: Tracer | None = None,
        flight_recorder: FlightRecorder | None = None,
        flight_record_path: str | None = None,
        slow_threshold: float | None = None,
    ):
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                "max_pending must be >= 1 or None (unbounded)"
            )
        self.corpus = corpus
        self.config = config or XCleanConfig()
        self.metrics_registry = metrics or MetricsRegistry(
            buckets=self.config.latency_buckets
        )
        corpus.bind_metrics(self.metrics_registry)
        self._installed_faults = False
        if self.config.fault_plan is not None:
            from repro.obs import faults

            faults.install_spec(
                self.config.fault_plan, seed=self.config.fault_seed
            )
            self._installed_faults = True
        self.tracer = tracer or NULL_TRACER
        self.suggester = XCleanSuggester(
            corpus,
            generator=generator,
            config=self.config,
            metrics=self.metrics_registry,
            tracer=self.tracer,
        )
        #: Retention of finished request traces; created automatically
        #: when a live tracer is attached (pass an explicit recorder to
        #: control capacities).  ``None`` when tracing is off.
        if flight_recorder is not None:
            self.flight_recorder: FlightRecorder | None = (
                flight_recorder
            )
        elif self.tracer.enabled:
            self.flight_recorder = FlightRecorder(
                slow_threshold=slow_threshold
            )
        else:
            self.flight_recorder = None
        if (
            self.flight_recorder is not None
            and slow_threshold is not None
        ):
            self.flight_recorder.slow_threshold = slow_threshold
        #: When set, automatic dumps (breaker open, snapshot
        #: quarantine) write JSONL here; on-demand dumps default to it.
        self.flight_record_path = flight_record_path
        self.result_cache_size = result_cache_size
        self._result_cache: OrderedDict[
            _CacheKey, tuple[Suggestion, ...]
        ] = OrderedDict()
        self.stats = ServiceStats()
        self.last_stats = CleaningStats()
        #: Default fan-out of ``suggest_batch`` when the call does not
        #: pass ``workers``; ``None``/1 means in-process serial.
        self.workers = workers
        self.worker_timeout = worker_timeout
        self.worker_recycle_after = worker_recycle_after
        #: Admission bound on concurrently admitted queries; ``None``
        #: disables shedding.  A batch is admitted whole, so a batch
        #: larger than the remaining headroom is shed up front.
        self.max_pending = max_pending
        self.close_grace = close_grace
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            metrics=self.metrics_registry,
            on_open=self._on_breaker_open,
        )
        #: Bookkeeping lock: guards admission (``_inflight``), the
        #: result-cache OrderedDict, :attr:`stats`, :attr:`last_stats`
        #: and the latency EWMA.  Reentrant so helpers can be called
        #: both standalone and from already-locked sections.  Never
        #: held across query computation.
        self._lock = threading.RLock()
        #: Serializes in-process use of :attr:`suggester`, whose
        #: internal caches (variant memo, accumulators, ``last_stats``)
        #: are not thread-safe.  Under the GIL pure-Python computation
        #: does not parallelize across threads anyway — concurrency
        #: comes from the process pool and from overlapping the I/O
        #: around this lock, never from concurrent suggester entry.
        self._compute_lock = threading.Lock()
        #: Per-query stats sink used by ``suggest_batch_detailed`` to
        #: collect one :class:`CleaningStats` per served query.
        #: Thread-local so a detailed batch on one thread cannot
        #: absorb stats of queries served concurrently on another.
        self._sink_local = threading.local()
        #: EWMA of recent request latency (seconds); 0.0 = no samples.
        self._latency_ewma = 0.0
        self._inflight = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        self._pool_tasks = 0
        self._pool_suspect = False
        #: Worker processes from suspect pools torn down without
        #: waiting; reaped (terminate/kill) by the next waiting
        #: shutdown so close() never leaks a hung worker.
        self._orphans: list = []
        #: Set when the backing snapshot file was quarantined: worker
        #: pools can no longer be initialized from it (and the mapped
        #: corpus is not picklable), so the service stays in-process on
        #: the parent's still-valid mapping.
        self._snapshot_degraded = False
        #: Monotonic swap-epoch counter; bumped on every corpus
        #: install (:meth:`swap_snapshot`, overlay installs,
        #: :meth:`compact`).  Part of :meth:`_index_identity` so the
        #: result LRU can never serve a pre-swap answer even if the
        #: allocator reuses the old corpus's ``id()``.
        self._swap_epoch = 0
        #: The :class:`~repro.index.compaction.LiveIndexManager` once
        #: :meth:`enable_live_updates` ran; ``None`` otherwise.
        self._live = None
        #: True while the serving corpus is a delta overlay: the
        #: overlay is not picklable and has no snapshot file, so the
        #: worker pool is pinned off until the next compaction swap.
        self._live_pinned = False
        #: Serializes writers (apply/compact) against each other while
        #: letting queries keep flowing during a compaction build.
        #: Lock order: ``_update_lock`` → ``_compute_lock`` → ``_lock``.
        self._update_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down.  Idempotent.

        The service stays usable: later parallel batches degrade to
        in-process execution instead of forking new workers.

        Never deadlocks and never leaks processes: workers get
        ``close_grace`` seconds to exit, then are terminated and — as
        a last resort — killed (a worker hung in an injected or real
        infinite delay would otherwise block ``shutdown(wait=True)``
        forever).
        """
        self._closed = True
        self._shutdown_pool(wait=True)
        if self._live is not None:
            self._live.close()
        if self._installed_faults:
            from repro.obs import faults

            faults.uninstall()
            self._installed_faults = False

    def __enter__(self) -> "SuggestionService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def metrics(self) -> MetricsSnapshot:
        """Stage-level metrics snapshot (dict / JSON / Prometheus).

        Includes per-stage latency histograms (``stage_seconds``:
        tokenize, variant_gen, merge, score, type_infer), request
        latencies, cache counters, and pool lifecycle counters —
        everything recorded in :attr:`metrics_registry`.  Pool workers
        keep their own registries but ship per-query stage deltas back
        with every answer; the parent merges them, so pool work
        appears here too.
        """
        return self.metrics_registry.snapshot()

    # ------------------------------------------------------------------
    # The ops plane (/readyz, /statusz — see repro/obs/ops.py)
    # ------------------------------------------------------------------

    def health(self, *, draining: bool = False):
        """Readiness verdict: ready / degraded / not_ready + reasons.

        Degraded means "still answering correctly, but impaired":
        the worker-pool breaker is open, the backing snapshot was
        quarantined, the service is pinned to the in-process path
        (live overlay, or a suspect pool awaiting its re-fork).
        ``draining`` is the front-end's shutdown flag.
        """
        from repro.obs.ops import evaluate_health

        with self._lock:
            breaker_state = self.breaker.state
            quarantined = self._snapshot_degraded
            pinned = self._live_pinned
            suspect = self._pool_suspect
            closed = self._closed
        return evaluate_health(
            not_ready=[
                (closed, "service_closed"),
                (draining, "draining"),
            ],
            degraded=[
                (breaker_state == "open", "breaker_open"),
                (quarantined, "snapshot_quarantined"),
                (pinned, "live_overlay_pinned"),
                (suspect, "worker_pool_suspect"),
            ],
        )

    def status(self) -> dict:
        """The service half of ``/statusz`` (see ``obs/ops.py``)."""
        with self._lock:
            payload = {
                "mode": "single",
                "data_generation": self.data_generation,
                "swap_epoch": self._swap_epoch,
                "inflight": self._inflight,
                "breaker": self.breaker.state,
                "live_pinned": self._live_pinned,
                "snapshot_quarantined": self._snapshot_degraded,
                "closed": self._closed,
                "stats": dataclasses.asdict(self.stats),
            }
        live = self._live
        payload["live"] = (
            live.status() if live is not None else None
        )
        return payload

    # ------------------------------------------------------------------
    # Tracing & the flight recorder
    # ------------------------------------------------------------------

    @contextmanager
    def _traced_request(self, name: str, query: str,
                        trace_id: str | None = None,
                        **attributes) -> Iterator[None]:
        """Root span + flight-recorder entry around one request.

        Owns the trace only when no span is already open (so a traced
        ``suggest_batch`` does not nest request roots under itself).
        On close, the service-level verdict flags (partial / degraded
        / faulted / error) are derived from :attr:`stats` deltas and
        the finished trace is retained by the flight recorder.

        ``trace_id`` lets a caller that already minted a correlation
        id (the HTTP front-end, at request arrival) make it the trace
        id, so the access-log line, the span tree, and any
        flight-recorder entry all share one id.
        """
        tracer = self.tracer
        if not tracer.enabled:
            yield
            return
        owns = tracer.current() is None
        if not owns:
            with tracer.span(name, query=query, **attributes):
                yield
            return
        stats = self.stats
        partial0 = stats.partial_results
        degraded0 = stats.degraded_queries
        faults = _active_faults()
        fired0 = sum(faults.fired().values()) if faults.enabled else 0
        tracer.begin(name, trace_id=trace_id, query=query, **attributes)
        error: str | None = None
        try:
            yield
        except BaseException as exc:
            error = type(exc).__name__
            tracer.annotate(error=error)
            raise
        finally:
            root = tracer.end()
            recorder = self.flight_recorder
            if root is not None and recorder is not None:
                fired = (
                    sum(faults.fired().values())
                    if faults.enabled else 0
                )
                recorder.record(FlightEntry(
                    root,
                    query=query,
                    latency_s=root.duration,
                    partial=stats.partial_results > partial0,
                    degraded=stats.degraded_queries > degraded0,
                    faulted=fired > fired0,
                    error=error,
                ))

    @property
    def _stats_sink(self) -> list[CleaningStats] | None:
        """The calling thread's detailed-batch stats sink (or None)."""
        return getattr(self._sink_local, "sink", None)

    @_stats_sink.setter
    def _stats_sink(self, value: list[CleaningStats] | None) -> None:
        self._sink_local.sink = value

    def _note_stats(self, stats: CleaningStats) -> None:
        """One query served: publish ``last_stats`` (and sink it)."""
        with self._lock:
            self.last_stats = stats
        sink = self._stats_sink
        if sink is not None:
            sink.append(stats)

    def _note_unanswerable(self) -> None:
        """One unanswerable query: sink empty stats, keep last_stats.

        ``last_stats`` has never described unanswerable queries (the
        serial path raises instead of serving them), so only the
        detailed-batch sink records a placeholder.
        """
        sink = self._stats_sink
        if sink is not None:
            sink.append(CleaningStats())

    def dump_flight_record(
        self, path: str | None = None, reason: str = "on_demand"
    ) -> str:
        """Dump retained traces as JSONL; returns path or payload.

        With ``path`` (or a configured ``flight_record_path``) the
        dump is written there and the path returned; otherwise the
        JSONL payload itself is returned.

        Raises:
            ConfigurationError: when no flight recorder is attached
                (tracing is off and none was passed explicitly).
        """
        recorder = self.flight_recorder
        if recorder is None:
            raise ConfigurationError(
                "no flight recorder attached — construct the service "
                "with a live tracer or an explicit flight_recorder"
            )
        destination = path or self.flight_record_path
        if destination is None:
            return recorder.dump_jsonl(reason)
        return recorder.dump_to(destination, reason)

    def _on_breaker_open(self) -> None:
        self._auto_dump("breaker_open")

    def _auto_dump(self, reason: str) -> None:
        """Preserve the flight record at a moment of failure.

        Writes to ``flight_record_path`` when configured; otherwise
        just logs what is retained (the in-memory rings survive for
        :meth:`dump_flight_record`).  Never raises: dumping is
        diagnostics, not serving.
        """
        recorder = self.flight_recorder
        if recorder is None:
            return
        if self.metrics_registry.enabled:
            self.metrics_registry.inc(
                "flight_dumps_total", reason=reason
            )
        path = self.flight_record_path
        if path is None:
            logger.warning(
                "flight record (%s): %d traces retained in memory; "
                "set flight_record_path for automatic dumps",
                reason, len(recorder),
            )
            return
        try:
            recorder.dump_to(path, reason)
        except OSError as error:  # pragma: no cover - disk trouble
            logger.warning(
                "flight record dump to %s failed: %s", path, error
            )
        else:
            logger.warning(
                "flight record dumped to %s (%d traces, reason: %s)",
                path, len(recorder), reason,
            )

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------

    def _index_identity(self) -> tuple[int, int, int]:
        """Which index (and which generation of it) answers are from.

        ``_swap_epoch`` separates installs over the service lifetime
        (``id()`` alone can be reused by the allocator after the old
        index is collected); ``id(corpus)`` separates distinct index
        objects a long-lived service might be pointed at;
        ``generation`` (bumped by ``QueryEngineMixin.bump_generation``
        on a live-update refresh) separates epochs of the *same*
        object.  Cached results keyed on a previous identity become
        unreachable rather than stale.
        """
        return (
            self._swap_epoch,
            id(self.corpus),
            getattr(self.corpus, "generation", 0),
        )

    def _cache_key(self, query: str, k: int) -> _CacheKey:
        """Normalize the query so trivial rewrites share a cache slot.

        The key embeds the snapshot identity/generation so a service
        whose index was swapped or invalidated can never serve answers
        computed against the old data.
        """
        return (
            self._index_identity(),
            tuple(self.corpus.tokenizer.tokenize(query)),
            k,
        )

    def _cache_put(
        self,
        key: _CacheKey,
        suggestions: Sequence[Suggestion],
    ) -> None:
        with self._lock:
            cache = self._result_cache
            cache[key] = tuple(suggestions)
            while len(cache) > self.result_cache_size:
                cache.popitem(last=False)

    # -- admission control ---------------------------------------------

    def retry_after_hint(self) -> float:
        """Backpressure-derived retry hint (seconds) for shed callers.

        Tracks the request-latency EWMA — roughly the time for one
        admitted slot to free — floored at :data:`DEFAULT_RETRY_AFTER`
        so the hint is always usable, even before the first sample.
        """
        with self._lock:
            return max(DEFAULT_RETRY_AFTER, self._latency_ewma)

    def _observe_latency(self, seconds: float) -> None:
        with self._lock:
            if self._latency_ewma == 0.0:
                self._latency_ewma = seconds
            else:
                self._latency_ewma += _LATENCY_EWMA_ALPHA * (
                    seconds - self._latency_ewma
                )

    def admit(self, cost: int = 1) -> None:
        """Reserve ``cost`` slots of in-flight work or shed typed.

        Thread-safe; front-ends call this *before* handing work to an
        executor so backpressure applies at arrival, not at dispatch.
        Every successful ``admit`` must be paired with
        :meth:`release`.

        Raises:
            Overloaded: when the reservation would exceed
                ``max_pending``; nothing is reserved in that case, and
                ``retry_after`` carries the backpressure hint.
        """
        with self._lock:
            limit = self.max_pending
            if limit is not None and self._inflight + cost > limit:
                self.stats.shed_queries += cost
                if self.metrics_registry.enabled:
                    self.metrics_registry.inc(
                        "shed_queries_total", cost
                    )
                raise Overloaded(
                    f"admission queue full ({self._inflight} in "
                    f"flight + {cost} requested > limit {limit})",
                    retry_after=max(
                        DEFAULT_RETRY_AFTER, self._latency_ewma
                    ),
                )
            self._inflight += cost

    def release(self, cost: int = 1) -> None:
        """Return ``cost`` previously admitted slots.  Thread-safe."""
        with self._lock:
            self._inflight -= cost

    # Internal spellings, kept for the call sites that predate the
    # public pair.
    _admit = admit
    _release = release

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Top-k suggestions, served from the result cache when possible.

        Raises:
            QueryError: when the query has no usable keywords (callers
                that prefer empty answers should use ``suggest_batch``).
            Overloaded: when admission control is over ``max_pending``.
        """
        return self.suggest_detailed(query, k)[0]

    def suggest_detailed(
        self, query: str, k: int = 10, *, pre_admitted: bool = False,
        trace_id: str | None = None,
    ) -> tuple[list[Suggestion], CleaningStats]:
        """:meth:`suggest` plus this call's own :class:`CleaningStats`.

        The thread-safe per-call contract: concurrent callers each get
        the stats describing *their* answer (``partial`` flag, cache
        counters), which the shared :attr:`last_stats` cannot promise
        under concurrency.  With ``pre_admitted=True`` the caller has
        already reserved its admission slot via :meth:`admit` (the
        HTTP front-end does, so shedding happens before the request
        ever occupies an executor thread) and keeps the obligation to
        :meth:`release` it.  ``trace_id`` is the caller-minted
        correlation id, if any (see :meth:`_traced_request`).
        """
        with self._traced_request("request", query, trace_id=trace_id):
            if not pre_admitted:
                self._admit(1)
            try:
                return self._suggest_one_detailed(query, k)
            finally:
                if not pre_admitted:
                    self._release(1)

    def _suggest_one(self, query: str, k: int) -> list[Suggestion]:
        """The single-query path, past admission control."""
        return self._suggest_one_detailed(query, k)[0]

    def _suggest_one_detailed(
        self, query: str, k: int
    ) -> tuple[list[Suggestion], CleaningStats]:
        """The single-query path, past admission control.

        Bookkeeping (stats, the result LRU) happens under
        :attr:`_lock`; the computation itself runs outside it, on
        :attr:`_compute_lock`.  Two threads racing on the same cold
        key may both compute — wasteful but correct (the HTTP tier's
        single-flight layer is what prevents it); both puts are
        idempotent.
        """
        metrics = self.metrics_registry
        began = perf_counter()
        key = self._cache_key(query, k)
        with self._lock:
            self.stats.queries_served += 1
            if metrics.enabled:
                metrics.inc("queries_total")
            cached = self._result_cache.get(key)
            if cached is not None:
                self._result_cache.move_to_end(key)
                self.stats.result_cache_hits += 1
                stats = CleaningStats(
                    result_cache_hits=1,
                    trace_id=self.tracer.trace_id,
                )
                self._note_stats(stats)
                if self.tracer.enabled:
                    self.tracer.event("result_cache_hit", query=query)
                if metrics.enabled:
                    metrics.inc("result_cache_hits_total")
                    metrics.observe(
                        "request_seconds", perf_counter() - began
                    )
                return list(cached), stats
        # Count the miss only once the suggester answers: unanswerable
        # queries raise and are tallied separately, exactly as in the
        # batch paths.
        with self._compute_lock:
            suggestions = self.suggester.suggest(query, k)
            stats = self.suggester.last_stats
        with self._lock:
            self.stats.result_cache_misses += 1
            stats.result_cache_misses += 1
            self._note_stats(stats)
            if stats.partial:
                # A deadline-truncated answer is served but never
                # cached — a transient overload must not become a
                # permanently incomplete top-k for this query.
                self.stats.partial_results += 1
                if metrics.enabled:
                    metrics.inc("partial_results_total")
            else:
                self._cache_put(key, suggestions)
            elapsed = perf_counter() - began
            self._observe_latency(elapsed)
            if metrics.enabled:
                metrics.inc("result_cache_misses_total")
                metrics.observe("request_seconds", elapsed)
        return list(suggestions), stats

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def suggest_batch(
        self,
        queries: Sequence[str],
        k: int = 10,
        workers: int | None = None,
    ) -> list[list[Suggestion]]:
        """Answer every query; order and length match ``queries``.

        Unusable queries (no keywords after tokenization) yield empty
        lists instead of raising.  The batch is de-duplicated through
        the result cache first; with ``workers`` > 1 (or a service
        default) the remaining unique queries run on the persistent
        process pool over the shared index.

        Raises:
            Overloaded: when the whole batch does not fit under
                ``max_pending``, or pool work is refused because the
                circuit breaker is open — in both cases *before* any
                query of the batch runs, so shedding is all-or-nothing.
        """
        metrics = self.metrics_registry
        if metrics.enabled:
            metrics.inc("batches_total")
        tracer = self.tracer
        with self._traced_request(
            "batch", f"<batch of {len(queries)}>",
            queries=len(queries),
        ):
            self._admit(len(queries))
            try:
                if workers is None:
                    workers = self.workers
                if workers is not None and workers > 1:
                    return self._suggest_batch_parallel(
                        queries, k, workers
                    )
                out: list[list[Suggestion]] = []
                for query in queries:
                    try:
                        if tracer.enabled:
                            with tracer.span("query", query=query):
                                out.append(
                                    self._suggest_one(query, k)
                                )
                        else:
                            out.append(self._suggest_one(query, k))
                    except QueryError:
                        with self._lock:
                            self.stats.unanswerable += 1
                        self._note_unanswerable()
                        if metrics.enabled:
                            metrics.inc("unanswerable_total")
                        out.append([])
                return out
            finally:
                self._release(len(queries))

    def suggest_batch_detailed(
        self,
        queries: Sequence[str],
        k: int = 10,
        workers: int | None = None,
    ) -> list[tuple[list[Suggestion], CleaningStats]]:
        """:meth:`suggest_batch` plus one ``CleaningStats`` per query.

        The stats carry what batch callers cannot otherwise see per
        answer: the ``partial`` flag, cache hit/miss counters, and the
        ``trace_id`` when tracing is on (unanswerable queries get a
        fresh empty ``CleaningStats``).  This is what ``xclean batch
        --format json`` surfaces.
        """
        sink: list[CleaningStats] = []
        previous = self._stats_sink
        self._stats_sink = sink
        try:
            answers = self.suggest_batch(queries, k, workers)
        finally:
            self._stats_sink = previous
        if len(sink) != len(answers):  # pragma: no cover - invariant
            raise AssertionError(
                f"stats sink out of step: {len(sink)} stats for "
                f"{len(answers)} answers"
            )
        return list(zip(answers, sink))

    def _suggest_batch_parallel(
        self, queries: Sequence[str], k: int, workers: int
    ) -> list[list[Suggestion]]:
        metrics = self.metrics_registry
        keys = [self._cache_key(query, k) for query in queries]
        cache = self._result_cache
        # Unique cache misses, first-occurrence order.  Keys with no
        # usable tokens never reach a worker: they are unanswerable by
        # construction.
        pending: dict[_CacheKey, str] = {}
        with self._lock:
            for key, query in zip(keys, queries):
                if key not in cache and key not in pending and key[1]:
                    pending[key] = query
        # Freshly computed (suggestions, stats) by key; partial answers
        # live only here — they are served below but never cached.
        fresh: dict[
            _CacheKey,
            tuple[tuple[Suggestion, ...], CleaningStats],
        ] = {}
        if pending:
            if not self._closed and not self.breaker.allow():
                # Shed before any work: the pool keeps failing and the
                # parent must not absorb the whole batch in-process.
                with self._lock:
                    self.stats.shed_queries += len(queries)
                if metrics.enabled:
                    metrics.inc("shed_queries_total", len(queries))
                raise Overloaded(
                    "worker pool circuit breaker is open",
                    retry_after=self.breaker.retry_after(),
                )
            trace_ctx = (
                {"trace_id": self.tracer.trace_id}
                if self.tracer.enabled else None
            )
            tasks = [
                (query, k, trace_ctx) for query in pending.values()
            ]
            answers = self._run_on_pool(tasks, workers)
            for key, answer in zip(pending, answers):
                if answer is None:
                    # Unanswerable: never cached, so every occurrence
                    # below is tallied — same as the serial path, which
                    # re-raises per occurrence.
                    continue
                suggestions, stats = answer
                if not stats.partial:
                    self._cache_put(key, suggestions)
                fresh[key] = (tuple(suggestions), stats)
        out: list[list[Suggestion]] = []
        with self._lock:
            computed = {key for key in fresh if key in cache}
            for key in keys:
                self.stats.queries_served += 1
                if metrics.enabled:
                    metrics.inc("queries_total")
                cached = cache.get(key)
                if cached is not None:
                    cache.move_to_end(key)
                    if key in computed:
                        # First service of a freshly computed answer
                        # is a miss; duplicates later in the batch hit
                        # the cache.  The worker's stats become
                        # last_stats, mirroring the serial path's
                        # per-query contract.
                        computed.discard(key)
                        self.stats.result_cache_misses += 1
                        stats = fresh[key][1]
                        stats.result_cache_misses += 1
                        self._note_stats(stats)
                        if metrics.enabled:
                            metrics.inc("result_cache_misses_total")
                    else:
                        self.stats.result_cache_hits += 1
                        self._note_stats(CleaningStats(
                            result_cache_hits=1,
                            trace_id=self.tracer.trace_id,
                        ))
                        if metrics.enabled:
                            metrics.inc("result_cache_hits_total")
                    out.append(list(cached))
                    continue
                entry = fresh.get(key)
                if entry is not None:
                    # Deadline-truncated answer: served on every
                    # occurrence as an uncached miss, so a later retry
                    # can still get (and cache) the exact top-k.
                    suggestions, stats = entry
                    self.stats.result_cache_misses += 1
                    self.stats.partial_results += 1
                    self._note_stats(stats)
                    if metrics.enabled:
                        metrics.inc("result_cache_misses_total")
                        metrics.inc("partial_results_total")
                    out.append(list(suggestions))
                    continue
                # Empty token tuple or a failed/unanswerable worker
                # answer: unanswerable, never cached.
                self.stats.unanswerable += 1
                self._note_unanswerable()
                if metrics.enabled:
                    metrics.inc("unanswerable_total")
                out.append([])
        return out

    # ------------------------------------------------------------------
    # Worker-pool plumbing (parent side)
    # ------------------------------------------------------------------

    def _run_on_pool(
        self, tasks: list[tuple[str, int, dict | None]], workers: int
    ) -> list:
        """Answer ``tasks`` on the pool, degrading where necessary."""
        pool = self._acquire_pool(workers)
        if pool is None:
            # No pool available (closed service or failed start):
            # everything runs in-process.
            return [self._degrade(task) for task in tasks]
        futures = []
        # Wall clock anchors the pool.task span on the cross-process
        # timeline; the monotonic stamp measures its duration (a
        # wall-clock step — NTP, DST — must not yield a nonsense span).
        submitted_at = time.time()
        submitted_perf = perf_counter()
        for task in tasks:
            try:
                futures.append(pool.submit(_worker_suggest, task))
            except Exception:
                # Pool broke mid-submission; the remaining tasks (and
                # the failed submissions) degrade below.
                self._pool_suspect = True
                futures.append(None)
        self._pool_tasks += len(tasks)
        answers = [
            self._absorb_worker_answer(
                task, self._await_worker(task, future),
                submitted_at, submitted_perf,
            )
            for task, future in zip(tasks, futures)
        ]
        if self._pool_suspect:
            # A hung or crashed worker poisons the whole pool; tear it
            # down without waiting and re-fork on the next batch.
            self._shutdown_pool(wait=False)
            with self._lock:
                self.stats.pool_recycles += 1
            self.metrics_registry.inc("pool_recycles_total")
            # Pool trouble on a snapshot-backed corpus may mean the
            # file went bad under us (workers re-map it at init; the
            # parent's old mapping would not notice).  Verify and
            # quarantine before the next pool start re-maps garbage.
            self._check_snapshot_health()
        return answers

    def _check_snapshot_health(self) -> None:
        """Deep-verify the backing snapshot; quarantine on corruption.

        Only runs for snapshot-backed corpora that have not already
        been quarantined.  On a CRC (or injected) failure the file is
        moved aside, the ``snapshot_quarantined`` counters bump, and
        the service pins itself to in-process execution — the parent's
        mapping predates the corruption and POSIX keeps it valid
        across the rename, so answers stay correct.
        """
        if self._snapshot_degraded:
            return
        path = getattr(self.corpus, "snapshot_path", None)
        if path is None:
            return
        from repro.index.snapshot import (
            quarantine_snapshot,
            verify_snapshot,
        )

        try:
            verify_snapshot(path)
        except StorageError as error:
            logger.warning(
                "backing snapshot failed verification (%s); "
                "quarantining and degrading to in-process", error
            )
            quarantine_snapshot(path, metrics=self.metrics_registry)
            with self._lock:
                self.stats.snapshot_quarantined += 1
            self._snapshot_degraded = True
            self._auto_dump("snapshot_quarantine")
        except OSError:
            # File already rotated/removed: nothing to verify, but
            # workers cannot init from it either.
            self._snapshot_degraded = True

    def _absorb_worker_answer(self, task, answer, submitted_at: float,
                              submitted_perf: float):
        """Fold a worker's extras into the parent; normalize the shape.

        Worker answers arrive as ``(suggestions, stats, extras)``;
        degraded (in-process) answers and unanswerable ``None``s pass
        through untouched.  ``extras`` carries the worker's per-query
        stage-timer deltas (merged into :attr:`metrics_registry`) and,
        when the task was traced, the finished ``worker`` span subtree
        — stitched under a parent-side ``pool.task`` span whose window
        covers submit → result, so worker time nests inside it on one
        coherent timeline.  ``submitted_at`` (wall clock) is the span's
        start timestamp; ``submitted_perf`` (monotonic) is what the
        duration is measured against.
        """
        if answer is None or len(answer) != 3:
            return answer
        suggestions, stats, extras = answer
        if extras:
            stages = extras.get("stages")
            if stages:
                self.metrics_registry.merge_stage_deltas(stages)
            worker_span = extras.get("span")
            tracer = self.tracer
            if worker_span is not None and tracer.enabled:
                elapsed = perf_counter() - submitted_perf
                task_span = Span(
                    "pool.task",
                    start=submitted_at,
                    duration=max(elapsed, worker_span.duration),
                    attributes={"query": task[0]},
                )
                task_span.children.append(worker_span)
                tracer.attach(task_span)
        return suggestions, stats

    def _await_worker(self, task: tuple[str, int, dict | None],
                      future):
        """One worker answer: timeout → retry once → degrade.

        Every final outcome feeds the circuit breaker: a served answer
        (including a worker-side ``QueryError``) counts as success, an
        exhausted retry or a crash as one failure.
        """
        metrics = self.metrics_registry
        if future is not None:
            try:
                answer = future.result(self.worker_timeout)
                self.breaker.record_success()
                return answer
            except (TimeoutError, _FuturesTimeout):
                with self._lock:
                    self.stats.worker_timeouts += 1
                metrics.inc("worker_timeouts_total")
                future.cancel()
                retry = self._resubmit(task)
                if retry is not None:
                    try:
                        answer = retry.result(self.worker_timeout)
                        self.breaker.record_success()
                        return answer
                    except (TimeoutError, _FuturesTimeout):
                        with self._lock:
                            self.stats.worker_timeouts += 1
                        metrics.inc("worker_timeouts_total")
                        retry.cancel()
                    except Exception:
                        with self._lock:
                            self.stats.worker_failures += 1
                        metrics.inc("worker_failures_total")
                self._pool_suspect = True
                self.breaker.record_failure()
            except Exception:
                # Worker crash / broken pool: degrade this answer and
                # let the batch finish.
                with self._lock:
                    self.stats.worker_failures += 1
                metrics.inc("worker_failures_total")
                self._pool_suspect = True
                self.breaker.record_failure()
        return self._degrade(task)

    def _resubmit(self, task: tuple[str, int, dict | None]):
        pool = self._pool
        if pool is None:
            return None
        try:
            return pool.submit(_worker_suggest, task)
        except Exception:
            return None

    def _degrade(self, task: tuple[str, int, dict | None]):
        """In-process fallback, normalized to ``(suggestions, stats)``."""
        with self._lock:
            self.stats.degraded_queries += 1
        self.metrics_registry.inc("degraded_queries_total")
        query, k = task[0], task[1]
        try:
            with self._compute_lock:
                with self.tracer.span("degrade", query=query):
                    suggestions = self.suggester.suggest(query, k)
                stats = self.suggester.last_stats
        except QueryError:
            return None
        return tuple(suggestions), stats

    def _acquire_pool(
        self, workers: int
    ) -> ProcessPoolExecutor | None:
        """The persistent pool, started lazily and recycled when due."""
        if self._closed or self._snapshot_degraded or self._live_pinned:
            # Closed, the backing snapshot was quarantined (workers
            # cannot re-map it; the mapped corpus is not picklable), or
            # the service is serving a live delta overlay (in-memory
            # only — nothing on disk for a worker to map until the next
            # compaction): in-process execution on the parent's state.
            return None
        if self._pool is not None and (
            self._pool_workers != workers
            or self._pool_tasks >= self.worker_recycle_after
        ):
            self._shutdown_pool()
            with self._lock:
                self.stats.pool_recycles += 1
            self.metrics_registry.inc("pool_recycles_total")
        if self._pool is None:
            initializer, initargs = self._pool_init()
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=initializer,
                    initargs=initargs,
                )
            except Exception:
                return None
            self._pool_workers = workers
            self._pool_tasks = 0
            self._pool_suspect = False
            with self._lock:
                self.stats.pool_starts += 1
            self.metrics_registry.inc("pool_starts_total")
        return self._pool

    def _pool_init(self):
        """Worker initializer and args — snapshot path when available.

        A snapshot-backed corpus ships only its file path; plain
        corpora fall back to pickling the whole index into every
        worker.  Either way the pickled payload size is recorded as
        ``pool_init_bytes`` (stat + counter) and logged — under the
        POSIX fork start method nothing is actually pickled, but the
        size is what a spawn-based start *would* transfer, which is
        the regression the metric exists to catch.
        """
        snapshot_path = getattr(self.corpus, "snapshot_path", None)
        if snapshot_path is not None:
            initializer = _init_worker_snapshot
            initargs: tuple = (snapshot_path, self.config)
        else:
            initializer = _init_worker
            initargs = (self.corpus, self.config)
        if self.stats.pool_init_bytes == 0:
            payload = len(pickle.dumps(initargs))
            self.stats.pool_init_bytes = payload
            self.metrics_registry.inc("pool_init_bytes", payload)
            if snapshot_path is None:
                logger.info(
                    "worker pool initialized with a pickled corpus "
                    "(%d bytes); build a v3 snapshot for constant-size "
                    "worker init",
                    payload,
                )
            else:
                logger.info(
                    "worker pool initialized from snapshot %s "
                    "(%d-byte init payload)",
                    snapshot_path,
                    payload,
                )
        return initializer, initargs

    def _shutdown_pool(self, wait: bool = True) -> None:
        """Tear the pool down; with ``wait``, never hang on it.

        ``ProcessPoolExecutor.shutdown(wait=True)`` joins worker
        processes, so a single hung worker (infinite loop, injected
        delay) would block forever.  Instead: signal shutdown without
        waiting, give the workers ``close_grace`` seconds to exit,
        then ``terminate()`` and finally ``kill()`` stragglers — the
        pool is gone, no process leaks, bounded time.
        """
        pool, self._pool = self._pool, None
        self._pool_suspect = False
        processes: list = []
        if pool is not None:
            processes = list(
                (getattr(pool, "_processes", None) or {}).values()
            )
            pool.shutdown(wait=False, cancel_futures=True)
        if not wait:
            self._orphans.extend(p for p in processes if p.is_alive())
            return
        processes.extend(self._orphans)
        self._orphans = []
        if not processes:
            return
        grace_ends = monotonic() + max(0.0, self.close_grace)
        for process in processes:
            process.join(max(0.0, grace_ends - monotonic()))
        stragglers = [p for p in processes if p.is_alive()]
        for process in stragglers:
            logger.warning(
                "worker %s did not exit within %.1fs; terminating",
                process.pid, self.close_grace,
            )
            process.terminate()
        for process in stragglers:
            process.join(1.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(1.0)

    # ------------------------------------------------------------------
    # Live updates & the generation swap
    # ------------------------------------------------------------------
    #
    # Serving follows the generation lifecycle of
    # ``index/compaction.py`` (build → serve → compact → swap →
    # retire).  Acknowledged updates become query-visible by swapping
    # the serving corpus to the delta overlay; a compaction folds them
    # into a fresh snapshot generation and swaps back to mapped
    # serving.  Every install happens under ``_compute_lock``, so no
    # in-process query ever straddles a swap: each answer is computed
    # entirely against exactly one generation.  In-flight *pooled*
    # queries ride the existing degrade ladder — the old pool is shut
    # down without waiting, running futures finish on the generation
    # they were admitted against, and cancelled ones re-run in-process
    # on the new one.  Zero queries are dropped either way.

    @property
    def data_generation(self) -> int:
        """The data generation currently being served."""
        if self._live is not None:
            return self._live.generation
        return getattr(self.corpus, "data_generation", 0)

    @property
    def live(self):
        """The live-index manager, or ``None`` before enablement."""
        return self._live

    def enable_live_updates(
        self,
        document=None,
        *,
        index_path: str | None = None,
        max_records: int | None = None,
        fastss_max_errors: int | None = 3,
    ):
        """Attach a crash-safe live-update pipeline to this service.

        Opens (or recovers) the WAL and live-source sidecar next to
        the backing snapshot.  ``document`` seeds the logical document
        on the very first call against a fresh index; recovery-time
        opens need only the on-disk state.  When WAL replay finds
        acknowledged-but-unfolded records, the recovered overlay is
        installed immediately so those updates are query-visible from
        the first request.  Idempotent: repeat calls return the
        existing manager.
        """
        if self._live is not None:
            return self._live
        from repro.index.compaction import LiveIndexManager

        path = index_path or getattr(
            self.corpus, "snapshot_path", None
        )
        if path is None:
            raise ConfigurationError(
                "live updates need a snapshot-backed corpus (or an "
                "explicit index_path)"
            )
        kwargs: dict = {"fastss_max_errors": fastss_max_errors}
        if max_records is not None:
            kwargs["max_records"] = max_records
        base = (
            self.corpus
            if getattr(self.corpus, "snapshot_path", None) == path
            else None
        )
        live = LiveIndexManager(
            path,
            document=document,
            base=base,
            metrics=self.metrics_registry,
            **kwargs,
        )
        serving_generation = getattr(self.corpus, "data_generation", 0)
        self._live = live
        if live.delta.dirty:
            # Recovery replayed acknowledged records into the delta:
            # serve them now, not after the next apply.
            suggester = self._prepare_install(live.overlay)
            with self._compute_lock:
                self._install_locked(
                    live.overlay, pin=True, suggester=suggester
                )
            self._after_swap()
        elif live.generation != serving_generation:
            # Recovery finished an interrupted compaction during the
            # open: the manager's base is a fresher generation than
            # the corpus this service loaded.  Install it — otherwise
            # the service would keep answering from the stale pre-fold
            # snapshot while ``data_generation`` already reports the
            # folded one.
            suggester = self._prepare_install(live.base)
            with self._compute_lock:
                self._install_locked(
                    live.base, pin=False, suggester=suggester
                )
            self._after_swap()
        return live

    def _require_live(self):
        live = self._live
        if live is None:
            raise ConfigurationError(
                "live updates are not enabled; call "
                "enable_live_updates() first"
            )
        return live

    def apply_updates(self, records) -> int:
        """Durably apply subtree updates; visible once this returns.

        Each record is WAL-appended with an fsync before it is folded
        into the in-memory delta (see ``index/wal.py``), then the
        delta overlay is (re)installed as the serving corpus with a
        fresh suggester — so the very next request can both query and
        *misspell* the new content.  Raises ``UpdateError`` on an
        invalid record, in which case every record before it in
        ``records`` is already durable and served.
        """
        live = self._require_live()
        error: Exception | None = None
        with self._update_lock:
            with self._compute_lock:
                version = live.delta.version
                try:
                    applied = live.apply(records)
                except Exception as exc:
                    # Records before the bad one are already durable;
                    # install them so "acknowledged" means "served"
                    # even on the failure path.
                    error = exc
                    applied = live.delta.version - version
                if applied:
                    self._install_locked(live.corpus, pin=live.delta.dirty)
            if applied:
                with self._lock:
                    self.stats.updates_applied += applied
                if self.metrics_registry.enabled:
                    self.metrics_registry.inc(
                        "updates_applied_total", applied
                    )
        if applied:
            self._after_swap()
        if error is not None:
            raise error
        return applied

    def compact(self, workers: int | None = None) -> int:
        """Fold pending updates into a fresh snapshot generation.

        The build runs outside ``_compute_lock`` — queries keep being
        answered from the overlay the whole time — and only the final
        install takes the locks.  Returns the new generation number.
        """
        live = self._require_live()
        with self._update_lock:
            generation = live.compact(workers=workers)
            suggester = self._prepare_install(live.base)
            with self._compute_lock:
                self._install_locked(
                    live.base, pin=False, suggester=suggester
                )
        self._after_swap()
        return generation

    def swap_snapshot(self, path: str | None = None):
        """Hot-swap serving onto a (new generation of a) snapshot.

        Loads ``path`` (default: the current snapshot's path, picking
        up an externally compacted generation) and installs it with
        zero dropped queries.  Returns the newly serving corpus.

        Runs under ``_update_lock`` so it serializes with
        :meth:`apply_updates` / :meth:`compact`: the snapshot is never
        read mid-replacement, and a swap can never re-install an older
        generation over one a concurrent compaction just installed.
        """
        from repro.index.snapshot import load_snapshot

        with self._update_lock:
            target = path or getattr(
                self.corpus, "snapshot_path", None
            )
            if target is None:
                raise ConfigurationError(
                    "swap_snapshot needs a snapshot-backed corpus or "
                    "an explicit path"
                )
            corpus = load_snapshot(
                target, metrics=self.metrics_registry
            )
            suggester = self._prepare_install(corpus)
            with self._compute_lock:
                self._install_locked(
                    corpus, pin=False, suggester=suggester
                )
        self._after_swap()
        return corpus

    def _prepare_install(self, corpus) -> XCleanSuggester:
        """Build the per-generation serving state for ``corpus``.

        Constructing a suggester can be expensive (its variant
        generator may build a deletion-neighborhood index), so writers
        call this *outside* ``_compute_lock`` whenever the target is
        not shared with in-flight queries and hand the result to
        :meth:`_install_locked` — queries keep flowing on the old
        generation during the build.
        """
        corpus.bind_metrics(self.metrics_registry)
        return XCleanSuggester(
            corpus,
            config=self.config,
            metrics=self.metrics_registry,
            tracer=self.tracer,
        )

    def _install_locked(
        self, corpus, pin: bool, suggester: XCleanSuggester | None = None
    ) -> None:
        """Swap the serving corpus.  Caller holds ``_compute_lock``.

        Holding the compute lock is what makes the swap atomic from a
        query's point of view: no in-process computation straddles it,
        so every answer is entirely pre- or entirely post-swap.  The
        suggester is rebuilt (or swapped in pre-built) so its variant
        generator, language model and type finder all read the new
        generation; the overlay path keeps the in-lock rebuild cheap
        via the incremental ``OverlayVariantGenerator``.
        """
        metrics = self.metrics_registry
        began = perf_counter() if metrics.enabled else 0.0
        if suggester is None:
            suggester = self._prepare_install(corpus)
        with self._lock:
            self.corpus = corpus
            self.suggester = suggester
            self._swap_epoch += 1
            self._live_pinned = pin
            self._snapshot_degraded = False
            self.stats.generation_swaps += 1
        if metrics.enabled:
            metrics.inc("generation_swaps_total")
            metrics.observe_stage("swap", perf_counter() - began)

    def _after_swap(self) -> None:
        """Retire the previous generation's worker pool.

        Shut down without waiting: running futures complete on the
        generation they were admitted against (a whole answer from one
        generation — never mixed), cancelled ones degrade in-process
        onto the new corpus.  The next pooled batch forks fresh
        workers from the new snapshot.
        """
        self._shutdown_pool(wait=False)
