"""Entity search: execute a (cleaned) keyword query and rank results.

The XClean framework already contains everything a keyword search
engine needs — result-type inference (Eq. 7) and entity scoring with
the smoothed language model (Eq. 6/9).  :class:`EntitySearch` exposes
that machinery directly, XReal-style: given a query it returns the
top-k entity roots of the inferred result type ranked by
``∏_w p(w|D(r))``, restricted to entities containing every keyword.

This closes the loop the paper's introduction motivates: clean the
query with :class:`~repro.core.cleaner.XCleanSuggester`, then *run*
the suggestion:

    suggestion = suggester.suggest("hinrich shutze")[0]
    results = EntitySearch(corpus).search(suggestion.text)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import XCleanConfig
from repro.core.language_model import DirichletLanguageModel
from repro.core.result_type import ResultTypeConfig, ResultTypeFinder
from repro.exceptions import QueryError
from repro.index.corpus import CorpusIndex
from repro.xmltree.dewey import DeweyCode
from repro.xmltree.document import XMLDocument


@dataclass(frozen=True)
class SearchResult:
    """One ranked query result.

    Attributes:
        dewey: the entity root's Dewey code.
        score: the language-model relevance ``∏_w p(w|D(r))``.
        result_type: the entity's label path as a string.
        length: |D(r)| — the entity's token count.
    """

    dewey: DeweyCode
    score: float
    result_type: str
    length: int

    def render(self, document: XMLDocument, max_chars: int = 120) -> str:
        """A one-line snippet from the original document (optional)."""
        text = document.subtree_text(self.dewey)
        if len(text) > max_chars:
            text = text[: max_chars - 1] + "…"
        return text


class EntitySearch:
    """Keyword search over one corpus under node-type semantics."""

    def __init__(
        self, corpus: CorpusIndex, config: XCleanConfig | None = None
    ):
        self.corpus = corpus
        self.config = config or XCleanConfig()
        self.language_model = DirichletLanguageModel(
            corpus.vocabulary, self.config.mu
        )
        self.type_finder = ResultTypeFinder(
            corpus,
            ResultTypeConfig(
                reduction=self.config.reduction,
                min_depth=self.config.min_depth,
            ),
        )

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Top-k entities for ``query``, best first.

        Keywords are taken literally (no spelling correction — that is
        the suggester's job); entities must contain every keyword.

        Raises:
            QueryError: when the query has no usable keywords.
        """
        keywords = self.corpus.tokenizer.tokenize(query)
        if not keywords:
            raise QueryError(f"query {query!r} has no usable keywords")
        candidate = tuple(keywords)
        pid = self.type_finder.find(candidate)
        if pid is None:
            return []
        return self._rank_entities(candidate, pid, k)

    def result_type_of(self, query: str) -> str | None:
        """The inferred result node type, as a path string."""
        keywords = self.corpus.tokenizer.tokenize(query)
        if not keywords:
            raise QueryError(f"query {query!r} has no usable keywords")
        pid = self.type_finder.find(tuple(keywords))
        if pid is None:
            return None
        return self.corpus.path_table.string_of(pid)

    def _rank_entities(
        self, candidate: tuple[str, ...], pid: int, k: int
    ) -> list[SearchResult]:
        table = self.corpus.path_table
        depth = table.depth_of(pid)
        # Entity-level keyword counts, exactly as the naive scorer.
        per_keyword: list[dict[DeweyCode, int]] = []
        for token in candidate:
            counts: dict[DeweyCode, int] = {}
            for dewey, path_id, tf in self.corpus.inverted.list_for(
                token
            ):
                if len(dewey) < depth:
                    continue
                if table.prefix_id(path_id, depth) != pid:
                    continue
                root = dewey[:depth]
                counts[root] = counts.get(root, 0) + tf
            if not counts:
                return []
            per_keyword.append(counts)
        entities = set(min(per_keyword, key=len))
        for counts in per_keyword:
            entities &= counts.keys()
        if not entities:
            return []
        path_string = table.string_of(pid)
        results = []
        for root in entities:
            length = self.corpus.subtree_length(root)
            score = 1.0
            for position, token in enumerate(candidate):
                score *= self.language_model.probability(
                    token, per_keyword[position][root], length
                )
            results.append(
                SearchResult(
                    dewey=root,
                    score=score,
                    result_type=path_string,
                    length=length,
                )
            )
        results.sort(key=lambda r: (-r.score, r.dewey))
        return results[:k]
