"""Result-type inference: which label path defines a candidate's entities.

Section IV-B2 adopts XReal's *specific node type* semantics: for each
candidate query C the most probable result node type p_C is chosen by

    U(C, p) = log(1 + ∏_{w ∈ C} f_w^p) · r^{depth(p)}         (Eq. 7)

— users like popular node types containing *all* keywords, but not types
so deep they carry no information beyond the keywords themselves
(the r^depth factor, r < 1, penalizes depth).

Section V-B adds the *minimal depth threshold* d: types shallower than d
are never considered (everything is connected at the root, which is not
a meaningful connection), and — in Algorithm 1 — result-type computation
for a candidate is delayed until some subtree at depth >= d actually
contains all its keywords.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.index.corpus import CorpusIndex

#: The paper's depth reduction factor in the worked example (Example 3).
DEFAULT_REDUCTION = 0.8

#: "d = 2 is usually enough" (Section V-B).
DEFAULT_MIN_DEPTH = 2


@dataclass(frozen=True)
class ResultTypeConfig:
    """Knobs of the result-type inference (Eq. 7 / Section V-B)."""

    reduction: float = DEFAULT_REDUCTION
    min_depth: int = DEFAULT_MIN_DEPTH

    def __post_init__(self):
        if not 0.0 < self.reduction <= 1.0:
            raise ConfigurationError("reduction must be in (0, 1]")
        if self.min_depth < 1:
            raise ConfigurationError("min_depth must be >= 1")


class ResultTypeFinder:
    """FindResultType(C) of Section V-B, with per-candidate caching."""

    def __init__(
        self, corpus: CorpusIndex, config: ResultTypeConfig | None = None
    ):
        self.corpus = corpus
        self.config = config or ResultTypeConfig()
        self._cache: dict[tuple[str, ...], int | None] = {}

    def utility(self, candidate: Sequence[str], path_id: int) -> float:
        """U(C, p) of Eq. 7; 0 when some keyword never occurs under p."""
        product = 1
        for token in candidate:
            f = self.corpus.path_index.f(token, path_id)
            if f == 0:
                return 0.0
            product *= f
        depth = self.corpus.path_table.depth_of(path_id)
        return math.log1p(product) * (self.config.reduction ** depth)

    def find(self, candidate: Sequence[str]) -> int | None:
        """Best result type p_C, or ``None`` when no type contains all
        keywords at depth >= min_depth (such candidates have no valid
        entities and are dropped).

        Ties break on the lexicographically smallest path string so the
        choice — and everything downstream — is deterministic.
        """
        key = tuple(candidate)
        if key in self._cache:
            return self._cache[key]
        best = self._compute(key)
        self._cache[key] = best
        return best

    def _compute(self, candidate: tuple[str, ...]) -> int | None:
        # Intersect the path sets, starting from the keyword with the
        # fewest distinct paths.
        count_maps = [
            self.corpus.path_index.counts_for(token) for token in candidate
        ]
        if not count_maps or any(not m for m in count_maps):
            return None
        count_maps.sort(key=len)
        table = self.corpus.path_table
        min_depth = self.config.min_depth
        shared = [
            pid
            for pid in count_maps[0]
            if table.depth_of(pid) >= min_depth
            and all(pid in m for m in count_maps[1:])
        ]
        if not shared:
            return None
        best_pid: int | None = None
        best_score = -1.0
        best_path = ""
        for pid in shared:
            score = self.utility(candidate, pid)
            path = table.string_of(pid)
            better = score > best_score or (
                score == best_score and path < best_path
            )
            if best_pid is None or better:
                best_pid, best_score, best_path = pid, score, path
        return best_pid

    def cached_candidates(self) -> int:
        """Number of candidates whose result type has been computed."""
        return len(self._cache)
