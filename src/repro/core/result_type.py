"""Result-type inference: which label path defines a candidate's entities.

Section IV-B2 adopts XReal's *specific node type* semantics: for each
candidate query C the most probable result node type p_C is chosen by

    U(C, p) = log(1 + ∏_{w ∈ C} f_w^p) · r^{depth(p)}         (Eq. 7)

— users like popular node types containing *all* keywords, but not types
so deep they carry no information beyond the keywords themselves
(the r^depth factor, r < 1, penalizes depth).

Section V-B adds the *minimal depth threshold* d: types shallower than d
are never considered (everything is connected at the root, which is not
a meaningful connection), and — in Algorithm 1 — result-type computation
for a candidate is delayed until some subtree at depth >= d actually
contains all its keywords.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.index.corpus import CorpusIndex
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_TRACER

#: The paper's depth reduction factor in the worked example (Example 3).
DEFAULT_REDUCTION = 0.8

#: "d = 2 is usually enough" (Section V-B).
DEFAULT_MIN_DEPTH = 2

#: Default bound of the per-candidate result-type LRU.  A long-lived
#: service sees an unbounded stream of distinct candidates, so the
#: cache must not grow with uptime; 64k entries of a few machine words
#: each keep the hit rate near 100% on skewed traffic.
DEFAULT_TYPE_CACHE_SIZE = 65536

_MISSING = object()


@dataclass(frozen=True)
class ResultTypeConfig:
    """Knobs of the result-type inference (Eq. 7 / Section V-B)."""

    reduction: float = DEFAULT_REDUCTION
    min_depth: int = DEFAULT_MIN_DEPTH
    #: LRU bound of the per-candidate cache; ``None`` disables the
    #: bound (only safe for offline, bounded workloads).
    cache_size: int | None = DEFAULT_TYPE_CACHE_SIZE

    def __post_init__(self):
        if not 0.0 < self.reduction <= 1.0:
            raise ConfigurationError("reduction must be in (0, 1]")
        if self.min_depth < 1:
            raise ConfigurationError("min_depth must be >= 1")
        if self.cache_size is not None and self.cache_size < 1:
            raise ConfigurationError("cache_size must be >= 1 or None")


class ResultTypeFinder:
    """FindResultType(C) of Section V-B, with per-candidate caching.

    The cache is a bounded LRU (``config.cache_size``): entries
    refresh on hit and the least recently used candidate is dropped on
    overflow, so memory stays flat on a long-lived service.  The
    cumulative ``cache_hits``/``cache_misses``/``cache_evictions``
    counters let callers (``XCleanSuggester._run``) report per-query
    deltas.
    """

    def __init__(
        self,
        corpus: CorpusIndex,
        config: ResultTypeConfig | None = None,
        metrics=NULL_METRICS,
    ):
        self.corpus = corpus
        self.config = config or ResultTypeConfig()
        self.metrics = metrics or NULL_METRICS
        #: Optional tracer (``repro.obs.trace``); inference misses emit
        #: a ``type_infer`` event on the current span when enabled.
        self.tracer = NULL_TRACER
        #: Keyed on (corpus generation, candidate) so a hot-swap or
        #: live-update bump (``QueryEngineMixin.bump_generation``)
        #: makes pre-swap types unreachable instead of stale.
        self._cache: OrderedDict[
            tuple[int, tuple[str, ...]], int | None
        ] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    def utility(self, candidate: Sequence[str], path_id: int) -> float:
        """U(C, p) of Eq. 7; 0 when some keyword never occurs under p."""
        product = 1
        for token in candidate:
            f = self.corpus.path_index.f(token, path_id)
            if f == 0:
                return 0.0
            product *= f
        depth = self.corpus.path_table.depth_of(path_id)
        return math.log1p(product) * (self.config.reduction ** depth)

    def find(self, candidate: Sequence[str]) -> int | None:
        """Best result type p_C, or ``None`` when no type contains all
        keywords at depth >= min_depth (such candidates have no valid
        entities and are dropped).

        Ties break on the lexicographically smallest path string so the
        choice — and everything downstream — is deterministic.
        """
        candidate_key = tuple(candidate)
        key = (
            getattr(self.corpus, "generation", 0), candidate_key
        )
        cache = self._cache
        found = cache.get(key, _MISSING)
        if found is not _MISSING:
            self.cache_hits += 1
            cache.move_to_end(key)
            return found
        self.cache_misses += 1
        metrics = self.metrics
        if metrics.enabled:
            began = perf_counter()
            best = self._compute(candidate_key)
            metrics.observe_stage("type_infer", perf_counter() - began)
        else:
            best = self._compute(candidate_key)
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "type_infer",
                candidate=" ".join(candidate_key),
                result_type=(
                    self.corpus.path_table.string_of(best)
                    if best is not None
                    else None
                ),
            )
        cache[key] = best
        capacity = self.config.cache_size
        if capacity is not None and len(cache) > capacity:
            cache.popitem(last=False)
            self.cache_evictions += 1
        return best

    def _shared_paths(self, candidate: tuple[str, ...]) -> list[int]:
        """Path ids containing every keyword at depth >= min_depth.

        Intersects the path sets, starting from the keyword with the
        fewest distinct paths.
        """
        count_maps = [
            self.corpus.path_index.counts_for(token) for token in candidate
        ]
        if not count_maps or any(not m for m in count_maps):
            return []
        count_maps.sort(key=len)
        table = self.corpus.path_table
        min_depth = self.config.min_depth
        return [
            pid
            for pid in count_maps[0]
            if table.depth_of(pid) >= min_depth
            and all(pid in m for m in count_maps[1:])
        ]

    def _compute(self, candidate: tuple[str, ...]) -> int | None:
        shared = self._shared_paths(candidate)
        if not shared:
            return None
        table = self.corpus.path_table
        best_pid: int | None = None
        best_score = -1.0
        best_path = ""
        for pid in shared:
            score = self.utility(candidate, pid)
            path = table.string_of(pid)
            better = score > best_score or (
                score == best_score and path < best_path
            )
            if best_pid is None or better:
                best_pid, best_score, best_path = pid, score, path
        return best_pid

    def explain_paths(
        self, candidate: Sequence[str]
    ) -> list[tuple[int, str, int, float]]:
        """The full U(C, p) table of Eq. 7 for a candidate.

        Rows are ``(path_id, path_string, depth, utility)`` sorted by
        utility descending (path string ascending on ties — the same
        order :meth:`find` effectively ranks by).  This is the table
        the winner "won against" in explain output; it bypasses the
        result cache and is not part of the hot path.
        """
        key = tuple(candidate)
        table = self.corpus.path_table
        rows = [
            (
                pid,
                table.string_of(pid),
                table.depth_of(pid),
                self.utility(key, pid),
            )
            for pid in self._shared_paths(key)
        ]
        rows.sort(key=lambda row: (-row[3], row[1]))
        return rows

    def cached_candidates(self) -> int:
        """Number of candidates currently held in the LRU cache."""
        return len(self._cache)
