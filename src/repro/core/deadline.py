"""Wall-clock budgets for anytime query execution.

XClean's Algorithm 1 is naturally *anytime*: the merge loop fills a
top-k accumulator monotonically, so stopping early yields the best
answer found so far rather than garbage.  A :class:`Deadline` makes
that explicit — the engine checks it at merge-loop and group-scoring
boundaries and, once expired, stops consuming input and returns the
current top-k with ``CleaningStats.partial = True`` (it never raises).

Deadlines are cheap but not free (a ``perf_counter`` call per check),
so the engine only consults one when ``XCleanConfig.deadline_seconds``
is set; the default ``None`` leaves the loops byte-identical to their
pre-deadline behavior.

Checks are amortized: ``expired()`` looks at the clock only every
``stride`` calls (default 64), bounding overshoot to one stride of
loop iterations while keeping the common case to one integer
decrement.
"""

from __future__ import annotations

from time import perf_counter


class Deadline:
    """A wall-clock budget with amortized expiry checks.

    Args:
        seconds: budget from *now*; ``float("inf")`` never expires.
        stride: how many ``expired()`` calls share one clock read.
    """

    __slots__ = ("expires_at", "stride", "_countdown", "_expired")

    def __init__(self, seconds: float, stride: int = 64):
        if seconds < 0:
            seconds = 0.0
        if stride < 1:
            stride = 1
        self.expires_at = perf_counter() + seconds
        self.stride = stride
        self._countdown = 0  # first call always reads the clock
        self._expired = False

    def expired(self) -> bool:
        """True once the budget has run out (sticky thereafter)."""
        if self._expired:
            return True
        countdown = self._countdown
        if countdown > 0:
            self._countdown = countdown - 1
            return False
        self._countdown = self.stride - 1
        if perf_counter() >= self.expires_at:
            self._expired = True
            return True
        return False

    def expired_now(self) -> bool:
        """Unamortized check: reads the clock every call (sticky)."""
        if self._expired:
            return True
        if perf_counter() >= self.expires_at:
            self._expired = True
            return True
        return False

    def remaining(self) -> float:
        """Seconds left (clamped at 0); reads the clock."""
        left = self.expires_at - perf_counter()
        return left if left > 0 else 0.0
