"""Unigram language model with Dirichlet smoothing (Eq. 6).

The query generation probability P(C|T) of Section IV-B2 scores each
entity's *virtual document* D(r) with the state-of-the-art smoothed
unigram model:

    p(w|D) = (count(w, D) + μ · p(w|B)) / (|D| + μ)

where B is the background model (the whole collection) and μ the
Dirichlet smoothing parameter.  Smoothing gives unseen-but-plausible
tokens non-zero probability, so an entity is not zeroed out merely
because a query word appears in a sibling rather than the entity itself
— yet entities genuinely containing the words score far higher.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.index.vocabulary import Vocabulary

#: Common Dirichlet prior; IR practice puts μ in the hundreds to
#: thousands for document-sized units.  Entities here are small (paper:
#: publication entries, wiki sections), so a moderate default works.
DEFAULT_MU = 100.0


class DirichletLanguageModel:
    """Smoothed unigram model over entity virtual documents."""

    def __init__(self, vocabulary: Vocabulary, mu: float = DEFAULT_MU):
        if mu <= 0:
            raise ConfigurationError("mu must be > 0")
        self.vocabulary = vocabulary
        self.mu = mu

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DirichletLanguageModel(mu={self.mu})"

    def probability(self, token: str, count: int, doc_length: int) -> float:
        """p(w|D) for a document with ``count`` occurrences of ``w``.

        ``doc_length`` is |D|, the total token count of the virtual
        document (0 is legal: the model degenerates to the background).
        """
        background = self.vocabulary.background_probability(token)
        return (count + self.mu * background) / (doc_length + self.mu)

    def document_probability(
        self,
        tokens: Sequence[str],
        counts: Sequence[int],
        doc_length: int,
    ) -> float:
        """p(C|D) = ∏ p(w|D) for a candidate query (Eq. 9)."""
        probability = 1.0
        for token, count in zip(tokens, counts):
            probability *= self.probability(token, count, doc_length)
        return probability
