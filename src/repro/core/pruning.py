"""Probabilistic candidate pruning: γ-bounded accumulators (Section V-D).

Algorithm 1 accumulates per-candidate score mass in a hash table S.  On
large datasets the number of *effective* candidates explodes, so the
paper caps the table at γ in-memory accumulators.  When a new candidate
arrives and the table is full, the victim is the candidate whose
*estimated final score* — the sample-mean argument backed by Hoeffding's
inequality — is lowest:

    estimate(C) = P(Q|C) · (mass accumulated so far) / N_C

An evicted candidate loses its accumulated mass; if it reappears later
it restarts from zero.  This is exactly why suggestion quality degrades
for small γ and saturates near γ = 1000 (Table V).

Exact summation: each accumulator keeps its mass as a Shewchuk
non-overlapping expansion (a short list of floats whose mathematical
sum is the *exact* real sum of every addend) rather than a single
running float.  ``math.fsum`` over the expansion then yields the
correctly rounded total, and — crucially for sharded serving — the
total is independent of the order in which the addends arrived.  A
scatter-gather coordinator can therefore concatenate per-shard partial
expansions and recover a mass bit-identical to the single-index run.
"""

from __future__ import annotations

import math

from repro.core.candidates import CandidateQuery
from repro.exceptions import ConfigurationError


def add_partial(partials: list[float], value: float) -> None:
    """Grow a Shewchuk expansion in place by one addend.

    Invariant: ``sum(partials)`` (as exact reals) equals the exact sum
    of every value ever added, and the list stays short in practice
    (one or two floats for well-scaled inputs).  This is the same
    error-free transformation behind ``math.fsum``.
    """
    i = 0
    x = value
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def hoeffding_confidence(samples: int, epsilon: float) -> float:
    """Hoeffding's bound as used in Section V-D.

    Probability that the sample mean of ``samples`` bounded-in-[0,1]
    observations lies within ``epsilon`` of the true mean:

        P(|V̂ - V| <= ε) >= 1 - 2·exp(-2·n·ε²)

    This justifies using a candidate's partially accumulated mass as an
    estimate of its final score when choosing eviction victims.
    Clamped to [0, 1].
    """
    if samples < 0:
        raise ConfigurationError("samples must be >= 0")
    if epsilon < 0:
        raise ConfigurationError("epsilon must be >= 0")
    bound = 1.0 - 2.0 * math.exp(-2.0 * samples * epsilon * epsilon)
    return max(0.0, min(1.0, bound))


def samples_for_confidence(confidence: float, epsilon: float) -> int:
    """Smallest n with Hoeffding confidence >= ``confidence``.

    Inverts :func:`hoeffding_confidence`; useful when tuning how much
    mass to accumulate before trusting the pruning estimate.
    """
    if not 0.0 <= confidence < 1.0:
        raise ConfigurationError("confidence must be in [0, 1)")
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be > 0")
    needed = math.log(2.0 / (1.0 - confidence)) / (
        2.0 * epsilon * epsilon
    )
    return max(0, math.ceil(needed))


class Accumulator:
    """Per-candidate running state in the score table S.

    ``normalizer`` generalizes Eq. 8's N: it is N (the entity count)
    under the uniform prior, or the total prior weight W_p of the
    candidate's result type under a non-uniform prior.

    Mass lives in :attr:`partials`, a Shewchuk expansion (see
    :func:`add_partial`): :attr:`mass` is the correctly rounded total,
    independent of addition order, so per-shard partial accumulators
    merge bit-identically to a single-index run.
    """

    __slots__ = (
        "partials", "error_weight", "normalizer", "result_type",
        "samples",
    )

    def __init__(
        self,
        mass: float,
        error_weight: float,
        normalizer: float,
        result_type: int,
        samples: int = 1,
    ):
        #: Non-overlapping expansion whose exact sum is the mass.
        self.partials: list[float] = [mass]
        self.error_weight = error_weight
        self.normalizer = normalizer
        self.result_type = result_type
        #: Mass additions so far — the n of the Hoeffding bound backing
        #: the eviction estimate (surfaced in pruning explanations).
        self.samples = samples

    @property
    def mass(self) -> float:
        """The correctly rounded total mass (order-independent)."""
        return math.fsum(self.partials)

    def add_mass(self, value: float) -> None:
        """Fold one group's mass into the expansion (exact)."""
        add_partial(self.partials, value)

    def extend_mass(self, values) -> None:
        """Fold another expansion's floats in (scatter-gather merge)."""
        for value in values:
            add_partial(self.partials, value)

    def estimate(self) -> float:
        """Estimated final score from the mass observed so far."""
        if self.normalizer == 0:
            return 0.0
        return self.error_weight * self.mass / self.normalizer


class AccumulatorPool:
    """The bounded score table S of Algorithm 1 + Section V-D pruning.

    ``capacity=None`` disables pruning (exact evaluation); tests use
    this to check that the pruned algorithm with γ = ∞ reproduces the
    naive scorer bit-for-bit.
    """

    def __init__(self, capacity: int | None = None, observer=None):
        if capacity is not None and capacity < 1:
            raise ConfigurationError("capacity must be >= 1 or None")
        self.capacity = capacity
        self.evictions = 0
        #: Optional pruning observer (``repro.obs.explain``): notified
        #: of evictions and rejected newcomers.  ``None`` (the
        #: default) keeps the hot path free of any callback checks
        #: outside the already-cold eviction branch.
        self.observer = observer
        self._table: dict[CandidateQuery, Accumulator] = {}
        #: Cached lower bound on the minimum estimate in the table
        #: while saturated (see :meth:`prune_floor`); ``None`` until a
        #: full scan has established one.
        self._floor: float | None = None

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, candidate: CandidateQuery) -> bool:
        return candidate in self._table

    @property
    def at_capacity(self) -> bool:
        """True when the table is saturated (γ entries live)."""
        return (
            self.capacity is not None
            and len(self._table) >= self.capacity
        )

    def prune_floor(self) -> float:
        """A lower bound on the minimum estimate in the table.

        Only meaningful while :attr:`at_capacity`.  The true minimum is
        monotone non-decreasing once the table saturates — masses only
        grow, and an eviction replaces the minimum with a newcomer
        whose estimate is at least as large — so any past full-scan
        minimum stays a valid bound forever.  Eviction scans refresh
        the cached value for free; the first call pays one O(γ) scan.

        The merge kernel uses this as the γ-pruning threshold: a
        newcomer whose score *upper bound* is strictly below the floor
        is guaranteed to be rejected by :meth:`add`, so its entities
        are never materialized or scored.
        """
        floor = self._floor
        if floor is None:
            floor = min(
                (entry.estimate() for entry in self._table.values()),
                default=0.0,
            )
            self._floor = floor
        return floor

    def add(
        self,
        candidate: CandidateQuery,
        mass: float,
        error_weight: float,
        normalizer: float,
        result_type: int,
    ) -> None:
        """Add entity mass for a candidate, evicting a victim if full.

        ``normalizer`` is the candidate-constant denominator of Eq. 8
        (N_C under the uniform prior, W_p under a weighted prior); it
        is stored on first touch for estimate/finalize use.
        """
        entry = self._table.get(candidate)
        if entry is not None:
            entry.add_mass(mass)
            entry.samples += 1
            return
        if (
            self.capacity is not None
            and len(self._table) >= self.capacity
        ):
            incoming_estimate = (
                error_weight * mass / normalizer if normalizer else 0.0
            )
            self._evict_lowest_estimate(candidate, incoming_estimate)
            if (
                self.capacity is not None
                and len(self._table) >= self.capacity
            ):
                # The incoming candidate itself was the weakest; drop it.
                if self.observer is not None:
                    self.observer.rejected(candidate, incoming_estimate)
                return
        self._table[candidate] = Accumulator(
            mass=mass,
            error_weight=error_weight,
            normalizer=normalizer,
            result_type=result_type,
        )

    def _evict_lowest_estimate(
        self,
        incoming: CandidateQuery,
        incoming_estimate: float,
    ) -> None:
        """Remove the weakest current entry if weaker than the newcomer.

        Linear scan: γ is at most a few thousand in every configuration
        the paper reports, and evictions only happen when the table is
        saturated.
        """
        victim: CandidateQuery | None = None
        victim_entry: Accumulator | None = None
        victim_estimate = float("inf")
        for candidate, entry in self._table.items():
            estimate = entry.estimate()
            if estimate < victim_estimate:
                victim = candidate
                victim_entry = entry
                victim_estimate = estimate
        # The scan just computed the true minimum; whether or not the
        # victim goes, every future minimum is >= it (monotonicity),
        # so it becomes the kernel's pruning floor.
        if victim is not None:
            self._floor = victim_estimate
        if victim is not None and victim_estimate <= incoming_estimate:
            del self._table[victim]
            self.evictions += 1
            if self.observer is not None:
                self.observer.evicted(
                    victim, victim_entry, incoming, incoming_estimate
                )

    def final_scores(self) -> dict[CandidateQuery, float]:
        """P(C|Q,T) (up to the shared κ) for every surviving candidate.

        Final score = P(Q|C) · (1/N_C) · Σ_r ∏_w p(w|D(r))  (Eq. 10).
        """
        return {
            candidate: entry.estimate()
            for candidate, entry in self._table.items()
        }

    def entry(self, candidate: CandidateQuery) -> Accumulator | None:
        """The accumulator of a candidate (inspection/testing)."""
        return self._table.get(candidate)

    def items(self):
        """Iterate ``(candidate, accumulator)`` pairs (shard gather)."""
        return self._table.items()

    def top_k(
        self, k: int
    ) -> list[tuple[CandidateQuery, float, Accumulator]]:
        """The k best candidates by final score.

        Ties are broken by the candidate's token tuple ascending —
        which (tokens contain no spaces, and a space sorts before
        every token character) is exactly the space-joined suggestion
        string ascending.  This total order is part of the public
        contract: it makes suggestion lists reproducible across runs,
        engines, and shard counts, so a scatter-gather merge sorted by
        the same ``(-score, candidate)`` key is byte-identical to a
        single-index run.
        """
        scored = [
            (candidate, entry.estimate(), entry)
            for candidate, entry in self._table.items()
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]
