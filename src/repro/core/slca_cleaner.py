"""XClean under the SLCA query semantics (Section VI-B).

Instead of a single inferred result type per candidate, each candidate
query's entities are its SLCA nodes — the smallest subtrees containing
every keyword.  Scoring stays Eq. 8/9 with those entities:

    P(C|T) = (1/N_C) Σ_{r ∈ SLCA(C)} ∏_{w ∈ C} p(w|D(r))

where N_C = |SLCA(C)| (every SLCA entity contains all keywords by
definition, so none is dropped).

The algorithm reuses Algorithm 1's group machinery: anchors, minimal
depth d, skipping, and single-pass list access.  SLCAs are computed
*within* each depth-d group; connections that exist only above depth d
are deliberately excluded — the same "connected only through the root
is not meaningful" argument of Section V-B.  The paper notes this
semantics works as well as node types on data-centric DBLP but worse on
document-centric INEX, which the ablation benchmark reproduces.
"""

from __future__ import annotations

from repro.core.candidates import CandidateQuery, CandidateSpace
from repro.core.config import XCleanConfig
from repro.core.error_model import ErrorModel, ExponentialErrorModel
from repro.core.language_model import DirichletLanguageModel
from repro.core.suggestion import CleaningStats, Suggestion
from repro.exceptions import QueryError
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import CorpusIndex
from repro.index.merged_list import MergedEntry, MergedList
from repro.slca.elca import elca
from repro.slca.multiway import slca
from repro.xmltree.dewey import DeweyCode


class SLCACleanSuggester:
    """Top-k query cleaning with SLCA entity semantics."""

    #: Display label used in Suggestion.result_type.
    semantics_label = "SLCA"

    def __init__(
        self,
        corpus: CorpusIndex,
        generator: VariantGenerator | None = None,
        error_model: ErrorModel | None = None,
        config: XCleanConfig | None = None,
    ):
        self.corpus = corpus
        self.config = config or XCleanConfig()
        self.generator = generator or VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=self.config.max_errors
        )
        self.error_model = error_model or ExponentialErrorModel(
            self.config.beta
        )
        self.language_model = DirichletLanguageModel(
            corpus.vocabulary, self.config.mu
        )
        self.last_stats = CleaningStats()

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Top-k alternative queries under SLCA semantics."""
        scores = self.score_all(query)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            Suggestion(
                tokens=candidate,
                score=score,
                result_type=self.semantics_label,
            )
            for candidate, score in ranked[:k]
        ]

    def score_all(self, query: str) -> dict[CandidateQuery, float]:
        """Scores of all candidates with at least one SLCA entity."""
        keywords = self.corpus.tokenizer.tokenize(query)
        if not keywords:
            raise QueryError(f"query {query!r} has no usable keywords")
        space = CandidateSpace(
            keywords, self.generator, self.error_model,
            self.config.max_errors,
        )
        stats = CleaningStats(
            keywords=len(keywords), space_size=space.space_size()
        )
        self.last_stats = stats
        if not space.is_viable:
            return {}

        merged = [
            self.corpus.merged_list(space.variant_tokens(i))
            for i in range(len(keywords))
        ]
        min_depth = self.config.min_depth
        mass: dict[CandidateQuery, float] = {}
        entity_counts: dict[CandidateQuery, int] = {}

        while True:
            anchor = None
            exhausted = False
            for ml in merged:
                head = ml.head_dewey()
                if head is None:
                    exhausted = True
                    break
                if anchor is None or head > anchor:
                    anchor = head
            if exhausted or anchor is None:
                break
            if len(anchor) < min_depth:
                self._consume_shallow(merged, anchor)
                continue
            group = anchor[:min_depth]
            occurrences = self._collect_group(merged, group)
            if occurrences is None:
                continue
            stats.groups_processed += 1
            self._score_group(
                occurrences, space, mass, entity_counts, stats
            )

        stats.postings_read = sum(ml.total_reads for ml in merged)
        stats.postings_skipped = sum(ml.total_skips for ml in merged)
        return {
            candidate: space.error_weight(candidate)
            * total
            / entity_counts[candidate]
            for candidate, total in mass.items()
            if entity_counts[candidate]
        }

    # ------------------------------------------------------------------
    # Internals (group machinery shared in spirit with XCleanSuggester)
    # ------------------------------------------------------------------

    def _entities(
        self, lists: list[list[DeweyCode]]
    ) -> list[DeweyCode]:
        """Entity roots of one candidate within the current group."""
        return slca(lists)

    def _consume_shallow(
        self, merged: list[MergedList], anchor: DeweyCode
    ) -> None:
        for ml in merged:
            if ml.head_dewey() == anchor:
                ml.next()
                return

    def _collect_group(
        self, merged: list[MergedList], group: DeweyCode
    ) -> list[dict[str, list[MergedEntry]]] | None:
        occurrences: list[dict[str, list[MergedEntry]]] = []
        missing = False
        for ml in merged:
            by_token: dict[str, list[MergedEntry]] = {}
            ml.skip_to(group)
            for entry in ml.pop_subtree(group):
                by_token.setdefault(entry[3], []).append(entry)
            if not by_token:
                missing = True
            occurrences.append(by_token)
        return None if missing else occurrences

    def _score_group(
        self,
        occurrences: list[dict[str, list[MergedEntry]]],
        space: CandidateSpace,
        mass: dict[CandidateQuery, float],
        entity_counts: dict[CandidateQuery, int],
        stats: CleaningStats,
    ) -> None:
        present = [list(by_token) for by_token in occurrences]
        for candidate in space.enumerate_present(present):
            stats.candidates_evaluated += 1
            lists = [
                [e[0] for e in occurrences[pos][token]]
                for pos, token in enumerate(candidate)
            ]
            entities = self._entities(lists)
            if not entities:
                continue
            total = 0.0
            for root in entities:
                stats.entities_scored += 1
                length = self.corpus.subtree_length(root)
                product = 1.0
                for position, token in enumerate(candidate):
                    count = sum(
                        tf
                        for dewey, _pid, tf, _tok in occurrences[position][
                            token
                        ]
                        if dewey[: len(root)] == root
                    )
                    product *= self.language_model.probability(
                        token, count, length
                    )
                total += product
            mass[candidate] = mass.get(candidate, 0.0) + total
            entity_counts[candidate] = (
                entity_counts.get(candidate, 0) + len(entities)
            )


class ELCACleanSuggester(SLCACleanSuggester):
    """Top-k query cleaning with ELCA entity semantics.

    A further demonstration of the framework's generality: entities are
    the Exclusive LCAs [XRANK] of the candidate's keyword occurrences.
    ELCAs are a superset of the SLCAs — ancestors with their own
    exclusive keyword witnesses also become entities, so broader
    contexts contribute score mass.
    """

    semantics_label = "ELCA"

    def _entities(
        self, lists: list[list[DeweyCode]]
    ) -> list[DeweyCode]:
        return elca(lists)
