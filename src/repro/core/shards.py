"""Scatter-gather serving over a sharded v3 index (``docs/sharding.md``).

:class:`ShardedSuggestionService` is the coordinator in front of a
shard manifest written by ``repro.index.sharding``: every query fans
out to one replica pool per shard, each shard answers with its full
γ-bounded partial accumulator table, and the gather side folds the
per-shard Shewchuk expansions back together — producing a top-k that
is **byte-identical** to a single-index run (same scores to the last
bit, same deterministic ``(-score, candidate)`` order).

Why whole tables and not k candidates per shard: a candidate's Eq. 8
mass is a *sum over entities*, and its entities are spread across
shards.  A candidate ranked k+1 everywhere can still be global top-1,
so per-shard top-k truncation is not exact.  Shipping the (γ-bounded)
partial tables is — see ``docs/sharding.md`` for the full argument
and the γ/no-eviction caveat.

Replication: each shard runs R single-worker process pools mapping
the same snapshot file (page cache shared).  Routing is round-robin
or least-loaded; every replica has its own circuit breaker, so a
tripped replica is skipped.  When a replica fails mid-query the
coordinator fails over to the next one, then (by default) degrades to
an in-process run of that shard, and only as a last resort omits the
shard and flags the answer ``partial``.

The public surface mirrors :class:`~repro.core.server.SuggestionService`
— ``suggest`` / ``suggest_detailed`` / ``suggest_batch`` /
``suggest_batch_detailed``, admission control, the result LRU keyed on
manifest identity + generation, metrics, tracing, and the flight
recorder — so the HTTP front-end and the CLI drive either one.
"""

from __future__ import annotations

import dataclasses
import logging
import math
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from contextlib import contextmanager
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Iterator, Sequence

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.pruning import add_partial
from repro.core.server import (
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_CLOSE_GRACE,
    DEFAULT_RESULT_CACHE_SIZE,
    DEFAULT_RETRY_AFTER,
    _LATENCY_EWMA_ALPHA,
    CircuitBreaker,
    _enter_worker,
)
from repro.core.suggestion import CleaningStats, Suggestion
from repro.exceptions import (
    ConfigurationError,
    Overloaded,
    QueryError,
    StorageError,
)
from repro.index.sharding import ShardManifest, load_manifest
from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.obs.faults import active as _active_faults
from repro.obs.recorder import FlightEntry, FlightRecorder
from repro.obs.trace import NULL_TRACER, Span, Tracer

logger = logging.getLogger(__name__)

#: Result-LRU key: ((manifest crc, generation), normalized tokens, k) —
#: same shape as the single-index service's key, with the manifest CRC
#: standing in for the index identity.
_CacheKey = tuple[tuple[int, int], tuple[str, ...], int]

#: Replica routing policies.
ROUTING_POLICIES = ("round-robin", "least-loaded")

DEFAULT_ROUTING = "round-robin"


# ----------------------------------------------------------------------
# Shard-worker plumbing.  Module-level so the worker side is picklable;
# each replica process builds its shard suggester once in the
# initializer and reuses it for every query it is handed.
# ----------------------------------------------------------------------

_SHARD_SUGGESTER: XCleanSuggester | None = None
_SHARD_METRICS: MetricsRegistry | None = None


def _init_shard_worker(snapshot_path: str, config: XCleanConfig) -> None:
    """Initializer of a single-shard replica process.

    Maps the shard's v3 snapshot; every replica of the shard maps the
    same file, so its bytes live once in the OS page cache no matter
    how many replicas serve it.
    """
    global _SHARD_SUGGESTER, _SHARD_METRICS
    from repro.index.snapshot import load_snapshot

    _enter_worker(config)
    _SHARD_METRICS = MetricsRegistry(buckets=config.latency_buckets)
    _SHARD_SUGGESTER = XCleanSuggester(
        load_snapshot(snapshot_path), config=config,
        metrics=_SHARD_METRICS,
    )


def _worker_shard_partials(task: tuple[str, dict | None, int]):
    """Answer one scatter leg: this shard's partial accumulator table.

    ``task`` is ``(query, trace_ctx, shard_id)``.  Returns
    ``(rows, stats, extras)`` where ``rows`` is the shard's full
    partial table (``XCleanSuggester.partial_rows``), or ``None`` for
    an unanswerable query — tokenization is global, so one shard's
    ``QueryError`` means every shard's, and the coordinator re-raises.
    ``extras`` carries the worker's per-query stage-timer deltas and,
    when traced, the finished ``shard.worker`` span subtree.
    """
    query, trace_ctx, shard_id = task
    assert _SHARD_SUGGESTER is not None, "shard worker not initialized"
    faults = _active_faults()
    if faults.enabled:
        # ``raise`` surfaces in the coordinator as a replica failure
        # (failover → degrade ladder); ``delay`` past worker_timeout
        # exercises the timeout leg of the same ladder.
        faults.hit("shard.query")
    registry = _SHARD_METRICS
    before = registry.stage_states() if registry is not None else {}
    tracer = None
    worker_span = None
    if trace_ctx is not None:
        tracer = Tracer()
        tracer.begin(
            "shard.worker",
            trace_id=trace_ctx.get("trace_id"),
            query=query,
            shard=shard_id,
            pid=os.getpid(),
        )
        _SHARD_SUGGESTER.bind_tracer(tracer)
    try:
        try:
            rows, stats = _SHARD_SUGGESTER.partial_rows(query)
        except QueryError:
            return None
    finally:
        if tracer is not None:
            worker_span = tracer.end()
            _SHARD_SUGGESTER.bind_tracer(None)
    extras: dict = {}
    if registry is not None:
        deltas = registry.stage_deltas(before)
        if deltas:
            extras["stages"] = deltas
    if worker_span is not None:
        extras["span"] = worker_span
    return rows, stats, extras or None


# ----------------------------------------------------------------------
# The gather merge
# ----------------------------------------------------------------------


def merge_partial_tables(
    tables: Sequence, k: int
) -> tuple[list[Suggestion], int]:
    """Fold per-shard partial tables into the exact global top-k.

    Each table is a sequence of rows ``(candidate, partials,
    error_weight, normalizer, result_type, samples)`` as produced by
    ``XCleanSuggester.partial_rows``.  Candidates appearing on several
    shards have their Shewchuk expansions concatenated through
    :func:`~repro.core.pruning.add_partial`, so ``math.fsum`` over the
    merged expansion is the correctly rounded total of every entity
    mass regardless of which shard contributed it or in what order —
    the resulting score is bit-identical to a single-index run.

    ``error_weight``, ``normalizer`` and ``result_type`` depend only
    on global statistics (replicated into every shard), so the first
    occurrence wins.  The final sort uses the same ``(-score,
    candidate)`` total order as ``AccumulatorPool.top_k`` — ties break
    by candidate ascending — which is what makes the merged list
    stable across shard counts.

    Returns ``(top_k_suggestions, merged_candidate_count)``.
    """
    merged: dict[tuple[str, ...], list] = {}
    for rows in tables:
        for candidate, partials, weight, normalizer, rtype, _ in rows:
            entry = merged.get(candidate)
            if entry is None:
                merged[candidate] = [
                    list(partials), weight, normalizer, rtype,
                ]
            else:
                acc = entry[0]
                for value in partials:
                    add_partial(acc, value)
    scored = [
        (
            candidate,
            (weight * math.fsum(partials) / normalizer
             if normalizer else 0.0),
            rtype,
        )
        for candidate, (partials, weight, normalizer, rtype)
        in merged.items()
    ]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return (
        [
            Suggestion(tokens=candidate, score=score, result_type=rtype)
            for candidate, score, rtype in scored[:k]
        ],
        len(merged),
    )


#: CleaningStats counters that sum across shards (work actually done).
_SUMMED_FIELDS = (
    "groups_processed",
    "candidates_evaluated",
    "entities_scored",
    "postings_read",
    "postings_skipped",
    "accumulator_evictions",
    "result_types_computed",
    "result_type_cache_hits",
    "result_type_cache_misses",
    "variant_cache_hits",
    "variant_cache_misses",
    "merged_cache_hits",
    "merged_cache_misses",
    "intersection_cache_hits",
    "intersection_cache_misses",
    "kernel_pruned",
)


def fold_cleaning_stats(
    per_shard: Sequence[CleaningStats],
    trace_id: str | None = None,
) -> CleaningStats:
    """One query's :class:`CleaningStats` from its per-shard legs.

    Work counters sum; ``keywords`` and ``space_size`` are global
    properties (identical on every shard — the candidate space is
    derived from the replicated global vocabulary) so the max is just
    defensive; ``partial`` is sticky.
    """
    folded = CleaningStats(trace_id=trace_id)
    for stats in per_shard:
        folded.keywords = max(folded.keywords, stats.keywords)
        folded.space_size = max(folded.space_size, stats.space_size)
        for field in _SUMMED_FIELDS:
            setattr(
                folded, field,
                getattr(folded, field) + getattr(stats, field),
            )
        if stats.partial:
            folded.partial = True
    return folded


@dataclass
class ShardedServiceStats:
    """Cumulative coordinator counters (whole service lifetime)."""

    queries_served: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    unanswerable: int = 0
    shed_queries: int = 0
    #: Answers missing at least one shard (all replicas and the
    #: in-process fallback failed); served flagged, never cached.
    partial_results: int = 0
    #: Shard legs that fell back to in-process execution.
    degraded_queries: int = 0
    #: Scatter legs handed to a replica pool.
    shard_dispatches: int = 0
    #: Legs answered by a later replica after an earlier one failed.
    replica_failovers: int = 0
    worker_timeouts: int = 0
    worker_failures: int = 0
    pool_starts: int = 0
    #: Shard legs dropped entirely (the ``partial`` answers' cause).
    shards_omitted: int = 0
    #: Live-update records durably applied via ``apply_updates``.
    updates_applied: int = 0
    #: Manifest swaps onto a freshly compacted generation.
    generation_swaps: int = 0


class _Replica:
    """One single-worker process pool serving one shard replica.

    The pool is started lazily on first dispatch and *retired*
    (shut down without waiting, restarted on next use) when its worker
    times out or crashes — with one process per pool, a hung worker
    poisons the whole pool, so retirement is the recycle policy.
    """

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        snapshot_path: str,
        config: XCleanConfig,
        breaker: CircuitBreaker,
        on_start=None,
    ):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.snapshot_path = snapshot_path
        self.breaker = breaker
        self.inflight = 0
        self._config = config
        self._on_start = on_start
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        #: Workers of retired pools, reaped by ``shutdown``.
        self._orphans: list = []

    def submit(self, task):
        """Dispatch one task; pairs with :meth:`done`."""
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_init_shard_worker,
                    initargs=(self.snapshot_path, self._config),
                )
                if self._on_start is not None:
                    self._on_start()
            pool = self._pool
            self.inflight += 1
        try:
            return pool.submit(_worker_shard_partials, task)
        except Exception:
            with self._lock:
                self.inflight -= 1
            raise

    def done(self) -> None:
        with self._lock:
            self.inflight -= 1

    def retire(self) -> None:
        """Tear the pool down without waiting; next submit restarts it."""
        with self._lock:
            pool, self._pool = self._pool, None
            if pool is None:
                return
            processes = list(
                (getattr(pool, "_processes", None) or {}).values()
            )
        pool.shutdown(wait=False, cancel_futures=True)
        with self._lock:
            self._orphans.extend(p for p in processes if p.is_alive())

    def drain(self) -> list:
        """Shut down; returns processes for the caller to grace-join."""
        with self._lock:
            pool, self._pool = self._pool, None
            processes = list(self._orphans)
            self._orphans = []
        if pool is not None:
            processes.extend(
                (getattr(pool, "_processes", None) or {}).values()
            )
            pool.shutdown(wait=False, cancel_futures=True)
        return processes


class ShardedSuggestionService:
    """Scatter-gather query serving over a shard manifest."""

    def __init__(
        self,
        manifest: ShardManifest | str,
        config: XCleanConfig | None = None,
        replicas: int = 0,
        routing: str = DEFAULT_ROUTING,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        workers: int | None = None,
        worker_timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
        max_pending: int | None = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        close_grace: float = DEFAULT_CLOSE_GRACE,
        tracer: Tracer | None = None,
        flight_recorder: FlightRecorder | None = None,
        flight_record_path: str | None = None,
        slow_threshold: float | None = None,
        degrade_in_process: bool = True,
    ):
        if isinstance(manifest, str):
            manifest = load_manifest(manifest)
        if routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {routing!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        if replicas < 0:
            raise ConfigurationError("replicas must be >= 0")
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                "max_pending must be >= 1 or None (unbounded)"
            )
        self.manifest = manifest
        self.config = config or XCleanConfig()
        if manifest.partition_depth > self.config.min_depth:
            # Groups are rooted at min_depth; a coarser partition depth
            # keeps every group (hence every entity fold) on one shard.
            raise ConfigurationError(
                f"manifest partition_depth {manifest.partition_depth} "
                f"exceeds min_depth {self.config.min_depth}: subtree "
                "groups would span shards and the merge would not be "
                "exact"
            )
        self.metrics_registry = metrics or MetricsRegistry(
            buckets=self.config.latency_buckets
        )
        self._installed_faults = False
        if self.config.fault_plan is not None:
            from repro.obs import faults

            faults.install_spec(
                self.config.fault_plan, seed=self.config.fault_seed
            )
            self._installed_faults = True
        self.tracer = tracer or NULL_TRACER
        if flight_recorder is not None:
            self.flight_recorder: FlightRecorder | None = (
                flight_recorder
            )
        elif self.tracer.enabled:
            self.flight_recorder = FlightRecorder(
                slow_threshold=slow_threshold
            )
        else:
            self.flight_recorder = None
        if (
            self.flight_recorder is not None
            and slow_threshold is not None
        ):
            self.flight_recorder.slow_threshold = slow_threshold
        self.flight_record_path = flight_record_path
        self.replicas = replicas
        self.routing = routing
        self.workers = workers
        self.worker_timeout = worker_timeout
        self.max_pending = max_pending
        self.close_grace = close_grace
        self.degrade_in_process = degrade_in_process
        self.result_cache_size = result_cache_size
        self._result_cache: OrderedDict[
            _CacheKey, tuple[Suggestion, ...]
        ] = OrderedDict()
        self.stats = ShardedServiceStats()
        self.last_stats = CleaningStats()
        self._shard_paths = manifest.shard_paths()
        self.shard_count = len(self._shard_paths)
        #: Bookkeeping lock (stats, cache, admission, EWMA, routing
        #: cursors).  Reentrant; never held across computation.
        self._lock = threading.RLock()
        #: Serializes in-process shard suggesters (their caches and
        #: ``last_stats`` are not thread-safe).
        self._compute_lock = threading.Lock()
        self._sink_local = threading.local()
        self._latency_ewma = 0.0
        self._inflight = 0
        self._generation = 0
        #: Generation-swap gate: while True, :meth:`admit` blocks new
        #: queries (instead of shedding) until the swap completes, and
        #: the swap itself waits for in-flight queries to drain — so a
        #: scatter-gather can never merge partials from two different
        #: generations.  Queries are briefly queued, never dropped.
        self._swapping = False
        self._swap_gate = threading.Condition(self._lock)
        #: The sharded live-index manager once
        #: :meth:`enable_live_updates` ran; ``None`` otherwise.
        self._live = None
        #: Serializes writers (apply/compact) against each other.
        self._update_lock = threading.Lock()
        self._closed = False
        #: Lazily built in-process suggesters, one per shard — the
        #: replicas=0 serving mode and the degrade fallback.
        self._local: dict[int, XCleanSuggester] = {}
        self._local_lock = threading.Lock()
        #: Per-shard replica pools and round-robin cursors.
        self._pools: list[list[_Replica]] = []
        self._rr = [0] * self.shard_count
        for shard_id, path in enumerate(self._shard_paths):
            row = []
            for replica_id in range(replicas):
                breaker = CircuitBreaker(
                    threshold=breaker_threshold,
                    cooldown=breaker_cooldown,
                    metrics=self.metrics_registry,
                    on_open=self._on_breaker_open,
                )
                row.append(_Replica(
                    shard_id, replica_id, path, self.config,
                    breaker, on_start=self._note_pool_start,
                ))
            self._pools.append(row)
        # Shard 0 eagerly: its corpus provides the tokenizer for cache
        # keys and the HTTP front-end, and validates the manifest's
        # first snapshot up front.
        self.corpus = self._local_suggester(0).corpus

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut every replica pool down.  Idempotent.

        The service stays usable in-process afterwards.  Mirrors
        ``SuggestionService.close``: workers get ``close_grace``
        seconds (one shared deadline) to exit, then are terminated
        and, as a last resort, killed.
        """
        self._closed = True
        if self._live is not None:
            self._live.close()
        processes: list = []
        for row in self._pools:
            for replica in row:
                processes.extend(replica.drain())
        processes = [p for p in processes if p.is_alive()]
        if processes:
            grace_ends = monotonic() + max(0.0, self.close_grace)
            for process in processes:
                process.join(max(0.0, grace_ends - monotonic()))
            stragglers = [p for p in processes if p.is_alive()]
            for process in stragglers:
                logger.warning(
                    "shard worker %s did not exit within %.1fs; "
                    "terminating", process.pid, self.close_grace,
                )
                process.terminate()
            for process in stragglers:
                process.join(1.0)
                if process.is_alive():  # pragma: no cover
                    process.kill()
                    process.join(1.0)
        if self._installed_faults:
            from repro.obs import faults

            faults.uninstall()
            self._installed_faults = False

    def __enter__(self) -> "ShardedSuggestionService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def metrics(self) -> MetricsSnapshot:
        """Metrics snapshot; includes per-shard stage-timer labels.

        Replica workers ship per-query stage deltas back with every
        answer; the coordinator merges them into the global stage
        timers *and* re-records each stage total under
        ``shard_stage_seconds_total{shard=..., stage=...}`` so hot
        shards are visible per stage.
        """
        return self.metrics_registry.snapshot()

    def bump_generation(self) -> None:
        """Invalidate every cached answer (snapshot set replaced)."""
        with self._lock:
            self._generation += 1

    # ------------------------------------------------------------------
    # The ops plane (/readyz, /statusz — see repro/obs/ops.py)
    # ------------------------------------------------------------------

    def health(self, *, draining: bool = False):
        """Readiness verdict: ready / degraded / not_ready + reasons.

        A generation swap in progress is **ready**: the gate queues
        arrivals instead of shedding them, so routine live updates
        must not flap readiness.  An open replica breaker degrades; a
        shard whose every replica breaker is open has fallen back to
        in-process execution entirely — degraded too (and named so).
        """
        from repro.obs.ops import evaluate_health

        degraded: list[tuple[bool, str]] = []
        with self._lock:
            closed = self._closed
            for row in self._pools:
                open_replicas = 0
                for replica in row:
                    if replica.breaker.state == "open":
                        open_replicas += 1
                        degraded.append((
                            True,
                            f"breaker_open shard={replica.shard_id} "
                            f"replica={replica.replica_id}",
                        ))
                if row and open_replicas == len(row):
                    degraded.append((
                        True,
                        f"in_process_fallback "
                        f"shard={row[0].shard_id}",
                    ))
        return evaluate_health(
            not_ready=[
                (closed, "service_closed"),
                (draining, "draining"),
            ],
            degraded=degraded,
        )

    def status(self) -> dict:
        """The service half of ``/statusz`` (see ``obs/ops.py``)."""
        with self._lock:
            shards = [
                {
                    "shard": shard_id,
                    "path": self._shard_paths[shard_id],
                    "replicas": [
                        {
                            "replica": replica.replica_id,
                            "breaker": replica.breaker.state,
                            "inflight": replica.inflight,
                        }
                        for replica in row
                    ],
                }
                for shard_id, row in enumerate(self._pools)
            ]
            payload = {
                "mode": "sharded",
                "data_generation": self.data_generation,
                "swap_epoch": self._generation,
                "swapping": self._swapping,
                "inflight": self._inflight,
                "shard_count": self.shard_count,
                "replicas": self.replicas,
                "routing": self.routing,
                "closed": self._closed,
                "shards": shards,
                "stats": dataclasses.asdict(self.stats),
            }
        live = self._live
        payload["live"] = (
            live.status() if live is not None else None
        )
        return payload

    # ------------------------------------------------------------------
    # Live updates & the generation swap
    # ------------------------------------------------------------------
    #
    # The sharded tier folds updates *eagerly*: there is no per-shard
    # delta overlay (a coordinator-side overlay would have to straddle
    # the partition), so ``apply_updates`` WAL-acks the records against
    # the manifest directory, rebuilds every shard at generation N+1
    # through the atomic writer, and swaps the manifest in.  The swap
    # gate in :meth:`admit`/:meth:`release` drains in-flight scatters
    # first — a gathered answer always merges partials of exactly one
    # generation, and gated arrivals are queued, never dropped.

    @property
    def data_generation(self) -> int:
        """The data generation currently being served."""
        if self._live is not None:
            return self._live.generation
        return self.manifest.generation

    @property
    def live(self):
        """The live-index manager, or ``None`` before enablement."""
        return self._live

    def enable_live_updates(
        self,
        document=None,
        *,
        fastss_max_errors: int | None = 3,
    ):
        """Attach the crash-safe live-update pipeline (see
        ``index/compaction.py``).  ``document`` seeds the logical
        document on the very first call; recovery-time opens need only
        the on-disk state.  When WAL replay finds acknowledged records
        that never reached a fold, they are compacted in (and the
        manifest swapped) before this returns.  Idempotent.
        """
        if self._live is not None:
            return self._live
        from repro.index.compaction import LiveIndexManager

        if not self.manifest.directory:
            raise ConfigurationError(
                "live updates need a manifest loaded from disk (the "
                "WAL and live source live next to it)"
            )
        live = LiveIndexManager(
            self.manifest.directory,
            document=document,
            base=self.manifest,
            metrics=self.metrics_registry,
            fastss_max_errors=fastss_max_errors,
        )
        self._live = live
        if live.recovered_records:
            # Acknowledged updates from before the crash: fold and
            # serve them now, not on the next apply.
            with self._update_lock:
                live.compact()
                self._swap_manifest_locked(live.base)
        elif live.generation != self.manifest.generation:
            # Recovery finished an interrupted compaction during the
            # open (no WAL records left to replay, but the manager's
            # manifest is a fresher generation than the one this
            # service loaded): swap it in so acknowledged updates are
            # served now, not after the next apply.
            with self._update_lock:
                self._swap_manifest_locked(live.base)
        return live

    def _require_live(self):
        live = self._live
        if live is None:
            raise ConfigurationError(
                "live updates are not enabled; call "
                "enable_live_updates() first"
            )
        return live

    def apply_updates(
        self, records, workers: int | None = None
    ) -> int:
        """Durably apply subtree updates; visible once this returns.

        Records are WAL-appended with an fsync (the acknowledge
        point), folded into every shard at generation N+1, and the
        manifest swapped — so the next admitted query is answered from
        the new generation on all shards.
        """
        live = self._require_live()
        error: Exception | None = None
        with self._update_lock:
            acked = live.acked_records
            folded = live.applied_records
            try:
                applied = live.apply(records)
            except Exception as exc:
                # Records before the bad one are already durable; fold
                # and serve them so "acknowledged" means "served" even
                # on the failure path.  Count only records that
                # actually reached the document — an acked record
                # whose fold failed is *not* applied, and compacting
                # now would reset the WAL and silently discard it, so
                # leave the log intact for replay-on-reopen instead.
                error = exc
                applied = live.applied_records - folded
                if live.acked_records - acked != applied:
                    applied = 0
            if applied:
                live.compact(workers=workers)
                self._swap_manifest_locked(live.base)
                with self._lock:
                    self.stats.updates_applied += applied
                if self.metrics_registry.enabled:
                    self.metrics_registry.inc(
                        "updates_applied_total", applied
                    )
        if error is not None:
            raise error
        return applied

    def compact(self, workers: int | None = None) -> int:
        """Fold any WAL'd records into a fresh generation and swap.

        With no pending records this still rolls the generation
        forward (a no-op fold), which is occasionally useful to force
        a clean base; returns the new generation number.
        """
        live = self._require_live()
        with self._update_lock:
            generation = live.compact(workers=workers)
            self._swap_manifest_locked(live.base)
        return generation

    def _swap_manifest_locked(self, manifest) -> None:
        """Install a freshly built manifest; zero dropped queries.

        Caller holds ``_update_lock``.  Raises the swap gate, waits
        for in-flight scatters to drain (their answers are entirely
        pre-swap), installs the new shard set, retires every replica
        pool (workers re-map the new snapshot files on next dispatch),
        and drops the in-process suggesters so the degrade path
        re-loads too.  The result cache rolls over via the manifest
        CRC + generation in the cache key.
        """
        paths = manifest.shard_paths()
        if len(paths) != self.shard_count:
            raise ConfigurationError(
                f"generation swap cannot change the shard count "
                f"({self.shard_count} -> {len(paths)})"
            )
        metrics = self.metrics_registry
        began = perf_counter() if metrics.enabled else 0.0
        with self._lock:
            self._swapping = True
            while self._inflight > 0:
                self._swap_gate.wait()
        drained = perf_counter() if metrics.enabled else 0.0
        try:
            with self._local_lock:
                self._local = {}
            for row, path in zip(self._pools, paths):
                for replica in row:
                    replica.snapshot_path = path
                    replica.retire()
            with self._lock:
                self.manifest = manifest
                self._shard_paths = paths
                self._generation += 1
                self.stats.generation_swaps += 1
            self.corpus = self._local_suggester(0).corpus
            if metrics.enabled:
                metrics.inc("generation_swaps_total")
                # Drain time is the availability-relevant slice: how
                # long new arrivals sat queued behind the gate.
                metrics.observe_stage("swap_drain", drained - began)
                metrics.observe_stage(
                    "swap", perf_counter() - began
                )
        finally:
            with self._lock:
                self._swapping = False
                self._swap_gate.notify_all()

    # ------------------------------------------------------------------
    # Tracing & the flight recorder (mirrors SuggestionService)
    # ------------------------------------------------------------------

    @contextmanager
    def _traced_request(self, name: str, query: str,
                        trace_id: str | None = None,
                        **attributes) -> Iterator[None]:
        tracer = self.tracer
        if not tracer.enabled:
            yield
            return
        owns = tracer.current() is None
        if not owns:
            with tracer.span(name, query=query, **attributes):
                yield
            return
        stats = self.stats
        partial0 = stats.partial_results
        degraded0 = stats.degraded_queries
        faults = _active_faults()
        fired0 = sum(faults.fired().values()) if faults.enabled else 0
        tracer.begin(name, trace_id=trace_id, query=query, **attributes)
        error: str | None = None
        try:
            yield
        except BaseException as exc:
            error = type(exc).__name__
            tracer.annotate(error=error)
            raise
        finally:
            root = tracer.end()
            recorder = self.flight_recorder
            if root is not None and recorder is not None:
                fired = (
                    sum(faults.fired().values())
                    if faults.enabled else 0
                )
                recorder.record(FlightEntry(
                    root,
                    query=query,
                    latency_s=root.duration,
                    partial=stats.partial_results > partial0,
                    degraded=stats.degraded_queries > degraded0,
                    faulted=fired > fired0,
                    error=error,
                ))

    @property
    def _stats_sink(self) -> list[CleaningStats] | None:
        return getattr(self._sink_local, "sink", None)

    @_stats_sink.setter
    def _stats_sink(self, value: list[CleaningStats] | None) -> None:
        self._sink_local.sink = value

    def _note_stats(self, stats: CleaningStats) -> None:
        with self._lock:
            self.last_stats = stats
        sink = self._stats_sink
        if sink is not None:
            sink.append(stats)

    def _note_unanswerable(self) -> None:
        sink = self._stats_sink
        if sink is not None:
            sink.append(CleaningStats())

    def _note_pool_start(self) -> None:
        with self._lock:
            self.stats.pool_starts += 1
        if self.metrics_registry.enabled:
            self.metrics_registry.inc("pool_starts_total")

    def dump_flight_record(
        self, path: str | None = None, reason: str = "on_demand"
    ) -> str:
        recorder = self.flight_recorder
        if recorder is None:
            raise ConfigurationError(
                "no flight recorder attached — construct the service "
                "with a live tracer or an explicit flight_recorder"
            )
        destination = path or self.flight_record_path
        if destination is None:
            return recorder.dump_jsonl(reason)
        return recorder.dump_to(destination, reason)

    def _on_breaker_open(self) -> None:
        recorder = self.flight_recorder
        if recorder is None:
            return
        if self.metrics_registry.enabled:
            self.metrics_registry.inc(
                "flight_dumps_total", reason="breaker_open"
            )
        path = self.flight_record_path
        if path is None:
            logger.warning(
                "flight record (breaker_open): %d traces retained in "
                "memory", len(recorder),
            )
            return
        try:
            recorder.dump_to(path, "breaker_open")
        except OSError as error:  # pragma: no cover - disk trouble
            logger.warning(
                "flight record dump to %s failed: %s", path, error
            )

    # ------------------------------------------------------------------
    # Result cache & admission control (mirrors SuggestionService)
    # ------------------------------------------------------------------

    def _cache_key(self, query: str, k: int) -> _CacheKey:
        return (
            (self.manifest.crc, self._generation),
            tuple(self.corpus.tokenizer.tokenize(query)),
            k,
        )

    def _cache_put(
        self, key: _CacheKey, suggestions: Sequence[Suggestion]
    ) -> None:
        with self._lock:
            cache = self._result_cache
            cache[key] = tuple(suggestions)
            while len(cache) > self.result_cache_size:
                cache.popitem(last=False)

    def retry_after_hint(self) -> float:
        with self._lock:
            return max(DEFAULT_RETRY_AFTER, self._latency_ewma)

    def _observe_latency(self, seconds: float) -> None:
        with self._lock:
            if self._latency_ewma == 0.0:
                self._latency_ewma = seconds
            else:
                self._latency_ewma += _LATENCY_EWMA_ALPHA * (
                    seconds - self._latency_ewma
                )

    def admit(self, cost: int = 1) -> None:
        with self._lock:
            while self._swapping:
                # A generation swap is in progress: queue (don't shed)
                # until the new manifest is installed, so no scatter
                # straddles two generations.
                self._swap_gate.wait()
            limit = self.max_pending
            if limit is not None and self._inflight + cost > limit:
                self.stats.shed_queries += cost
                if self.metrics_registry.enabled:
                    self.metrics_registry.inc(
                        "shed_queries_total", cost
                    )
                raise Overloaded(
                    f"admission queue full ({self._inflight} in "
                    f"flight + {cost} requested > limit {limit})",
                    retry_after=max(
                        DEFAULT_RETRY_AFTER, self._latency_ewma
                    ),
                )
            self._inflight += cost

    def release(self, cost: int = 1) -> None:
        with self._lock:
            self._inflight -= cost
            if self._swapping and self._inflight == 0:
                self._swap_gate.notify_all()

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Exact global top-k, byte-identical to a single-index run.

        Raises:
            QueryError: when the query has no usable keywords.
            Overloaded: when admission control is over ``max_pending``.
        """
        return self.suggest_detailed(query, k)[0]

    def suggest_detailed(
        self, query: str, k: int = 10, *, pre_admitted: bool = False,
        trace_id: str | None = None,
    ) -> tuple[list[Suggestion], CleaningStats]:
        """:meth:`suggest` plus this call's own :class:`CleaningStats`."""
        with self._traced_request(
            "request", query, trace_id=trace_id,
            shards=self.shard_count,
        ):
            if not pre_admitted:
                self.admit(1)
            try:
                return self._suggest_one_detailed(query, k)
            finally:
                if not pre_admitted:
                    self.release(1)

    def _suggest_one_detailed(
        self, query: str, k: int, traced: bool = True
    ) -> tuple[list[Suggestion], CleaningStats]:
        metrics = self.metrics_registry
        began = perf_counter()
        key = self._cache_key(query, k)
        with self._lock:
            self.stats.queries_served += 1
            if metrics.enabled:
                metrics.inc("queries_total")
            cached = self._result_cache.get(key)
            if cached is not None:
                self._result_cache.move_to_end(key)
                self.stats.result_cache_hits += 1
                stats = CleaningStats(
                    result_cache_hits=1,
                    trace_id=self.tracer.trace_id,
                )
                self._note_stats(stats)
                if metrics.enabled:
                    metrics.inc("result_cache_hits_total")
                    metrics.observe(
                        "request_seconds", perf_counter() - began
                    )
                return list(cached), stats
        suggestions, stats = self._compute(query, k, traced=traced)
        with self._lock:
            self.stats.result_cache_misses += 1
            stats.result_cache_misses += 1
            self._note_stats(stats)
            if stats.partial:
                # A shard was omitted: serve the best-effort answer
                # but never cache it — a transient replica outage must
                # not become a permanently incomplete top-k.
                self.stats.partial_results += 1
                if metrics.enabled:
                    metrics.inc("partial_results_total")
            else:
                self._cache_put(key, suggestions)
            elapsed = perf_counter() - began
            self._observe_latency(elapsed)
            if metrics.enabled:
                metrics.inc("result_cache_misses_total")
                metrics.observe("request_seconds", elapsed)
        return list(suggestions), stats

    # ------------------------------------------------------------------
    # Scatter / gather
    # ------------------------------------------------------------------

    def _compute(
        self, query: str, k: int, traced: bool = True
    ) -> tuple[list[Suggestion], CleaningStats]:
        """One full scatter-gather pass (no caching, no admission).

        ``traced=False`` (the threaded batch path) suppresses all
        coordinator-side span work: the live :class:`Tracer` keeps a
        single span stack and is not safe to drive from the batch's
        worker threads.
        """
        tracer = self.tracer if traced else NULL_TRACER
        trace_ctx = (
            {"trace_id": tracer.trace_id} if tracer.enabled else None
        )
        with tracer.span("scatter", shards=self.shard_count):
            if self.replicas > 0 and not self._closed:
                legs = self._scatter_pooled(query, trace_ctx, tracer)
            else:
                legs = [
                    self._query_shard_local(sid, query, tracer)
                    for sid in range(self.shard_count)
                ]
        if any(kind == "unanswerable" for kind, _, _ in legs):
            raise QueryError(
                f"query {query!r} has no usable keywords"
            )
        tables = [rows for kind, rows, _ in legs if kind == "ok"]
        omitted = sum(1 for kind, _, _ in legs if kind == "omitted")
        if not tables:
            raise StorageError(
                f"all {self.shard_count} shards failed; no answer "
                "possible"
            )
        with tracer.span("gather", tables=len(tables)):
            suggestions, merged = merge_partial_tables(tables, k)
        stats = fold_cleaning_stats(
            [leg_stats for kind, _, leg_stats in legs
             if kind == "ok"],
            trace_id=tracer.trace_id,
        )
        stats.extra = dict(
            stats.extra or {},
            shards=self.shard_count,
            shards_omitted=omitted,
            merged_candidates=merged,
        )
        if omitted:
            stats.partial = True
        return suggestions, stats

    def _scatter_pooled(
        self, query: str, trace_ctx: dict | None, tracer
    ) -> list:
        """Fan one query to every shard's replicas; gather in order.

        Phase 1 dispatches one leg per shard so the shards overlap;
        phase 2 gathers each leg, walking that shard's failover ladder
        (next replica → in-process → omit) serially — failover is the
        cold path.
        """
        metrics = self.metrics_registry
        orders = [
            self._replica_order(sid)
            for sid in range(self.shard_count)
        ]
        primaries: list[tuple | None] = []
        for sid, order in enumerate(orders):
            primary = None
            for replica in list(order):
                if not replica.breaker.allow():
                    continue
                order.remove(replica)
                primary = self._dispatch(
                    replica, (query, trace_ctx, sid), metrics
                )
                break
            primaries.append(primary)
        return [
            self._gather_shard(
                sid, query, trace_ctx, orders[sid], primaries[sid],
                tracer,
            )
            for sid in range(self.shard_count)
        ]

    def _dispatch(
        self, replica: _Replica, task, metrics
    ) -> tuple | None:
        """Submit one leg; returns (replica, future, wall, perf)."""
        wall, perf = time.time(), perf_counter()
        try:
            future = replica.submit(task)
        except Exception:
            self._replica_failed(replica, "worker_failures")
            return None
        with self._lock:
            self.stats.shard_dispatches += 1
        if metrics.enabled:
            metrics.inc(
                "shard_dispatches_total",
                shard=str(replica.shard_id),
            )
        return replica, future, wall, perf

    def _replica_failed(self, replica: _Replica, counter: str) -> None:
        with self._lock:
            setattr(
                self.stats, counter,
                getattr(self.stats, counter) + 1,
            )
        if self.metrics_registry.enabled:
            self.metrics_registry.inc(f"{counter}_total")
        replica.breaker.record_failure()
        # One process per pool: a failed or hung worker poisons it, so
        # retire the pool and re-fork lazily on the next dispatch.
        replica.retire()

    def _gather_shard(
        self,
        sid: int,
        query: str,
        trace_ctx: dict | None,
        order: list,
        primary: tuple | None,
        tracer,
    ) -> tuple:
        """One shard's answer: replica ladder → in-process → omitted."""
        metrics = self.metrics_registry
        task = (query, trace_ctx, sid)
        attempts = 0
        pending = primary
        while True:
            if pending is None:
                replica = None
                while order:
                    head = order.pop(0)
                    if head.breaker.allow():
                        replica = head
                        break
                if replica is None:
                    break
                pending = self._dispatch(replica, task, metrics)
                if pending is None:
                    continue
            replica, future, wall, perf = pending
            pending = None
            attempts += 1
            try:
                answer = future.result(self.worker_timeout)
            except (TimeoutError, _FuturesTimeout):
                future.cancel()
                replica.done()
                self._replica_failed(replica, "worker_timeouts")
                continue
            except Exception:
                replica.done()
                self._replica_failed(replica, "worker_failures")
                continue
            replica.done()
            replica.breaker.record_success()
            if attempts > 1:
                with self._lock:
                    self.stats.replica_failovers += attempts - 1
                if metrics.enabled:
                    metrics.inc(
                        "replica_failovers_total", attempts - 1,
                        shard=str(sid),
                    )
            if answer is None:
                return ("unanswerable", None, None)
            rows, stats, extras = answer
            self._absorb_extras(
                sid, replica.replica_id, query, extras, wall, perf,
                tracer,
            )
            return ("ok", rows, stats)
        # Every replica refused or failed.
        if self.degrade_in_process:
            with self._lock:
                self.stats.degraded_queries += 1
            if metrics.enabled:
                metrics.inc("degraded_queries_total")
            try:
                return self._query_shard_local(sid, query, tracer)
            except StorageError as error:
                logger.warning(
                    "in-process fallback for shard %d failed: %s",
                    sid, error,
                )
        with self._lock:
            self.stats.shards_omitted += 1
        if metrics.enabled:
            metrics.inc("shards_omitted_total", shard=str(sid))
        logger.warning(
            "shard %d omitted from %r: every replica failed",
            sid, query,
        )
        return ("omitted", None, None)

    def _query_shard_local(
        self, sid: int, query: str, tracer
    ) -> tuple:
        """One shard leg computed in-process (serial mode / fallback).

        The local suggester shares :attr:`metrics_registry`, so its
        stage timers land in the global histograms directly; only the
        per-shard labeled totals are recorded from the deltas here
        (merging them back would double-count).
        """
        suggester = self._local_suggester(sid)
        metrics = self.metrics_registry
        with self._compute_lock:
            before = (
                metrics.stage_states() if metrics.enabled else {}
            )
            bound = tracer.enabled and tracer is self.tracer
            if bound:
                suggester.bind_tracer(tracer)
            try:
                with tracer.span("shard.local", shard=sid):
                    try:
                        rows, stats = suggester.partial_rows(query)
                    except QueryError:
                        return ("unanswerable", None, None)
            finally:
                if bound:
                    suggester.bind_tracer(None)
            if metrics.enabled:
                self._label_stage_deltas(
                    sid, metrics.stage_deltas(before)
                )
        return ("ok", rows, stats)

    def _local_suggester(self, sid: int) -> XCleanSuggester:
        with self._local_lock:
            suggester = self._local.get(sid)
            if suggester is None:
                from repro.index.snapshot import load_snapshot

                suggester = XCleanSuggester(
                    load_snapshot(
                        self._shard_paths[sid],
                        metrics=self.metrics_registry,
                    ),
                    config=self.config,
                    metrics=self.metrics_registry,
                )
                self._local[sid] = suggester
            return suggester

    def _label_stage_deltas(self, sid: int, deltas: dict) -> None:
        """Record per-shard stage totals under a labeled counter."""
        metrics = self.metrics_registry
        for stage, (_tallies, total, _count) in deltas.items():
            metrics.inc(
                "shard_stage_seconds_total", total,
                shard=str(sid), stage=stage,
            )

    def _absorb_extras(
        self,
        sid: int,
        replica_id: int,
        query: str,
        extras: dict | None,
        submitted_wall: float,
        submitted_perf: float,
        tracer,
    ) -> None:
        """Fold a replica worker's extras into the coordinator.

        Stage deltas merge into the global timers and re-record as
        per-shard labeled totals; a returned span subtree is stitched
        under a ``shard.task`` span covering submit → result, so the
        scatter legs appear as siblings in one trace tree.
        """
        if not extras:
            return
        stages = extras.get("stages")
        if stages:
            self.metrics_registry.merge_stage_deltas(stages)
            self._label_stage_deltas(sid, stages)
        worker_span = extras.get("span")
        if worker_span is not None and tracer.enabled:
            elapsed = perf_counter() - submitted_perf
            task_span = Span(
                "shard.task",
                start=submitted_wall,
                duration=max(elapsed, worker_span.duration),
                attributes={
                    "query": query,
                    "shard": sid,
                    "replica": replica_id,
                },
            )
            task_span.children.append(worker_span)
            tracer.attach(task_span)

    def _replica_order(self, sid: int) -> list:
        """Replica preference order for one leg, per routing policy."""
        row = self._pools[sid]
        if not row:
            return []
        if self.routing == "least-loaded":
            return sorted(
                row, key=lambda r: (r.inflight, r.replica_id)
            )
        with self._lock:
            start = self._rr[sid]
            self._rr[sid] = (start + 1) % len(row)
        return row[start:] + row[:start]

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def suggest_batch(
        self,
        queries: Sequence[str],
        k: int = 10,
        workers: int | None = None,
    ) -> list[list[Suggestion]]:
        """Answer every query; order and length match ``queries``.

        Unusable queries yield empty lists instead of raising.  With
        replica pools attached, unique cache misses are computed by
        ``workers`` coordinator threads (default ``replicas + 1``),
        each scattering to the shard pools — so distinct queries
        overlap on distinct replicas.

        Raises:
            Overloaded: when the whole batch does not fit under
                ``max_pending`` (all-or-nothing, before any work).
        """
        metrics = self.metrics_registry
        if metrics.enabled:
            metrics.inc("batches_total")
        tracer = self.tracer
        with self._traced_request(
            "batch", f"<batch of {len(queries)}>",
            queries=len(queries), shards=self.shard_count,
        ):
            self.admit(len(queries))
            try:
                if workers is None:
                    workers = self.workers
                if workers is None and self.replicas > 0:
                    workers = self.replicas + 1
                if (
                    workers is not None and workers > 1
                    and self.replicas > 0 and not self._closed
                ):
                    return self._suggest_batch_threaded(
                        queries, k, workers
                    )
                out: list[list[Suggestion]] = []
                for query in queries:
                    try:
                        if tracer.enabled:
                            with tracer.span("query", query=query):
                                answer, _ = (
                                    self._suggest_one_detailed(
                                        query, k
                                    )
                                )
                        else:
                            answer, _ = self._suggest_one_detailed(
                                query, k
                            )
                        out.append(answer)
                    except QueryError:
                        with self._lock:
                            self.stats.unanswerable += 1
                        self._note_unanswerable()
                        if metrics.enabled:
                            metrics.inc("unanswerable_total")
                        out.append([])
                return out
            finally:
                self.release(len(queries))

    def suggest_batch_detailed(
        self,
        queries: Sequence[str],
        k: int = 10,
        workers: int | None = None,
    ) -> list[tuple[list[Suggestion], CleaningStats]]:
        """:meth:`suggest_batch` plus one ``CleaningStats`` per query."""
        sink: list[CleaningStats] = []
        previous = self._stats_sink
        self._stats_sink = sink
        try:
            answers = self.suggest_batch(queries, k, workers)
        finally:
            self._stats_sink = previous
        if len(sink) != len(answers):  # pragma: no cover - invariant
            raise AssertionError(
                f"stats sink out of step: {len(sink)} stats for "
                f"{len(answers)} answers"
            )
        return list(zip(answers, sink))

    def _suggest_batch_threaded(
        self, queries: Sequence[str], k: int, workers: int
    ) -> list[list[Suggestion]]:
        """Unique cache misses on coordinator threads, then serve.

        Accounting mirrors ``SuggestionService._suggest_batch_parallel``:
        computation happens first (untraced — the live tracer is not
        thread-safe), then every occurrence is served through the
        cache under the lock on the calling thread, keeping the
        per-query ``last_stats``/sink contract single-threaded.
        """
        metrics = self.metrics_registry
        keys = [self._cache_key(query, k) for query in queries]
        cache = self._result_cache
        # Unique cache misses, first-occurrence order.  Keys with no
        # usable tokens are unanswerable by construction and never
        # reach a scatter.
        pending: dict[_CacheKey, str] = {}
        with self._lock:
            for key, query in zip(keys, queries):
                if (
                    key not in cache and key not in pending
                    and key[1]
                ):
                    pending[key] = query
        fresh: dict[
            _CacheKey,
            tuple[tuple[Suggestion, ...], CleaningStats],
        ] = {}
        if pending:
            width = min(workers, len(pending))

            def compute(item):
                key, query = item
                try:
                    return key, self._compute(
                        query, k, traced=False
                    )
                except QueryError:
                    return key, None
                except StorageError:
                    return key, None

            with ThreadPoolExecutor(max_workers=width) as executor:
                for key, answer in executor.map(
                    compute, list(pending.items())
                ):
                    if answer is None:
                        continue
                    suggestions, stats = answer
                    fresh[key] = (tuple(suggestions), stats)
                    if not stats.partial:
                        self._cache_put(key, fresh[key][0])
        out: list[list[Suggestion]] = []
        with self._lock:
            computed = {key for key in fresh if key in cache}
            for key in keys:
                self.stats.queries_served += 1
                if metrics.enabled:
                    metrics.inc("queries_total")
                cached = cache.get(key)
                if cached is not None:
                    cache.move_to_end(key)
                    if key in computed:
                        # First service of a freshly computed answer
                        # is a miss; later duplicates hit the cache.
                        computed.discard(key)
                        self.stats.result_cache_misses += 1
                        stats = fresh[key][1]
                        stats.result_cache_misses += 1
                        self._note_stats(stats)
                        if metrics.enabled:
                            metrics.inc("result_cache_misses_total")
                    else:
                        self.stats.result_cache_hits += 1
                        self._note_stats(CleaningStats(
                            result_cache_hits=1,
                            trace_id=self.tracer.trace_id,
                        ))
                        if metrics.enabled:
                            metrics.inc("result_cache_hits_total")
                    out.append(list(cached))
                    continue
                entry = fresh.get(key)
                if entry is not None:
                    # Partial (shard-omitted) answer: served on every
                    # occurrence as an uncached miss so a retry can
                    # still get (and cache) the exact top-k.
                    suggestions, stats = entry
                    self.stats.result_cache_misses += 1
                    self.stats.partial_results += 1
                    self._note_stats(stats)
                    if metrics.enabled:
                        metrics.inc("result_cache_misses_total")
                        metrics.inc("partial_results_total")
                    out.append(list(suggestions))
                    continue
                # Empty token tuple or a failed/unanswerable scatter:
                # unanswerable, never cached.
                self.stats.unanswerable += 1
                self._note_unanswerable()
                if metrics.enabled:
                    metrics.inc("unanswerable_total")
                out.append([])
        return out
