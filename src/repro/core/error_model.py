"""Error models: P(q|w), the likelihood of typing q when w was intended.

Section IV-B1 of the paper.  Two models are provided behind a common
interface so the framework stays pluggable (the paper stresses it can
"accommodate different error models"):

* :class:`ExponentialErrorModel` — the paper's model (Eq. 4/5):
  ``P(q|w) ∝ exp(-β · ed(q, w))``, normalized over the variant set.
  β is the error penalty; the paper finds β = 5 best and uses it for all
  reported results.

* :class:`MaysErrorModel` — the classic single-error model of Mays et
  al. (Eq. 3): probability α for q = w, with the remaining mass split
  equally among the other variants.

Normalizing over var_ε(q) (i.e. computing P(w|q) rather than P(q|w)) is
deliberate: per keyword, the normalizer z is a constant shared by every
candidate query, so the top-k ranking of Definition 1 is unchanged,
while scores stay interpretable as probabilities.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

from repro.exceptions import ConfigurationError
from repro.fastss.index import Variant

#: β value the paper found best on almost every query set (Table IV).
DEFAULT_BETA = 5.0


class ErrorModel(Protocol):
    """Maps a keyword's variant set to per-variant error probabilities."""

    def variant_weights(
        self, keyword: str, variants: Sequence[Variant]
    ) -> dict[str, float]:
        """Probability weight of each variant token for this keyword.

        Weights are normalized over ``variants``; an empty dict is
        returned for an empty variant set.
        """
        ...  # pragma: no cover - protocol


class ExponentialErrorModel:
    """The paper's exponential edit-distance penalty (Eq. 4/5)."""

    def __init__(self, beta: float = DEFAULT_BETA):
        if beta < 0:
            raise ConfigurationError("beta must be >= 0")
        self.beta = beta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ExponentialErrorModel(beta={self.beta})"

    def variant_weights(
        self, keyword: str, variants: Sequence[Variant]
    ) -> dict[str, float]:
        if not variants:
            return {}
        raw = {
            v.token: math.exp(-self.beta * v.distance) for v in variants
        }
        z = sum(raw.values())
        return {token: weight / z for token, weight in raw.items()}


class MaysErrorModel:
    """The α-model of Mays et al. [8] (Eq. 3), generalized to ε >= 1.

    If the keyword itself is among the variants it receives probability
    α; the remaining mass (or all of it, for an out-of-vocabulary
    keyword) is distributed uniformly over the other variants.
    """

    def __init__(self, alpha: float = 0.9):
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError("alpha must be in (0, 1)")
        self.alpha = alpha

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MaysErrorModel(alpha={self.alpha})"

    def variant_weights(
        self, keyword: str, variants: Sequence[Variant]
    ) -> dict[str, float]:
        if not variants:
            return {}
        others = [v.token for v in variants if v.token != keyword]
        has_self = len(others) != len(variants)
        weights: dict[str, float] = {}
        if has_self:
            if others:
                weights[keyword] = self.alpha
                share = (1.0 - self.alpha) / len(others)
            else:
                weights[keyword] = 1.0
                share = 0.0
        else:
            share = 1.0 / len(others)
        for token in others:
            weights[token] = share
        return weights


def query_error_weight(
    per_keyword_weights: Sequence[dict[str, float]],
    candidate: Sequence[str],
) -> float:
    """P(Q|C) = ∏_j P(q_j | C[j]) under the independence assumption (Eq. 5).

    ``per_keyword_weights[j]`` must contain ``candidate[j]``; a missing
    entry means the candidate uses a token outside var_ε(q_j), which is
    a caller bug — we surface it as KeyError rather than guessing 0.
    """
    weight = 1.0
    for j, token in enumerate(candidate):
        weight *= per_keyword_weights[j][token]
    return weight
