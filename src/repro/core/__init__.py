"""XClean core: the paper's probabilistic query-cleaning framework.

Exposes the scoring model (error model, language model, result-type
inference), the candidate space, the naive oracle, Algorithm 1
(:class:`XCleanSuggester`), the SLCA-semantics variant, and the
space-error extension.
"""

from repro.core.candidates import (
    CandidateQuery,
    CandidateSpace,
    KeywordVariants,
)
from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.error_model import (
    DEFAULT_BETA,
    ErrorModel,
    ExponentialErrorModel,
    MaysErrorModel,
    query_error_weight,
)
from repro.core.language_model import DEFAULT_MU, DirichletLanguageModel
from repro.core.naive import NaiveCleaner
from repro.core.pruning import Accumulator, AccumulatorPool
from repro.core.search import EntitySearch, SearchResult
from repro.core.result_type import (
    DEFAULT_MIN_DEPTH,
    DEFAULT_REDUCTION,
    ResultTypeConfig,
    ResultTypeFinder,
)
from repro.core.slca_cleaner import (
    ELCACleanSuggester,
    SLCACleanSuggester,
)
from repro.core.space_errors import (
    SpaceAwareSuggester,
    SpaceVariant,
    expand_with_space_edits,
)
from repro.core.suggestion import CleaningStats, Suggester, Suggestion

__all__ = [
    "Accumulator",
    "AccumulatorPool",
    "CandidateQuery",
    "CandidateSpace",
    "CleaningStats",
    "DEFAULT_BETA",
    "DEFAULT_MIN_DEPTH",
    "DEFAULT_MU",
    "DEFAULT_REDUCTION",
    "DirichletLanguageModel",
    "ELCACleanSuggester",
    "EntitySearch",
    "ErrorModel",
    "ExponentialErrorModel",
    "KeywordVariants",
    "MaysErrorModel",
    "NaiveCleaner",
    "ResultTypeConfig",
    "ResultTypeFinder",
    "SearchResult",
    "SLCACleanSuggester",
    "SpaceAwareSuggester",
    "SpaceVariant",
    "Suggester",
    "Suggestion",
    "XCleanConfig",
    "XCleanSuggester",
    "expand_with_space_edits",
    "query_error_weight",
]
