"""Configuration shared by the XClean-family suggesters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.error_model import DEFAULT_BETA
from repro.core.language_model import DEFAULT_MU
from repro.core.result_type import (
    DEFAULT_MIN_DEPTH,
    DEFAULT_REDUCTION,
    DEFAULT_TYPE_CACHE_SIZE,
)
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class XCleanConfig:
    """All tunables of the XClean framework in one value object.

    Attributes:
        max_errors: ε — edit-distance radius of var_ε(q) (Section IV-A).
        beta: β — error penalty of the exponential model (Eq. 5);
            the paper's best setting is 5 (Table IV).
        mu: μ — Dirichlet smoothing parameter (Eq. 6).
        reduction: r — depth reduction factor of Eq. 7.
        min_depth: d — minimal depth threshold (Section V-B).
        gamma: γ — in-memory accumulator budget (Section V-D);
            ``None`` disables pruning.
        use_skipping: enable skip_to in Algorithm 1; disabling it reads
            every posting linearly (ablation: same output, more I/O).
        prior: the entity prior P(r_j|T) of Eq. 8 — ``"uniform"``
            (the paper's 1/N) or ``"length"`` (∝ |D(r)|: longer
            entities are a priori likelier targets; the generalization
            the paper notes is "easily" available).
        engine: the Algorithm 1 substrate — ``"packed"`` runs over
            columnar posting lists keyed by packed-int Dewey codes
            (the fast path), ``"tuple"`` over the original tuple-based
            lists (the reference path; kept for equivalence testing
            and ablation).  Both produce identical suggestions.
        type_cache_size: LRU bound of the per-candidate result-type
            cache (``ResultTypeFinder``); ``None`` removes the bound.
    """

    max_errors: int = 2
    beta: float = DEFAULT_BETA
    mu: float = DEFAULT_MU
    reduction: float = DEFAULT_REDUCTION
    min_depth: int = DEFAULT_MIN_DEPTH
    gamma: int | None = 1000
    use_skipping: bool = True
    prior: str = "uniform"
    engine: str = "packed"
    #: Run the packed engine through the batch merge kernel (galloping
    #: intersection + generation-keyed plan cache, ``index/
    #: merge_kernel``).  ``False`` keeps the classic per-group bisect
    #: loop — the reference for the kernel's byte-identical-output
    #: guarantee and the baseline of ``bench_hotpath``'s merge-stage
    #: floor.  Only effective with ``engine="packed"`` and
    #: ``use_skipping=True``.
    merge_kernel: bool = True
    #: In-loop γ-pruning: candidates whose score upper bound falls
    #: strictly below the saturated accumulator table's floor are never
    #: materialized or scored (provably the same table the pool would
    #: have produced, so top-k and scores are unchanged).  Effective
    #: only on the kernel path, with finite ``gamma``, under the
    #: uniform prior.
    kernel_pruning: bool = True
    #: LRU bound of the corpus's merged-columns memo (physically merged
    #: per-variant-set posting columns); ``None`` removes the bound.
    merged_cache_size: int | None = 256
    #: LRU bound of the corpus's intersection (merge-plan) cache;
    #: ``None`` disables plan caching entirely.  Must cover the query
    #: log's working set of distinct variant-set combinations — a
    #: sequentially scanned LRU smaller than the working set hits 0%.
    intersection_cache_size: int | None = 256
    #: LRU bound of the per-candidate result-type cache; ``None``
    #: disables the bound (offline workloads only — a long-lived
    #: service must keep it finite).
    type_cache_size: int | None = DEFAULT_TYPE_CACHE_SIZE
    #: Per-query wall-clock budget (seconds) for the merge/score loop;
    #: on expiry the engine returns the best-so-far top-k with
    #: ``CleaningStats.partial = True`` instead of raising.  ``None``
    #: (the default) disables the checks entirely, leaving the loops
    #: byte-identical to their pre-deadline behavior.
    deadline_seconds: float | None = None
    #: Fault-injection plan spec (``repro.obs.faults`` grammar), or
    #: ``None`` for no injection.  Carried in the config so a plan
    #: crosses process boundaries: pool worker initializers install it
    #: before building their suggester.
    fault_plan: str | None = None
    #: Seed for the fault plan's deterministic choices (corrupt-byte
    #: offsets); ignored when ``fault_plan`` is ``None``.
    fault_seed: int = 0
    #: Override for the latency-histogram bucket bounds (seconds,
    #: strictly increasing).  ``None`` uses
    #: ``repro.obs.DEFAULT_LATENCY_BUCKETS``.  Carried in the config so
    #: pool workers build their registries with the same layout as the
    #: parent — a requirement for exact cross-process histogram merging.
    latency_buckets: tuple[float, ...] | None = None

    def __post_init__(self):
        if self.max_errors < 0:
            raise ConfigurationError("max_errors must be >= 0")
        if self.gamma is not None and self.gamma < 1:
            raise ConfigurationError("gamma must be >= 1 or None")
        if self.type_cache_size is not None and self.type_cache_size < 1:
            raise ConfigurationError(
                "type_cache_size must be >= 1 or None"
            )
        if self.min_depth < 1:
            raise ConfigurationError("min_depth must be >= 1")
        if self.merged_cache_size is not None and self.merged_cache_size < 1:
            raise ConfigurationError(
                "merged_cache_size must be >= 1 or None"
            )
        if (
            self.intersection_cache_size is not None
            and self.intersection_cache_size < 1
        ):
            raise ConfigurationError(
                "intersection_cache_size must be >= 1 or None"
            )
        if self.prior not in ("uniform", "length"):
            raise ConfigurationError(f"unknown prior {self.prior!r}")
        if self.engine not in ("packed", "tuple"):
            raise ConfigurationError(f"unknown engine {self.engine!r}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                "deadline_seconds must be > 0 or None"
            )
        if self.latency_buckets is not None:
            bounds = tuple(self.latency_buckets)
            if not bounds:
                raise ConfigurationError(
                    "latency_buckets must be non-empty or None"
                )
            if any(bound <= 0 for bound in bounds):
                raise ConfigurationError(
                    "latency_buckets bounds must be > 0"
                )
            if any(
                later <= earlier
                for earlier, later in zip(bounds, bounds[1:])
            ):
                raise ConfigurationError(
                    "latency_buckets must be strictly increasing"
                )
            # Frozen dataclass: normalize lists to a hashable tuple.
            object.__setattr__(self, "latency_buckets", bounds)
        if self.fault_plan is not None:
            # Parse for validation only; installation is the caller's
            # (service / worker initializer) responsibility.
            from repro.obs.faults import FaultPlan

            FaultPlan.parse(self.fault_plan, seed=self.fault_seed)
