"""Configuration shared by the XClean-family suggesters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.error_model import DEFAULT_BETA
from repro.core.language_model import DEFAULT_MU
from repro.core.result_type import (
    DEFAULT_MIN_DEPTH,
    DEFAULT_REDUCTION,
    DEFAULT_TYPE_CACHE_SIZE,
)
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class XCleanConfig:
    """All tunables of the XClean framework in one value object.

    Attributes:
        max_errors: ε — edit-distance radius of var_ε(q) (Section IV-A).
        beta: β — error penalty of the exponential model (Eq. 5);
            the paper's best setting is 5 (Table IV).
        mu: μ — Dirichlet smoothing parameter (Eq. 6).
        reduction: r — depth reduction factor of Eq. 7.
        min_depth: d — minimal depth threshold (Section V-B).
        gamma: γ — in-memory accumulator budget (Section V-D);
            ``None`` disables pruning.
        use_skipping: enable skip_to in Algorithm 1; disabling it reads
            every posting linearly (ablation: same output, more I/O).
        prior: the entity prior P(r_j|T) of Eq. 8 — ``"uniform"``
            (the paper's 1/N) or ``"length"`` (∝ |D(r)|: longer
            entities are a priori likelier targets; the generalization
            the paper notes is "easily" available).
        engine: the Algorithm 1 substrate — ``"packed"`` runs over
            columnar posting lists keyed by packed-int Dewey codes
            (the fast path), ``"tuple"`` over the original tuple-based
            lists (the reference path; kept for equivalence testing
            and ablation).  Both produce identical suggestions.
        type_cache_size: LRU bound of the per-candidate result-type
            cache (``ResultTypeFinder``); ``None`` removes the bound.
    """

    max_errors: int = 2
    beta: float = DEFAULT_BETA
    mu: float = DEFAULT_MU
    reduction: float = DEFAULT_REDUCTION
    min_depth: int = DEFAULT_MIN_DEPTH
    gamma: int | None = 1000
    use_skipping: bool = True
    prior: str = "uniform"
    engine: str = "packed"
    #: LRU bound of the per-candidate result-type cache; ``None``
    #: disables the bound (offline workloads only — a long-lived
    #: service must keep it finite).
    type_cache_size: int | None = DEFAULT_TYPE_CACHE_SIZE

    def __post_init__(self):
        if self.max_errors < 0:
            raise ConfigurationError("max_errors must be >= 0")
        if self.gamma is not None and self.gamma < 1:
            raise ConfigurationError("gamma must be >= 1 or None")
        if self.type_cache_size is not None and self.type_cache_size < 1:
            raise ConfigurationError(
                "type_cache_size must be >= 1 or None"
            )
        if self.min_depth < 1:
            raise ConfigurationError("min_depth must be >= 1")
        if self.prior not in ("uniform", "length"):
            raise ConfigurationError(f"unknown prior {self.prior!r}")
        if self.engine not in ("packed", "tuple"):
            raise ConfigurationError(f"unknown engine {self.engine!r}")
