"""The naive enumerate-and-score cleaner (Section V's strawman).

Scores every candidate query in the full Cartesian space by scanning
each variant's complete inverted list, with no grouping, skipping, or
pruning.  It implements the *model* of Section IV directly, which makes
it the correctness oracle: Algorithm 1 with unlimited accumulators must
reproduce these scores exactly (up to float associativity), and the
efficiency benchmarks use it to show what the paper's optimizations buy.
"""

from __future__ import annotations

from repro.core.candidates import CandidateQuery, CandidateSpace
from repro.core.config import XCleanConfig
from repro.core.error_model import ErrorModel, ExponentialErrorModel
from repro.core.language_model import DirichletLanguageModel
from repro.core.result_type import ResultTypeConfig, ResultTypeFinder
from repro.core.suggestion import CleaningStats, Suggestion
from repro.exceptions import QueryError
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import CorpusIndex
from repro.xmltree.dewey import DeweyCode


class NaiveCleaner:
    """Reference implementation of the XClean scoring model."""

    def __init__(
        self,
        corpus: CorpusIndex,
        generator: VariantGenerator | None = None,
        error_model: ErrorModel | None = None,
        config: XCleanConfig | None = None,
    ):
        self.corpus = corpus
        self.config = config or XCleanConfig()
        self.generator = generator or VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=self.config.max_errors
        )
        self.error_model = error_model or ExponentialErrorModel(
            self.config.beta
        )
        self.language_model = DirichletLanguageModel(
            corpus.vocabulary, self.config.mu
        )
        self.type_finder = ResultTypeFinder(
            corpus,
            ResultTypeConfig(
                reduction=self.config.reduction,
                min_depth=self.config.min_depth,
            ),
        )
        self.last_stats = CleaningStats()

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Top-k suggestions by exhaustive evaluation."""
        scores = self.score_all(query)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        table = self.corpus.path_table
        return [
            Suggestion(
                tokens=candidate,
                score=score,
                result_type=table.string_of(
                    self.type_finder.find(candidate)  # type: ignore[arg-type]
                ),
            )
            for candidate, score in ranked[:k]
        ]

    def score_all(self, query: str) -> dict[CandidateQuery, float]:
        """P(C|Q,T) (up to κ) for every candidate with non-empty results."""
        keywords = self.corpus.tokenizer.tokenize(query)
        if not keywords:
            raise QueryError(f"query {query!r} has no usable keywords")
        space = CandidateSpace(
            keywords, self.generator, self.error_model,
            self.config.max_errors,
        )
        stats = CleaningStats(
            keywords=len(keywords), space_size=space.space_size()
        )
        self.last_stats = stats
        if not space.is_viable:
            return {}
        scores: dict[CandidateQuery, float] = {}
        for candidate in space.enumerate_all():
            stats.candidates_evaluated += 1
            score = self._score_candidate(candidate, space, stats)
            if score is not None:
                scores[candidate] = score
        return scores

    def _score_candidate(
        self,
        candidate: CandidateQuery,
        space: CandidateSpace,
        stats: CleaningStats,
    ) -> float | None:
        """Eq. 10 for one candidate; None when it has no valid entity."""
        pid = self.type_finder.find(candidate)
        if pid is None:
            return None
        depth = self.corpus.path_table.depth_of(pid)
        length_prior = self.config.prior == "length"
        if length_prior:
            normalizer = self.corpus.path_token_totals().get(pid, 0.0)
        else:
            normalizer = float(self.corpus.entity_count(pid))
        per_keyword = [
            self._entity_counts(token, pid, depth, stats)
            for token in candidate
        ]
        if any(not counts for counts in per_keyword):
            return None
        entities = set(min(per_keyword, key=len))
        for counts in per_keyword:
            entities &= counts.keys()
        if not entities or not normalizer:
            return None
        mass = 0.0
        for root in entities:
            stats.entities_scored += 1
            length = self.corpus.subtree_length(root)
            product = 1.0
            for position, token in enumerate(candidate):
                product *= self.language_model.probability(
                    token, per_keyword[position][root], length
                )
            mass += (length if length_prior else 1.0) * product
        return space.error_weight(candidate) * mass / normalizer

    def _entity_counts(
        self, token: str, pid: int, depth: int, stats: CleaningStats
    ) -> dict[DeweyCode, int]:
        """count(w, D(r)) per entity root r of type pid, from postings."""
        table = self.corpus.path_table
        counts: dict[DeweyCode, int] = {}
        for dewey, path_id, tf in self.corpus.inverted.list_for(token):
            stats.postings_read += 1
            if len(dewey) < depth:
                continue
            if table.prefix_id(path_id, depth) != pid:
                continue
            root = dewey[:depth]
            counts[root] = counts.get(root, 0) + tf
        return counts
