"""Space insertion/deletion errors (Section VI-A).

A second class of typographical errors changes the *number* of keywords:
"power point" for "powerpoint" (extra space) or "datamining" for "data
mining" (missing space).  The paper's extension: enumerate all keyword
sequences reachable with at most τ space changes, keep only those whose
new tokens are in the vocabulary, and expand the candidate space with
them.

:func:`expand_with_space_edits` produces the alternative keyword
sequences with their change counts;
:class:`SpaceAwareSuggester` wraps any base suggester, runs it on every
valid sequence, down-weights by ``exp(-β · changes)`` (treating a space
change like one edit in the paper's exponential error model), and
merges the ranked lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.error_model import DEFAULT_BETA
from repro.core.suggestion import Suggestion
from repro.exceptions import QueryError
from repro.index.vocabulary import Vocabulary


@dataclass(frozen=True)
class SpaceVariant:
    """One alternative keyword sequence with its space-change count."""

    keywords: tuple[str, ...]
    changes: int


def expand_with_space_edits(
    keywords: Sequence[str],
    vocabulary: Vocabulary,
    max_changes: int = 1,
) -> list[SpaceVariant]:
    """All keyword sequences within ``max_changes`` space edits.

    Space *deletion* merges two adjacent keywords; space *insertion*
    splits one keyword in two.  New tokens must be vocabulary members —
    invalid results are discarded, which keeps the expansion small in
    practice (Section VI-A).  The original sequence is always included
    with ``changes=0``; results are deduplicated keeping the smallest
    change count and ordered by (changes, keywords).
    """
    if max_changes < 0:
        raise QueryError("max_changes must be >= 0")
    best: dict[tuple[str, ...], int] = {tuple(keywords): 0}
    frontier = [tuple(keywords)]
    for round_number in range(1, max_changes + 1):
        next_frontier: list[tuple[str, ...]] = []
        for sequence in frontier:
            for variant in _one_space_edit(sequence, vocabulary):
                known = best.get(variant)
                if known is None or known > round_number:
                    best[variant] = round_number
                    next_frontier.append(variant)
        if not next_frontier:
            break
        frontier = next_frontier
    variants = [
        SpaceVariant(keywords=seq, changes=count)
        for seq, count in best.items()
    ]
    variants.sort(key=lambda v: (v.changes, v.keywords))
    return variants


def _one_space_edit(
    sequence: tuple[str, ...], vocabulary: Vocabulary
) -> list[tuple[str, ...]]:
    """Sequences one valid space change away from ``sequence``."""
    results: list[tuple[str, ...]] = []
    # Space deletion: merge adjacent keywords.
    for i in range(len(sequence) - 1):
        merged = sequence[i] + sequence[i + 1]
        if merged in vocabulary:
            results.append(sequence[:i] + (merged,) + sequence[i + 2 :])
    # Space insertion: split one keyword into two vocabulary tokens.
    for i, keyword in enumerate(sequence):
        for cut in range(1, len(keyword)):
            left, right = keyword[:cut], keyword[cut:]
            if left in vocabulary and right in vocabulary:
                results.append(
                    sequence[:i] + (left, right) + sequence[i + 1 :]
                )
    return results


class SpaceAwareSuggester:
    """Wraps a suggester with space-error expansion.

    The wrapped suggester must expose ``suggest(query, k)`` and a
    ``corpus`` attribute (for tokenizer and vocabulary access) — both
    :class:`~repro.core.cleaner.XCleanSuggester` and
    :class:`~repro.core.naive.NaiveCleaner` qualify.
    """

    def __init__(
        self,
        base,
        max_changes: int = 1,
        beta: float = DEFAULT_BETA,
    ):
        self.base = base
        self.max_changes = max_changes
        self.beta = beta

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Top-k suggestions over the space-expanded candidate space."""
        corpus = self.base.corpus
        keywords = corpus.tokenizer.tokenize(query)
        if not keywords:
            raise QueryError(f"query {query!r} has no usable keywords")
        variants = expand_with_space_edits(
            keywords, corpus.vocabulary, self.max_changes
        )
        merged: dict[tuple[str, ...], Suggestion] = {}
        for variant in variants:
            penalty = math.exp(-self.beta * variant.changes)
            for suggestion in self.base.suggest(
                " ".join(variant.keywords), k
            ):
                score = suggestion.score * penalty
                existing = merged.get(suggestion.tokens)
                if existing is None or existing.score < score:
                    merged[suggestion.tokens] = Suggestion(
                        tokens=suggestion.tokens,
                        score=score,
                        result_type=suggestion.result_type,
                    )
        ranked = sorted(
            merged.values(), key=lambda s: (-s.score, s.tokens)
        )
        return ranked[:k]
