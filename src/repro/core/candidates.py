"""The candidate query space (Section IV-A).

Candidate queries are elements of the Cartesian product
``var_ε(q_1) × … × var_ε(q_l)``.  :class:`CandidateSpace` holds the
per-keyword variant lists with their error-model weights and provides
the restricted enumeration Algorithm 1 performs inside each subtree
group (only variants actually occurring in the subtree participate).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.error_model import ErrorModel
from repro.fastss.generator import VariantGenerator
from repro.fastss.index import Variant

#: A candidate query: one variant token per query keyword position.
CandidateQuery = tuple[str, ...]


@dataclass(frozen=True)
class KeywordVariants:
    """var_ε(q_i) with the error-model weights of each variant."""

    keyword: str
    variants: tuple[Variant, ...]
    weights: dict[str, float]

    @property
    def tokens(self) -> tuple[str, ...]:
        return tuple(v.token for v in self.variants)

    def weight_of(self, token: str) -> float:
        return self.weights[token]


class CandidateSpace:
    """Variant lists, error weights, and enumeration for one query."""

    def __init__(
        self,
        keywords: Sequence[str],
        generator: VariantGenerator,
        error_model: ErrorModel,
        max_errors: int | None = None,
        tracer=None,
    ):
        self.keywords = tuple(keywords)
        self.per_keyword: list[KeywordVariants] = []
        for keyword in self.keywords:
            if tracer is None:
                variants = generator.variants(keyword, max_errors)
            else:
                with tracer.span("variant", keyword=keyword):
                    variants = generator.variants(keyword, max_errors)
                    tracer.annotate(variants=len(variants))
            weights = error_model.variant_weights(keyword, variants)
            self.per_keyword.append(
                KeywordVariants(keyword, tuple(variants), weights)
            )

    def __len__(self) -> int:
        return len(self.per_keyword)

    @property
    def is_viable(self) -> bool:
        """True when every keyword has at least one variant.

        A keyword with an empty variant set admits no candidate query at
        all (Section IV-A's Cartesian product is empty).
        """
        return all(kv.variants for kv in self.per_keyword)

    def space_size(self) -> int:
        """|C| = ∏ |var_ε(q_i)| — the full candidate space size."""
        size = 1
        for kv in self.per_keyword:
            size *= len(kv.variants)
        return size

    def variant_tokens(self, position: int) -> tuple[str, ...]:
        """Variant tokens of keyword ``position``."""
        return self.per_keyword[position].tokens

    def error_weight(self, candidate: CandidateQuery) -> float:
        """P(Q|C) = ∏_j P(q_j|C[j]) for a full candidate."""
        weight = 1.0
        for position, token in enumerate(candidate):
            weight *= self.per_keyword[position].weights[token]
        return weight

    def enumerate_all(self) -> Iterator[CandidateQuery]:
        """The full Cartesian product (used by the naive oracle)."""
        return itertools.product(
            *(kv.tokens for kv in self.per_keyword)
        )

    def enumerate_present(
        self, present: Sequence[Iterable[str]]
    ) -> Iterator[CandidateQuery]:
        """Candidates formed only from variants present in a subtree.

        ``present[i]`` is the set of variants of keyword i observed in
        the current group (Algorithm 1, Line 12).  Tokens are ordered
        deterministically regardless of the input container.
        """
        pools = []
        for position, tokens in enumerate(present):
            allowed = set(tokens)
            pool = [
                t
                for t in self.per_keyword[position].tokens
                if t in allowed
            ]
            if not pool:
                return iter(())
            pools.append(pool)
        return itertools.product(*pools)
