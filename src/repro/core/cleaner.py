"""The XClean algorithm — Algorithm 1 of the paper.

A single pass over the merged variant lists computes the scores of all
candidate queries simultaneously:

1. *Anchor selection* (Lines 4, 5, 16): the anchor is the largest
   current head across the per-keyword MergedLists; its Dewey code
   truncated to the minimal depth d identifies the subtree group g to
   process next.  The loop terminates as soon as any MergedList is
   exhausted — a candidate query needs a variant occurrence for every
   keyword, so no later group can contribute.

2. *Skipping* (Lines 7–8): every MergedList skips to g, jumping over
   whole subtrees that cannot contain a full candidate match.

3. *Group collection* (Lines 9–11): all variant occurrences inside g
   are drained into per-keyword hash tables.

4. *Candidate enumeration and scoring* (Lines 12–15): candidates are
   formed only from variants observed in g; each candidate's result
   type is resolved once (cached FindResultType); entity roots of that
   type containing every keyword are scored with the Dirichlet language
   model and accumulated in the (optionally γ-bounded) score table.

The final score of a candidate is Eq. 10:

    P(C|Q,T) ∝ P(Q|C) · (1/N_C) · Σ_{r of type p_C} ∏_{w ∈ C} p(w|D(r))

restricted to entities containing at least one instance of every
keyword (Line 14) — which is what guarantees suggested queries have
non-empty results.
"""

from __future__ import annotations

import logging
from bisect import bisect_left
from time import perf_counter

from repro.core.candidates import CandidateQuery, CandidateSpace
from repro.core.config import XCleanConfig
from repro.core.deadline import Deadline
from repro.core.error_model import ErrorModel, ExponentialErrorModel
from repro.core.language_model import DirichletLanguageModel
from repro.core.pruning import AccumulatorPool
from repro.core.result_type import ResultTypeConfig, ResultTypeFinder
from repro.core.suggestion import CleaningStats, Suggestion
from repro.exceptions import QueryError
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import CorpusIndex
from repro.index.merge_kernel import GroupRun, MergePlan, gallop_left
from repro.index.merged_list import (
    MergedEntry,
    MergedList,
    PackedEntry,
    PackedMergedList,
)
from repro.obs.explain import (
    EntityContribution,
    GroupContribution,
    PruningObserver,
    ScoreRecorder,
    TermFactor,
    build_explanation,
)
from repro.obs.faults import active as _active_faults
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_TRACER, Span
from repro.xmltree.dewey import DeweyCode, format_code


logger = logging.getLogger(__name__)


class XCleanSuggester:
    """Top-k XML keyword query cleaning via Algorithm 1."""

    def __init__(
        self,
        corpus: CorpusIndex,
        generator: VariantGenerator | None = None,
        error_model: ErrorModel | None = None,
        config: XCleanConfig | None = None,
        metrics=None,
        tracer=None,
    ):
        self.corpus = corpus
        self.config = config or XCleanConfig()
        if hasattr(corpus, "configure_query_caches"):
            # Apply the config's cache bounds to the shared corpus
            # caches (idempotent: same bounds touch nothing, so many
            # suggesters over one corpus keep each other's warm state).
            corpus.configure_query_caches(
                merged_cache_size=self.config.merged_cache_size,
                intersection_cache_size=(
                    self.config.intersection_cache_size
                ),
            )
        if generator is None:
            # Snapshot-backed corpora serve FastSS buckets straight
            # from the mapped file; building a fresh index would read
            # the whole vocabulary for nothing.
            corpus_generator = getattr(corpus, "variant_generator", None)
            if corpus_generator is not None:
                generator = corpus_generator(self.config.max_errors)
            else:
                generator = VariantGenerator(
                    corpus.vocabulary.tokens(),
                    max_errors=self.config.max_errors,
                )
        self.generator = generator
        self.error_model = error_model or ExponentialErrorModel(
            self.config.beta
        )
        self.language_model = DirichletLanguageModel(
            corpus.vocabulary, self.config.mu
        )
        #: Observability hooks; NULL_METRICS (no-op, near-zero cost)
        #: unless a serving layer hands in a live registry.
        self.metrics = metrics or NULL_METRICS
        #: Per-query span tracer; NULL_TRACER (no-op) by default.
        self.tracer = tracer or NULL_TRACER
        #: Score-provenance recorder, attached only for the duration
        #: of a ``suggest_explained`` call; the hot path pays one
        #: ``is None`` check per scored candidate.
        self._recorder: ScoreRecorder | None = None
        #: Scoring time of the current query, summed over the many
        #: per-group scoring calls and observed once per query.
        self._score_seconds = 0.0
        #: Wall-clock budget of the query in flight (``core/deadline``);
        #: ``None`` unless ``config.deadline_seconds`` is set, in which
        #: case ``_run`` arms a fresh one per query.
        self._deadline: Deadline | None = None
        self.type_finder = ResultTypeFinder(
            corpus,
            ResultTypeConfig(
                reduction=self.config.reduction,
                min_depth=self.config.min_depth,
                cache_size=self.config.type_cache_size,
            ),
            metrics=self.metrics,
        )
        self.type_finder.tracer = self.tracer
        self.last_stats = CleaningStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Top-k alternative queries for ``query``, best first.

        Raises:
            QueryError: when the query has no usable keywords after
                tokenization.
        """
        pool = self._run(query)
        table = self.corpus.path_table
        return [
            Suggestion(
                tokens=candidate,
                score=score,
                result_type=table.string_of(entry.result_type),
            )
            for candidate, score, entry in pool.top_k(k)
        ]

    def score_all(self, query: str) -> dict[CandidateQuery, float]:
        """Scores of all surviving candidates (oracle-equivalence tests)."""
        return self._run(query).final_scores()

    def partial_rows(self, query: str):
        """The full γ-bounded accumulator table, serialized for gather.

        Runs the same Algorithm 1 pass as :meth:`suggest` but returns
        every surviving accumulator as a picklable row

            ``(candidate, partials, error_weight, normalizer,
               result_type, samples)``

        where ``partials`` is the accumulator's exact-summation
        expansion (see ``core/pruning.add_partial``).  A scatter-gather
        coordinator concatenates the per-shard expansions and recovers
        score masses bit-identical to a single-index run — candidates
        may hold mass on several shards, so shipping whole tables (not
        per-shard top-k) is what makes the merged top-k exact.
        ``result_type`` travels as the path *string* so the gather side
        needs no shard-local path table.
        """
        pool = self._run(query)
        table = self.corpus.path_table
        rows = tuple(
            (
                candidate,
                tuple(entry.partials),
                entry.error_weight,
                entry.normalizer,
                table.string_of(entry.result_type),
                entry.samples,
            )
            for candidate, entry in pool.items()
        )
        return rows, self.last_stats

    def suggest_explained(self, query: str, k: int = 10):
        """Top-k suggestions with full score provenance.

        Runs the exact same Algorithm 1 pass as :meth:`suggest` with a
        :class:`~repro.obs.explain.ScoreRecorder` attached and folds
        the record into an :class:`~repro.obs.explain.Explanation`
        whose per-candidate ``reconstructed_score`` re-derives the
        engine's score bit for bit from the logged Eq. 4–9 factors.
        """
        recorder = ScoreRecorder()
        self._recorder = recorder
        try:
            pool = self._run(query)
        finally:
            self._recorder = None
        return build_explanation(query, self, recorder, pool, k)

    def bind_tracer(self, tracer) -> None:
        """Swap the tracer (serving layer / pool workers)."""
        self.tracer = tracer or NULL_TRACER
        self.type_finder.tracer = self.tracer

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def _run(self, query: str) -> AccumulatorPool:
        tracer = self.tracer
        if tracer.enabled and tracer.current() is None:
            # No service owns a trace for this query: the suggester
            # roots its own (in-process / direct API use).
            tracer.begin(
                "suggest", query=query, engine=self.config.engine
            )
            try:
                return self._run_inner(query)
            finally:
                tracer.end()
        return self._run_inner(query)

    def _run_inner(self, query: str) -> AccumulatorPool:
        metrics = self.metrics
        tracer = self.tracer
        with metrics.stage("tokenize"), tracer.span("tokenize"):
            keywords = self.corpus.tokenizer.tokenize(query)
        if not keywords:
            raise QueryError(f"query {query!r} has no usable keywords")
        deadline_seconds = self.config.deadline_seconds
        self._deadline = (
            Deadline(deadline_seconds)
            if deadline_seconds is not None
            else None
        )
        faults = _active_faults()
        if faults.enabled:
            faults.hit("variant.gen")
        generator = self.generator
        variant_hits = getattr(generator, "cache_hits", 0)
        variant_misses = getattr(generator, "cache_misses", 0)
        merged_hits = self.corpus.merged_cache_hits
        merged_misses = self.corpus.merged_cache_misses
        type_finder = self.type_finder
        type_hits = type_finder.cache_hits
        type_misses = type_finder.cache_misses
        with metrics.stage("variant_gen"), tracer.span("variant_gen"):
            space = CandidateSpace(
                keywords, self.generator, self.error_model,
                self.config.max_errors,
                tracer=tracer if tracer.enabled else None,
            )
            if tracer.enabled:
                tracer.annotate(space_size=space.space_size())
        stats = CleaningStats(
            keywords=len(keywords), space_size=space.space_size()
        )
        if tracer.enabled:
            stats.trace_id = tracer.trace_id
        self.last_stats = stats
        recorder = self._recorder
        if recorder is not None:
            recorder.space = space
        if recorder is not None or tracer.enabled:
            observer = PruningObserver(
                recorder, tracer if tracer.enabled else None
            )
        else:
            observer = None
        pool = AccumulatorPool(self.config.gamma, observer=observer)
        self._score_seconds = 0.0
        if space.is_viable:
            # The merge stage covers the whole Algorithm 1 loop, entity
            # scoring included; "score" reports the scoring share.
            with metrics.stage("merge"), tracer.span("merge"):
                if self.config.engine == "packed":
                    merged: list = [
                        self.corpus.merged_list_packed(
                            space.variant_tokens(i)
                        )
                        for i in range(len(keywords))
                    ]
                    self._merge_loop_packed(merged, space, pool, stats)
                else:
                    merged = [
                        self.corpus.merged_list(space.variant_tokens(i))
                        for i in range(len(keywords))
                    ]
                    self._merge_loop_tuple(merged, space, pool, stats)
                if tracer.enabled:
                    tracer.annotate(
                        groups=stats.groups_processed,
                        candidates=stats.candidates_evaluated,
                        entities=stats.entities_scored,
                    )
            # postings_read/postings_skipped are set *inside* the merge
            # loops, atomically with the cursor write-back at loop exit
            # — re-summing here (after the stage timer closed) could
            # observe a half-consumed list on a deadline-expired
            # partial, inconsistent with groups_processed.
            if metrics.enabled and self._score_seconds:
                metrics.observe_stage("score", self._score_seconds)
            if tracer.enabled and self._score_seconds:
                # Scoring happens inside the merge loop in many small
                # bursts; expose the total as one aggregated span so
                # the tree shows where the merge time actually went.
                tracer.attach(
                    Span(
                        "score",
                        duration=self._score_seconds,
                        attributes={"aggregated": True},
                    )
                )
        stats.accumulator_evictions = pool.evictions
        # Per-query deltas: on a long-lived service the finder's
        # counters (and cache) span many queries.
        stats.result_type_cache_hits = (
            type_finder.cache_hits - type_hits
        )
        stats.result_type_cache_misses = (
            type_finder.cache_misses - type_misses
        )
        stats.result_types_computed = stats.result_type_cache_misses
        stats.variant_cache_hits = (
            getattr(generator, "cache_hits", 0) - variant_hits
        )
        stats.variant_cache_misses = (
            getattr(generator, "cache_misses", 0) - variant_misses
        )
        stats.merged_cache_hits = (
            self.corpus.merged_cache_hits - merged_hits
        )
        stats.merged_cache_misses = (
            self.corpus.merged_cache_misses - merged_misses
        )
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "xclean query=%r space=%d groups=%d candidates=%d "
                "read=%d skipped=%d survivors=%d",
                query,
                stats.space_size,
                stats.groups_processed,
                stats.candidates_evaluated,
                stats.postings_read,
                stats.postings_skipped,
                len(pool),
            )
        return pool

    def _merge_loop_tuple(
        self,
        merged: list[MergedList],
        space: CandidateSpace,
        pool: AccumulatorPool,
        stats: CleaningStats,
    ) -> None:
        """Algorithm 1 over the reference tuple-based merged lists."""
        min_depth = self.config.min_depth
        deadline = self._deadline
        faults = _active_faults()
        faults_enabled = faults.enabled
        try:
            while True:
                if deadline is not None and deadline.expired():
                    # Anytime exit: the accumulator already holds the
                    # best answer derivable from the groups processed
                    # so far.
                    stats.partial = True
                    self.tracer.event("deadline_expired", stage="merge")
                    return
                if faults_enabled:
                    faults.hit("merge.step")
                anchor = None
                exhausted = False
                for ml in merged:
                    head = ml.head_dewey()
                    if head is None:
                        # Some keyword exhausted: no group helps.
                        exhausted = True
                        break
                    if anchor is None or head > anchor:
                        anchor = head
                if exhausted or anchor is None:
                    return
                if len(anchor) < min_depth:
                    # Occurrence too shallow to sit under any valid
                    # entity: consume it wherever it is and move on.
                    self._consume_shallow(merged, anchor)
                    continue
                group = anchor[:min_depth]
                occurrences = self._collect_group(merged, group, stats)
                if occurrences is None:
                    continue
                stats.groups_processed += 1
                self._score_group(group, occurrences, space, pool, stats)
        finally:
            # Atomic with loop exit (normal, deadline, or fault): the
            # counters always describe exactly the work done so far.
            stats.postings_read = sum(ml.total_reads for ml in merged)
            stats.postings_skipped = sum(ml.total_skips for ml in merged)

    def _consume_shallow(
        self, merged: list[MergedList], anchor: DeweyCode
    ) -> None:
        """Drop a head entry that is too shallow to matter.

        The anchor is the maximal head, so normally some list's head
        equals it; consuming that head guarantees progress.  If no head
        matches (defensive: a subclass or a concurrent mutation could
        desynchronize the anchor), consume the maximal head instead —
        silently doing nothing here would spin Algorithm 1's outer loop
        forever on the same anchor.
        """
        fallback = None
        fallback_head = None
        for ml in merged:
            head = ml.head_dewey()
            if head is None:
                continue
            if head == anchor:
                ml.next()
                return
            if fallback_head is None or head > fallback_head:
                fallback, fallback_head = ml, head
        if fallback is not None:
            fallback.next()

    def _skip_to(self, ml: MergedList, target: DeweyCode):
        """skip_to with the configured strategy (ablation switch)."""
        if self.config.use_skipping:
            return ml.skip_to(target)
        head = ml.cur_pos()
        while head is not None and head[0] < target:
            ml.next()
            head = ml.cur_pos()
        return head

    def _collect_group(
        self,
        merged: list[MergedList],
        group: DeweyCode,
        stats: CleaningStats,
    ) -> list[dict[str, list[MergedEntry]]] | None:
        """Drain all occurrences under ``group`` (Lines 7–11).

        Returns ``None`` when some keyword has no occurrence in the
        group (no candidate can be formed there); the entries are
        consumed either way, exactly as in the paper.
        """
        occurrences: list[dict[str, list[MergedEntry]]] = []
        missing = False
        for ml in merged:
            by_token: dict[str, list[MergedEntry]] = {}
            self._skip_to(ml, group)
            for entry in ml.pop_subtree(group):
                by_token.setdefault(entry[3], []).append(entry)
            if not by_token:
                missing = True
            occurrences.append(by_token)
        return None if missing else occurrences

    def _score_group(
        self,
        group: DeweyCode,
        occurrences: list[dict[str, list[MergedEntry]]],
        space: CandidateSpace,
        pool: AccumulatorPool,
        stats: CleaningStats,
    ) -> None:
        """Enumerate and score the group's candidates (Lines 12–15)."""
        metrics = self.metrics
        score_began = perf_counter() if metrics.enabled else 0.0
        table = self.corpus.path_table
        entity_cache: dict[
            tuple[int, str, int], dict[DeweyCode, int]
        ] = {}

        def entity_counts(
            position: int, token: str, pid: int, depth: int
        ) -> dict[DeweyCode, int]:
            key = (position, token, pid)
            cached = entity_cache.get(key)
            if cached is not None:
                return cached
            counts: dict[DeweyCode, int] = {}
            for dewey, path_id, tf, _token in occurrences[position][token]:
                if len(dewey) < depth:
                    continue
                if table.prefix_id(path_id, depth) != pid:
                    continue
                root = dewey[:depth]
                counts[root] = counts.get(root, 0) + tf
            entity_cache[key] = counts
            return counts

        deadline = self._deadline
        recorder = self._recorder
        present = [list(by_token) for by_token in occurrences]
        for candidate in space.enumerate_present(present):
            if deadline is not None and deadline.expired():
                # Accumulator boundary: stop scoring further candidates
                # of this group; whatever was added already is valid.
                stats.partial = True
                self.tracer.event("deadline_expired", stage="score")
                break
            stats.candidates_evaluated += 1
            pid = self.type_finder.find(candidate)
            if pid is None:
                continue
            depth = table.depth_of(pid)
            per_keyword = [
                entity_counts(position, token, pid, depth)
                for position, token in enumerate(candidate)
            ]
            if any(not counts for counts in per_keyword):
                continue
            entities = set(min(per_keyword, key=len))
            for counts in per_keyword:
                entities &= counts.keys()
            if not entities:
                continue
            length_prior = self.config.prior == "length"
            mass = 0.0
            # Sorted so both engines accumulate in document order and
            # produce bit-identical sums.
            for root in sorted(entities):
                stats.entities_scored += 1
                length = self.corpus.subtree_length(root)
                product = 1.0
                for position, token in enumerate(candidate):
                    product *= self.language_model.probability(
                        token, per_keyword[position][root], length
                    )
                # Under the uniform prior every entity weighs 1 (and
                # the normalizer is N); under the length prior weight
                # is |D(r)| with normalizer W_p = Σ |D(r)| (Eq. 8).
                mass += (length if length_prior else 1.0) * product
            if length_prior:
                normalizer = self.corpus.path_token_totals().get(
                    pid, 0.0
                )
            else:
                normalizer = float(self.corpus.entity_count(pid))
            error_weight = space.error_weight(candidate)
            if recorder is not None:
                recorder.group(
                    candidate,
                    pid,
                    error_weight,
                    normalizer,
                    self._group_contribution(
                        format_code(group),
                        candidate,
                        sorted(entities),
                        per_keyword,
                        length_prior,
                        mass,
                        self.corpus.subtree_length,
                        self.language_model.probability,
                        format_code,
                    ),
                )
            pool.add(candidate, mass, error_weight, normalizer, pid)
        if metrics.enabled:
            self._score_seconds += perf_counter() - score_began

    def _group_contribution(
        self,
        group_label: str,
        candidate: CandidateQuery,
        roots: list,
        per_keyword: list[dict],
        length_prior: bool,
        mass: float,
        length_of,
        probability,
        format_root,
    ) -> GroupContribution:
        """Recompute one group's per-entity factors for the recorder.

        Off the hot path (explain runs only).  The per-entity products
        repeat the scoring loop's float operations in the same order,
        so the recorded masses re-sum to the engine's group mass bit
        for bit.
        """
        entities = []
        for root in roots:
            length = length_of(root)
            factors = []
            product = 1.0
            for position, token in enumerate(candidate):
                count = per_keyword[position][root]
                p = probability(token, count, length)
                product *= p
                factors.append(
                    TermFactor(
                        position=position,
                        token=token,
                        count=count,
                        probability=p,
                    )
                )
            prior_weight = (length if length_prior else 1.0)
            entities.append(
                EntityContribution(
                    entity=format_root(root),
                    length=length,
                    prior_weight=prior_weight,
                    factors=tuple(factors),
                    mass=prior_weight * product,
                )
            )
        return GroupContribution(
            group=group_label,
            entities=tuple(entities),
            mass=mass,
        )

    # ------------------------------------------------------------------
    # Algorithm 1 — packed engine
    # ------------------------------------------------------------------
    #
    # Mirrors the tuple path above, but every Dewey code is a packed
    # int: anchor selection compares machine ints, the group test is a
    # shift, prefix truncation is a mask, and subtree lengths are read
    # from an int-keyed dict.  The two paths intentionally share their
    # structure line for line so they stay reviewable side by side.

    def _merge_loop_packed(
        self,
        merged: list[PackedMergedList],
        space: CandidateSpace,
        pool: AccumulatorPool,
        stats: CleaningStats,
    ) -> None:
        """Algorithm 1 over the columnar packed merged lists.

        Dispatches between three loop bodies with identical output:
        the batch merge kernel (galloping intersection, plan cache,
        in-loop γ-pruning — the default), the classic per-group bisect
        loop (``merge_kernel=False``; the kernel's equivalence
        baseline), and the generic cursor loop (``use_skipping=False``
        ablation: every posting read linearly).
        """
        if not self.config.use_skipping:
            # Ablation path: read entries one by one via the generic
            # cursor methods so skipped-vs-read counters stay honest.
            self._merge_loop_packed_generic(merged, space, pool, stats)
            return
        if self.config.merge_kernel:
            self._merge_loop_kernel(merged, space, pool, stats)
            return
        self._merge_loop_packed_classic(merged, space, pool, stats)

    def _merge_loop_packed_classic(
        self,
        merged: list[PackedMergedList],
        space: CandidateSpace,
        pool: AccumulatorPool,
        stats: CleaningStats,
    ) -> None:
        """The pre-kernel packed merge loop (``merge_kernel=False``).

        The cursor state (position, reads, skips) of every merged list
        is hoisted into locals for the duration of the loop and written
        back on exit: the loop body then runs on plain ints, list
        indexing, and C-level ``bisect_left`` with no method-call
        overhead per group.  A subtree is a contiguous key range —
        ``[group, upper)`` where ``upper`` bumps the group's prefix —
        so skipping to the group and draining it are two bisects.
        """
        view = self.corpus.packed_view()
        packer = view.packer
        min_depth = self.config.min_depth
        depth_mask = (1 << packer.depth_bits) - 1
        group_shift = packer.shift_for(min_depth)
        num = len(merged)
        columns = [ml.columns for ml in merged]
        key_columns = [c.keys for c in columns]
        lengths = [c.length for c in columns]
        positions = [ml.position for ml in merged]
        reads = [0] * num
        skips = [0] * num
        starts = [0] * num
        score_group = self._score_group_packed
        indices = range(num)
        deadline = self._deadline
        faults = _active_faults()
        faults_enabled = faults.enabled
        try:
            while True:
                if deadline is not None and deadline.expired():
                    # Anytime exit; the finally block writes the
                    # cursor state back, so counters stay honest.
                    stats.partial = True
                    self.tracer.event(
                        "deadline_expired", stage="merge"
                    )
                    return
                if faults_enabled:
                    faults.hit("merge.step")
                anchor = -1
                for i in indices:
                    position = positions[i]
                    if position >= lengths[i]:
                        # Some keyword exhausted: no further group helps.
                        return
                    head = key_columns[i][position]
                    if head > anchor:
                        anchor = head
                if (anchor & depth_mask) < min_depth:
                    # Shallow head: it is some list's head by
                    # construction; consume it and move on.
                    for i in indices:
                        if key_columns[i][positions[i]] == anchor:
                            positions[i] += 1
                            reads[i] += 1
                            break
                    continue
                prefix_bits = anchor >> group_shift
                group = (prefix_bits << group_shift) | min_depth
                upper = (prefix_bits + 1) << group_shift
                # Pass 1: locate every list's slice of the group with
                # two bisects; entries are *consumed* (and counted)
                # either way, exactly as in the paper.
                missing = False
                for i in indices:
                    keys = key_columns[i]
                    start = bisect_left(
                        keys, group, positions[i], lengths[i]
                    )
                    end = bisect_left(keys, upper, start, lengths[i])
                    skips[i] += start - positions[i]
                    reads[i] += end - start
                    starts[i] = start
                    positions[i] = end
                    if end == start:
                        missing = True
                if missing:
                    # Some keyword absent from the group: no candidate
                    # can form here, so never materialize the entries.
                    continue
                # Pass 2: materialize entries, grouped by token.
                occurrences: list[dict[str, list[PackedEntry]]] = []
                for i in indices:
                    keys = key_columns[i]
                    cols = columns[i]
                    path_ids = cols.path_ids
                    tfs = cols.tfs
                    token_ids = cols.token_ids
                    tokens = cols.tokens
                    by_token: dict[str, list[PackedEntry]] = {}
                    for j in range(starts[i], positions[i]):
                        token = tokens[token_ids[j]]
                        entry = (keys[j], path_ids[j], tfs[j], token)
                        found = by_token.get(token)
                        if found is None:
                            by_token[token] = [entry]
                        else:
                            found.append(entry)
                    occurrences.append(by_token)
                stats.groups_processed += 1
                score_group(occurrences, space, pool, stats, view, group)
        finally:
            for i in indices:
                ml = merged[i]
                ml.position = positions[i]
                ml.reads += reads[i]
                ml.skips += skips[i]
            stats.postings_read = sum(ml.total_reads for ml in merged)
            stats.postings_skipped = sum(ml.total_skips for ml in merged)

    def _merge_loop_kernel(
        self,
        merged: list[PackedMergedList],
        space: CandidateSpace,
        pool: AccumulatorPool,
        stats: CleaningStats,
    ) -> None:
        """Batch merge kernel: Algorithm 1 as whole-group runs.

        Three changes over the classic loop, none visible in the
        output:

        * **Galloping intersection** — cursors advance by exponential
          probe from the current position plus a bisect in the probed
          bracket (``merge_kernel.gallop_left``), so the cost per skip
          is O(log distance-moved) rather than O(log remaining), which
          compounds across the many short hops of clustered postings.
        * **Plan cache** — the sequence of subtree-group runs for a
          variant-set combination is deterministic per snapshot
          generation, so it is recorded on first evaluation and
          replayed from the corpus's ``IntersectionCache`` afterwards
          (``_replay_plan``), skipping the intersection entirely.
        * **In-loop γ-pruning** — scoring runs with ``prune=True``:
          once the accumulator table is saturated, candidates whose
          score upper bound falls strictly below the table's floor are
          dropped before materializing entity counts (see
          ``_score_group_packed``).

        Counter contract: per-run read/skip *deltas* are recorded in
        the plan so a replay — even one cut short by a deadline —
        reports exactly the postings a live run would have consumed up
        to the same group.
        """
        corpus = self.corpus
        view = corpus.packed_view()
        packer = view.packer
        min_depth = self.config.min_depth
        depth_mask = (1 << packer.depth_bits) - 1
        num = len(merged)
        columns = [ml.columns for ml in merged]
        cache = getattr(corpus, "intersection_cache", None)
        plan_key = None
        if (
            cache is not None
            and cache.enabled
            and not any(ml.position for ml in merged)
        ):
            # Plans always start at position 0; a cursor mid-list
            # (defensive — _run_inner builds fresh lists) is simply
            # not cacheable.  Column uids name the variant sets in
            # O(#keywords); the generation is embedded anyway so a
            # hot-swap invalidates plans even if uids survived.
            plan_key = (
                corpus.generation,
                min_depth,
                tuple(c.uid for c in columns),
            )
            plan = cache.get(plan_key)
            if plan is not None:
                stats.intersection_cache_hits += 1
                self.metrics.inc("intersection_cache_hits_total")
                self._replay_plan(plan, merged, space, pool, stats, view)
                return
            stats.intersection_cache_misses += 1
            self.metrics.inc("intersection_cache_misses_total")
        group_bounds = packer.group_bounds
        key_columns = [c.keys for c in columns]
        lengths = [c.length for c in columns]
        positions = [ml.position for ml in merged]
        reads = [0] * num
        skips = [0] * num
        starts = [0] * num
        # Deltas since the last *complete* group: shallow heads and
        # groups some keyword missed are charged to the next run.
        run_reads = [0] * num
        run_skips = [0] * num
        runs: list[GroupRun] = []
        score_group = self._score_group_packed
        indices = range(num)
        deadline = self._deadline
        faults = _active_faults()
        faults_enabled = faults.enabled
        try:
            while True:
                if deadline is not None and deadline.expired():
                    stats.partial = True
                    self.tracer.event(
                        "deadline_expired", stage="merge"
                    )
                    return
                if faults_enabled:
                    faults.hit("merge.step")
                anchor = -1
                exhausted = False
                for i in indices:
                    position = positions[i]
                    if position >= lengths[i]:
                        # Some keyword exhausted: no group helps.
                        exhausted = True
                        break
                    head = key_columns[i][position]
                    if head > anchor:
                        anchor = head
                if exhausted:
                    break
                if (anchor & depth_mask) < min_depth:
                    # Shallow head: it is some list's head by
                    # construction; consume it and move on.
                    for i in indices:
                        if key_columns[i][positions[i]] == anchor:
                            positions[i] += 1
                            reads[i] += 1
                            run_reads[i] += 1
                            break
                    continue
                group, upper = group_bounds(anchor, min_depth)
                missing = False
                for i in indices:
                    keys = key_columns[i]
                    start = gallop_left(
                        keys, group, positions[i], lengths[i]
                    )
                    end = gallop_left(keys, upper, start, lengths[i])
                    skipped = start - positions[i]
                    consumed = end - start
                    skips[i] += skipped
                    run_skips[i] += skipped
                    reads[i] += consumed
                    run_reads[i] += consumed
                    starts[i] = start
                    positions[i] = end
                    if end == start:
                        missing = True
                if missing:
                    # Some keyword absent from the group: no candidate
                    # can form here; never materialize the entries.
                    continue
                occurrences = [
                    columns[i].slice_by_token(starts[i], positions[i])
                    for i in indices
                ]
                if plan_key is not None:
                    runs.append(
                        GroupRun(
                            group,
                            tuple(positions),
                            tuple(run_reads),
                            tuple(run_skips),
                            tuple(occurrences),
                        )
                    )
                    run_reads = [0] * num
                    run_skips = [0] * num
                stats.groups_processed += 1
                score_group(
                    occurrences, space, pool, stats, view, group,
                    prune=True,
                )
            if plan_key is not None and not stats.partial:
                # Only cleanly exhausted intersections are cached; a
                # deadline or fault exit leaves the loop via return or
                # raise and never reaches this line.
                cache.put(
                    plan_key,
                    MergePlan(
                        runs,
                        tuple(positions),
                        tuple(run_reads),
                        tuple(run_skips),
                    ),
                )
        finally:
            for i in indices:
                ml = merged[i]
                ml.position = positions[i]
                ml.reads += reads[i]
                ml.skips += skips[i]
            stats.postings_read = sum(ml.total_reads for ml in merged)
            stats.postings_skipped = sum(ml.total_skips for ml in merged)

    def _replay_plan(
        self,
        plan: MergePlan,
        merged: list[PackedMergedList],
        space: CandidateSpace,
        pool: AccumulatorPool,
        stats: CleaningStats,
        view,
    ) -> None:
        """Re-run a cached merge plan against the accumulator pool.

        The intersection is already done: each recorded run carries its
        subtree-group key, materialized occurrences, and the cursor
        deltas the live loop accrued producing it, so replay is a walk
        over the runs with the same deadline/fault checks at group
        granularity.  Counters advance run by run — a deadline that
        fires after run *j* leaves exactly the postings_read/skipped a
        live run stopped at the same group would report.
        """
        num = len(merged)
        indices = range(num)
        positions = [ml.position for ml in merged]
        reads = [0] * num
        skips = [0] * num
        score_group = self._score_group_packed
        deadline = self._deadline
        faults = _active_faults()
        faults_enabled = faults.enabled
        try:
            for run in plan.runs:
                if deadline is not None and deadline.expired():
                    stats.partial = True
                    self.tracer.event(
                        "deadline_expired", stage="merge"
                    )
                    return
                if faults_enabled:
                    faults.hit("merge.step")
                run_ends = run.ends
                run_reads = run.reads
                run_skips = run.skips
                for i in indices:
                    reads[i] += run_reads[i]
                    skips[i] += run_skips[i]
                    positions[i] = run_ends[i]
                stats.groups_processed += 1
                score_group(
                    list(run.occurrences), space, pool, stats, view,
                    run.key, prune=True,
                )
            # Trailing entries past the last complete group (shallow
            # heads, partial groups, exhaustion tail).
            tail_ends = plan.tail_ends
            tail_reads = plan.tail_reads
            tail_skips = plan.tail_skips
            for i in indices:
                reads[i] += tail_reads[i]
                skips[i] += tail_skips[i]
                positions[i] = tail_ends[i]
        finally:
            for i in indices:
                ml = merged[i]
                ml.position = positions[i]
                ml.reads += reads[i]
                ml.skips += skips[i]
            stats.postings_read = sum(ml.total_reads for ml in merged)
            stats.postings_skipped = sum(ml.total_skips for ml in merged)

    def _merge_loop_packed_generic(
        self,
        merged: list[PackedMergedList],
        space: CandidateSpace,
        pool: AccumulatorPool,
        stats: CleaningStats,
    ) -> None:
        """Packed merge loop over the generic cursor methods."""
        view = self.corpus.packed_view()
        packer = view.packer
        min_depth = self.config.min_depth
        depth_mask = (1 << packer.depth_bits) - 1
        group_shift = packer.shift_for(min_depth)
        deadline = self._deadline
        faults = _active_faults()
        faults_enabled = faults.enabled
        try:
            while True:
                if deadline is not None and deadline.expired():
                    stats.partial = True
                    self.tracer.event("deadline_expired", stage="merge")
                    return
                if faults_enabled:
                    faults.hit("merge.step")
                anchor = None
                exhausted = False
                for ml in merged:
                    head = ml.head_key()
                    if head is None:
                        exhausted = True
                        break
                    if anchor is None or head > anchor:
                        anchor = head
                if exhausted or anchor is None:
                    return
                if (anchor & depth_mask) < min_depth:
                    self._consume_shallow_packed(merged, anchor)
                    continue
                group = packer.prefix(anchor, min_depth)
                occurrences = self._collect_group_packed(
                    merged, group, group_shift
                )
                if occurrences is None:
                    continue
                stats.groups_processed += 1
                self._score_group_packed(
                    occurrences, space, pool, stats, view, group
                )
        finally:
            stats.postings_read = sum(ml.total_reads for ml in merged)
            stats.postings_skipped = sum(ml.total_skips for ml in merged)

    def _consume_shallow_packed(
        self, merged: list[PackedMergedList], anchor: int
    ) -> None:
        """Packed twin of :meth:`_consume_shallow` (same progress fix)."""
        fallback = None
        fallback_head = None
        for ml in merged:
            head = ml.head_key()
            if head is None:
                continue
            if head == anchor:
                ml.next()
                return
            if fallback_head is None or head > fallback_head:
                fallback, fallback_head = ml, head
        if fallback is not None:
            fallback.next()

    def _skip_to_packed(self, ml: PackedMergedList, target: int):
        """skip_to with the configured strategy (ablation switch)."""
        if self.config.use_skipping:
            return ml.skip_to(target)
        head = ml.head_key()
        while head is not None and head < target:
            ml.next()
            head = ml.head_key()
        return ml.cur_pos()

    def _collect_group_packed(
        self,
        merged: list[PackedMergedList],
        group: int,
        group_shift: int,
    ) -> list[dict[str, list[PackedEntry]]] | None:
        """Drain all occurrences under ``group`` (Lines 7–11)."""
        occurrences: list[dict[str, list[PackedEntry]]] = []
        missing = False
        for ml in merged:
            by_token: dict[str, list[PackedEntry]] = {}
            self._skip_to_packed(ml, group)
            for entry in ml.pop_subtree(group, group_shift):
                by_token.setdefault(entry[3], []).append(entry)
            if not by_token:
                missing = True
            occurrences.append(by_token)
        return None if missing else occurrences

    def _score_group_packed(
        self,
        occurrences: list[dict[str, list[PackedEntry]]],
        space: CandidateSpace,
        pool: AccumulatorPool,
        stats: CleaningStats,
        view,
        group: int | None = None,
        prune: bool = False,
    ) -> None:
        """Enumerate and score the group's candidates (Lines 12–15).

        With ``prune=True`` (kernel path only) the γ-bound of Section
        V-D is applied *before* materializing entity counts: once the
        accumulator table is saturated, its floor — the minimal
        estimate among resident candidates, a monotone non-decreasing
        quantity — is a permanent lower bound on admission.  A
        non-resident candidate whose score upper bound

            error_weight(C) × min_k |occurrences[k][c_k]| / N_p

        is strictly below the floor would be scanned and rejected by
        ``pool.add`` without changing the table, so it is skipped
        outright.  Valid under the uniform prior only (each Dirichlet
        term and each entity's tf-sum bound ≤ 1 per posting); the
        length prior weights entities by subtree size, so the bound
        does not hold and pruning self-disables.
        """
        metrics = self.metrics
        score_began = perf_counter() if metrics.enabled else 0.0
        table = self.corpus.path_table
        packer = view.packer
        depth_bits = packer.depth_bits
        depth_mask = (1 << depth_bits) - 1
        component_bits = packer.component_bits
        max_depth = packer.max_depth
        subtree_lengths = view.subtree_lengths
        entity_cache: dict[tuple[int, str, int], dict[int, int]] = {}

        def entity_counts(
            position: int, token: str, pid: int, depth: int
        ) -> dict[int, int]:
            key = (position, token, pid)
            cached = entity_cache.get(key)
            if cached is not None:
                return cached
            counts: dict[int, int] = {}
            shift = depth_bits + (max_depth - depth) * component_bits
            prefix_id = table.prefix_id
            for packed, path_id, tf, _token in occurrences[position][token]:
                if (packed & depth_mask) < depth:
                    continue
                if prefix_id(path_id, depth) != pid:
                    continue
                root = ((packed >> shift) << shift) | depth
                counts[root] = counts.get(root, 0) + tf
            entity_cache[key] = counts
            return counts

        deadline = self._deadline
        recorder = self._recorder
        kernel_pruning = (
            prune
            and self.config.kernel_pruning
            and pool.capacity is not None
            and self.config.prior == "uniform"
        )
        entity_count = self.corpus.entity_count
        error_weight_of = space.error_weight
        present = [list(by_token) for by_token in occurrences]
        for candidate in space.enumerate_present(present):
            if deadline is not None and deadline.expired():
                # Accumulator boundary (same contract as the tuple
                # engine's score loop).
                stats.partial = True
                self.tracer.event("deadline_expired", stage="score")
                break
            stats.candidates_evaluated += 1
            pid = self.type_finder.find(candidate)
            if pid is None:
                continue
            if (
                kernel_pruning
                and pool.at_capacity
                and candidate not in pool
            ):
                floor = pool.prune_floor()
                if floor > 0.0:
                    normalizer_bound = float(entity_count(pid))
                    if normalizer_bound > 0.0:
                        posting_bound = min(
                            len(occurrences[position][token])
                            for position, token in enumerate(candidate)
                        )
                        upper = (
                            error_weight_of(candidate)
                            * posting_bound
                            / normalizer_bound
                        )
                        if upper < floor:
                            # Guaranteed rejection: never materialize
                            # the entity counts or score a thing.
                            stats.kernel_pruned += 1
                            if recorder is not None:
                                recorder.kernel_pruned(
                                    candidate, upper, floor
                                )
                            continue
            depth = table.depth_of(pid)
            per_keyword = [
                entity_counts(position, token, pid, depth)
                for position, token in enumerate(candidate)
            ]
            if any(not counts for counts in per_keyword):
                continue
            entities = set(min(per_keyword, key=len))
            for counts in per_keyword:
                entities &= counts.keys()
            if not entities:
                continue
            length_prior = self.config.prior == "length"
            probability = self.language_model.probability
            mass = 0.0
            # Packed keys sort exactly like their tuples, so this
            # accumulates in the same order as the tuple engine and the
            # sums are bit-identical.
            for root in sorted(entities):
                stats.entities_scored += 1
                length = subtree_lengths.get(root, 0)
                product = 1.0
                for position, token in enumerate(candidate):
                    product *= probability(
                        token, per_keyword[position][root], length
                    )
                mass += (length if length_prior else 1.0) * product
            if length_prior:
                normalizer = self.corpus.path_token_totals().get(
                    pid, 0.0
                )
            else:
                normalizer = float(self.corpus.entity_count(pid))
            error_weight = space.error_weight(candidate)
            if recorder is not None:
                unpack = packer.unpack
                recorder.group(
                    candidate,
                    pid,
                    error_weight,
                    normalizer,
                    self._group_contribution(
                        (
                            format_code(unpack(group))
                            if group is not None
                            else "?"
                        ),
                        candidate,
                        sorted(entities),
                        per_keyword,
                        length_prior,
                        mass,
                        lambda root: subtree_lengths.get(root, 0),
                        probability,
                        lambda root: format_code(unpack(root)),
                    ),
                )
            pool.add(candidate, mass, error_weight, normalizer, pid)
        if metrics.enabled:
            self._score_seconds += perf_counter() - score_began
