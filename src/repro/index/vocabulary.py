"""Vocabulary and collection statistics.

The vocabulary V is the set of all tokens occurring in the document
(Section III).  Besides membership it carries the statistics needed by

* the background language model P(w|B) of Eq. 6 (collection frequency
  over total token count);
* the PY08 baseline's tf·idf (Section II): per-token document frequency
  over *element documents* and the maximum relative term frequency.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator


class Vocabulary:
    """Token statistics for one corpus.

    Attributes are exposed read-only through methods; mutation happens
    only through :meth:`add_occurrence` / :meth:`register_element_doc`
    during index construction.
    """

    def __init__(self):
        self._collection_freq: dict[str, int] = {}
        self._element_df: dict[str, int] = {}
        self._max_rel_tf: dict[str, float] = {}
        self._total_tokens = 0
        self._element_doc_count = 0

    # ------------------------------------------------------------------
    # Construction API (used by the index builder)
    # ------------------------------------------------------------------

    def add_occurrence(self, token: str, count: int = 1) -> None:
        """Record ``count`` occurrences of ``token`` in the collection."""
        self._collection_freq[token] = (
            self._collection_freq.get(token, 0) + count
        )
        self._total_tokens += count

    def register_element_doc(self, token_counts: dict[str, int]) -> None:
        """Record one element-level document (for PY08's tf·idf).

        ``token_counts`` maps each token in the element to its frequency;
        the element's length is the sum of the counts.
        """
        self._element_doc_count += 1
        length = sum(token_counts.values())
        if length == 0:
            return
        for token, count in token_counts.items():
            self._element_df[token] = self._element_df.get(token, 0) + 1
            rel = count / length
            if rel > self._max_rel_tf.get(token, 0.0):
                self._max_rel_tf[token] = rel

    # ------------------------------------------------------------------
    # Membership / iteration
    # ------------------------------------------------------------------

    def __contains__(self, token: str) -> bool:
        return token in self._collection_freq

    def __len__(self) -> int:
        return len(self._collection_freq)

    def __iter__(self) -> Iterator[str]:
        return iter(self._collection_freq)

    def tokens(self) -> Iterable[str]:
        """All distinct tokens (arbitrary but stable iteration order)."""
        return self._collection_freq.keys()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def total_tokens(self) -> int:
        """Total number of token occurrences in the collection."""
        return self._total_tokens

    @property
    def element_doc_count(self) -> int:
        """Number of element-level documents registered (PY08's N)."""
        return self._element_doc_count

    def collection_frequency(self, token: str) -> int:
        """Occurrences of ``token`` across the whole collection."""
        return self._collection_freq.get(token, 0)

    def background_probability(self, token: str) -> float:
        """P(w|B) of Eq. 6 — relative collection frequency.

        Unknown tokens get probability 0; Dirichlet smoothing in the
        language model handles the rest.
        """
        if self._total_tokens == 0:
            return 0.0
        return self._collection_freq.get(token, 0) / self._total_tokens

    def element_document_frequency(self, token: str) -> int:
        """df(w) over element documents (PY08 idf denominator)."""
        return self._element_df.get(token, 0)

    def max_relative_tf(self, token: str) -> float:
        """max_t count(w,t)/|t| over element documents (PY08 numerator)."""
        return self._max_rel_tf.get(token, 0.0)

    def idf(self, token: str) -> float:
        """log(N / df(w)); 0 when the token is unknown."""
        df = self._element_df.get(token, 0)
        if df == 0 or self._element_doc_count == 0:
            return 0.0
        return math.log(self._element_doc_count / df)

    def max_tfidf(self, token: str) -> float:
        """PY08's score_IR(w) = max_t tfidf(w, t) (Section II)."""
        return self.max_relative_tf(token) * self.idf(token)

    # ------------------------------------------------------------------
    # Persistence hooks (used by repro.index.storage)
    # ------------------------------------------------------------------

    def export_rows(self) -> Iterator[tuple[str, int, int, float]]:
        """Yield ``(token, cf, element_df, max_rel_tf)`` rows."""
        for token, cf in self._collection_freq.items():
            yield (
                token,
                cf,
                self._element_df.get(token, 0),
                self._max_rel_tf.get(token, 0.0),
            )

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[tuple[str, int, int, float]],
        element_doc_count: int,
    ) -> "Vocabulary":
        """Rebuild a vocabulary from persisted rows."""
        vocab = cls()
        total = 0
        for token, cf, df, max_rel in rows:
            vocab._collection_freq[token] = cf
            if df:
                vocab._element_df[token] = df
            if max_rel:
                vocab._max_rel_tf[token] = max_rel
            total += cf
        vocab._total_tokens = total
        vocab._element_doc_count = element_doc_count
        return vocab
