"""The corpus index: everything XClean needs at query time, in one object.

Built from an :class:`~repro.xmltree.document.XMLDocument` in a single
document-order pass, the :class:`CorpusIndex` bundles:

* the interned :class:`PathTable` of label paths;
* the Dewey-coded :class:`InvertedIndex` (Section V-C);
* the :class:`PathIndex` with the f_w^p counts (Section V-B);
* the :class:`Vocabulary` with background-model and PY08 statistics;
* subtree token counts ``|D(r)|`` for every node whose subtree contains
  at least one token (the virtual-document lengths of Eq. 6);
* per-path node counts (the normalizer N of Eq. 8).

The index is self-contained: suggesters never touch the original tree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.index.inverted import (
    InvertedIndex,
    InvertedList,
    PackedInvertedList,
)
from repro.index.merged_list import (
    MergedList,
    PackedMergedColumns,
    PackedMergedList,
)
from repro.index.path_index import PathIndex, path_counts_from_postings
from repro.index.tokenizer import Tokenizer
from repro.index.vocabulary import Vocabulary
from repro.obs.metrics import NULL_METRICS
from repro.xmltree.dewey import DeweyCode
from repro.xmltree.dewey_packed import DeweyPacker
from repro.xmltree.document import XMLDocument
from repro.xmltree.labelpath import PathTable


class PackedIndex:
    """The packed (columnar) view of a corpus — the fast query engine.

    Built once per corpus on first use and cached: a
    :class:`DeweyPacker` sized to the corpus, per-token columnar lists
    (packed lazily, so only tokens that queries actually touch pay the
    conversion), and the subtree token lengths re-keyed by packed Dewey
    so the scoring loop never materializes a tuple.
    """

    __slots__ = ("packer", "_inverted", "_lists", "_subtree_lengths",
                 "_empty")

    def __init__(self, inverted: InvertedIndex,
                 subtree_token_counts: dict[DeweyCode, int]):
        self.packer = DeweyPacker.for_codes(
            itertools.chain(
                (
                    code
                    for token in inverted.tokens()
                    for code, _pid, _tf in inverted.list_for(token)
                ),
                subtree_token_counts,
            )
        )
        self._inverted = inverted
        self._lists: dict[str, PackedInvertedList] = {}
        pack = self.packer.pack
        self._subtree_lengths: dict[int, int] = {
            pack(code): count
            for code, count in subtree_token_counts.items()
        }
        self._empty = PackedInvertedList("", [], [], [])

    @property
    def subtree_lengths(self) -> dict[int, int]:
        """|D(r)| keyed by packed Dewey code."""
        return self._subtree_lengths

    def get(self, token: str) -> PackedInvertedList | None:
        """Packed posting list for ``token``, or ``None`` if absent."""
        packed = self._lists.get(token)
        if packed is None:
            source = self._inverted.get(token)
            if source is None:
                return None
            packed = PackedInvertedList.from_inverted(source, self.packer)
            self._lists[token] = packed
        return packed


@dataclass
class CorpusIndex:
    """All index structures for one corpus (see module docstring)."""

    name: str
    path_table: PathTable
    inverted: InvertedIndex
    path_index: PathIndex
    vocabulary: Vocabulary
    subtree_token_counts: dict[DeweyCode, int]
    path_node_counts: dict[int, int]
    tokenizer: Tokenizer = field(default_factory=Tokenizer)
    #: W_p of Eq. 8 per path id; precomputed at build time (and
    #: persisted), derived here only for hand-assembled indexes.
    path_token_totals_map: dict[int, float] | None = None
    #: Deepest label path; precomputed for the same reason.
    max_depth: int | None = None

    def __post_init__(self):
        if self.path_token_totals_map is None:
            self.path_token_totals_map = self._derive_path_token_totals()
        if self.max_depth is None:
            self.max_depth = max(
                (len(labels) for labels in self.path_table), default=0
            )
        # Query-time caches; `= None` sentinels keep the dataclass
        # picklable and the packed view lazily built.
        self._packed: PackedIndex | None = None
        self._merged_cache: dict[
            tuple[str, ...], list[InvertedList]
        ] = {}
        self._packed_merged_cache: dict[
            tuple[str, ...], PackedMergedColumns
        ] = {}
        self.merged_cache_hits = 0
        self.merged_cache_misses = 0
        self._metrics = NULL_METRICS

    def bind_metrics(self, metrics) -> None:
        """Attach a MetricsRegistry to the cache hooks.

        One registry per corpus (the last binding wins): a
        ``SuggestionService`` binds its own registry so the
        ``merged_cache_*`` counters and packed-view build time show up
        in its snapshot.  Pass ``None`` to detach.
        """
        self._metrics = metrics or NULL_METRICS

    # ------------------------------------------------------------------
    # Query-time accessors
    # ------------------------------------------------------------------

    def subtree_length(self, dewey: DeweyCode) -> int:
        """|D(r)| — token count of the virtual document rooted at r."""
        return self.subtree_token_counts.get(dewey, 0)

    def entity_count(self, path_id: int) -> int:
        """N — number of nodes of the given type in the document."""
        return self.path_node_counts.get(path_id, 0)

    def merged_list(self, tokens: Iterable[str]) -> MergedList:
        """MergedList over the inverted lists of the given variants.

        The per-variant-set list lookup is memoized: the same keyword
        (hence the same variant set) recurs across queries, and
        resolving dozens of token strings to posting lists on every
        query is measurable.  Cursor state lives in the MergedList, so
        sharing the underlying immutable lists is safe.
        """
        key = tuple(tokens)
        lists = self._merged_cache.get(key)
        if lists is None:
            self.merged_cache_misses += 1
            self._metrics.inc("merged_cache_misses_total")
            lists = []
            for token in key:
                found = self.inverted.get(token)
                if found is not None:
                    lists.append(found)
            self._merged_cache[key] = lists
        else:
            self.merged_cache_hits += 1
            self._metrics.inc("merged_cache_hits_total")
        return MergedList(lists)

    def packed_view(self) -> PackedIndex:
        """The columnar view used by the packed engine (built once)."""
        packed = self._packed
        if packed is None:
            with self._metrics.stage("pack_index"):
                packed = PackedIndex(
                    self.inverted, self.subtree_token_counts
                )
            self._packed = packed
        return packed

    def merged_list_packed(self, tokens: Iterable[str]) -> PackedMergedList:
        """Packed MergedList over the given variants.

        The *physical merge* of the variant columns is memoized, not
        just the list lookup: the same keyword recurs across queries,
        and re-merging costs O(postings log postings) while a cursor
        over cached columns costs O(1).
        """
        key = tuple(tokens)
        columns = self._packed_merged_cache.get(key)
        if columns is None:
            self.merged_cache_misses += 1
            self._metrics.inc("merged_cache_misses_total")
            view = self.packed_view()
            lists = []
            for token in key:
                found = view.get(token)
                if found is not None:
                    lists.append(found)
            columns = PackedMergedColumns(lists)
            self._packed_merged_cache[key] = columns
        else:
            self.merged_cache_hits += 1
            self._metrics.inc("merged_cache_hits_total")
        return PackedMergedList(columns=columns)

    def path_token_totals(self) -> dict[int, float]:
        """Σ |D(r)| over the nodes r of each label path.

        The normalizer W_p of Eq. 8 under the *length* entity prior
        (P(r|T) ∝ |D(r)|): longer entities are a priori more likely
        search targets.  Precomputed at construction (see
        ``path_token_totals_map``) so the query path is a dict lookup.
        """
        assert self.path_token_totals_map is not None
        return self.path_token_totals_map

    def max_path_depth(self) -> int:
        """Deepest label path in the corpus (precomputed)."""
        assert self.max_depth is not None
        return self.max_depth

    def _derive_path_token_totals(self) -> dict[int, float]:
        """One-pass derivation of W_p from the postings (build time)."""
        # Leaf lengths: total tokens per text-bearing node.
        leaf_lengths: dict[DeweyCode, int] = {}
        leaf_paths: dict[DeweyCode, int] = {}
        for token in self.inverted.tokens():
            for dewey, path_id, tf in self.inverted.list_for(token):
                leaf_lengths[dewey] = leaf_lengths.get(dewey, 0) + tf
                leaf_paths[dewey] = path_id
        totals: dict[int, float] = {}
        table = self.path_table
        for dewey, length in leaf_lengths.items():
            path_id = leaf_paths[dewey]
            for depth in range(1, len(dewey) + 1):
                ancestor = table.prefix_id(path_id, depth)
                totals[ancestor] = totals.get(ancestor, 0.0) + length
        return totals

    def describe(self) -> dict[str, int]:
        """Summary counters (used in logs and benchmark headers)."""
        return {
            "tokens": len(self.vocabulary),
            "postings": self.inverted.total_postings(),
            "paths": len(self.path_table),
            "total_occurrences": self.vocabulary.total_tokens,
        }


def build_corpus_index(
    document: XMLDocument, tokenizer: Tokenizer | None = None
) -> CorpusIndex:
    """Index an XML document in one document-order pass.

    Tokenization follows the supplied tokenizer (default: the paper's
    conventions — lowercase, no stop words, no numbers, length >= 3).
    """
    tokenizer = tokenizer or Tokenizer()
    path_table = PathTable()
    vocabulary = Vocabulary()
    postings_by_token: dict[str, list[tuple[DeweyCode, int, int]]] = {}
    subtree_counts: dict[DeweyCode, int] = {}
    path_node_counts: dict[int, int] = {}

    for node, path in document.iter_with_paths():
        path_id = path_table.intern(path)
        path_node_counts[path_id] = path_node_counts.get(path_id, 0) + 1
        if not node.text:
            continue
        counts: dict[str, int] = {}
        for token in tokenizer.iter_tokens(node.text):
            counts[token] = counts.get(token, 0) + 1
        if not counts:
            continue
        dewey = node.dewey
        assert dewey is not None
        for token, tf in counts.items():
            postings_by_token.setdefault(token, []).append(
                (dewey, path_id, tf)
            )
            vocabulary.add_occurrence(token, tf)
        vocabulary.register_element_doc(counts)
        length = sum(counts.values())
        for depth in range(1, len(dewey) + 1):
            prefix = dewey[:depth]
            subtree_counts[prefix] = subtree_counts.get(prefix, 0) + length

    inverted = InvertedIndex()
    path_index = PathIndex()
    for token, postings in postings_by_token.items():
        inverted.add_list(InvertedList(token, postings))
        path_index.set_counts(
            token, path_counts_from_postings(postings, path_table)
        )

    return CorpusIndex(
        name=document.name,
        path_table=path_table,
        inverted=inverted,
        path_index=path_index,
        vocabulary=vocabulary,
        subtree_token_counts=subtree_counts,
        path_node_counts=path_node_counts,
        tokenizer=tokenizer,
    )
