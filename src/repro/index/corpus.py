"""The corpus index: everything XClean needs at query time, in one object.

Built from an :class:`~repro.xmltree.document.XMLDocument` in a single
document-order pass, the :class:`CorpusIndex` bundles:

* the interned :class:`PathTable` of label paths;
* the Dewey-coded :class:`InvertedIndex` (Section V-C);
* the :class:`PathIndex` with the f_w^p counts (Section V-B);
* the :class:`Vocabulary` with background-model and PY08 statistics;
* subtree token counts ``|D(r)|`` for every node whose subtree contains
  at least one token (the virtual-document lengths of Eq. 6);
* per-path node counts (the normalizer N of Eq. 8).

The index is self-contained: suggesters never touch the original tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.index.inverted import InvertedIndex, InvertedList
from repro.index.merged_list import MergedList
from repro.index.path_index import PathIndex, path_counts_from_postings
from repro.index.tokenizer import Tokenizer
from repro.index.vocabulary import Vocabulary
from repro.xmltree.dewey import DeweyCode
from repro.xmltree.document import XMLDocument
from repro.xmltree.labelpath import PathTable


@dataclass
class CorpusIndex:
    """All index structures for one corpus (see module docstring)."""

    name: str
    path_table: PathTable
    inverted: InvertedIndex
    path_index: PathIndex
    vocabulary: Vocabulary
    subtree_token_counts: dict[DeweyCode, int]
    path_node_counts: dict[int, int]
    tokenizer: Tokenizer = field(default_factory=Tokenizer)

    # ------------------------------------------------------------------
    # Query-time accessors
    # ------------------------------------------------------------------

    def subtree_length(self, dewey: DeweyCode) -> int:
        """|D(r)| — token count of the virtual document rooted at r."""
        return self.subtree_token_counts.get(dewey, 0)

    def entity_count(self, path_id: int) -> int:
        """N — number of nodes of the given type in the document."""
        return self.path_node_counts.get(path_id, 0)

    def merged_list(self, tokens: Iterable[str]) -> MergedList:
        """MergedList over the inverted lists of the given variants."""
        lists = []
        for token in tokens:
            found = self.inverted.get(token)
            if found is not None:
                lists.append(found)
        return MergedList(lists)

    def path_token_totals(self) -> dict[int, float]:
        """Σ |D(r)| over the nodes r of each label path.

        The normalizer W_p of Eq. 8 under the *length* entity prior
        (P(r|T) ∝ |D(r)|): longer entities are a priori more likely
        search targets.  Derived lazily from the postings in one pass
        and cached — no extra persisted state.
        """
        cached = getattr(self, "_path_token_totals", None)
        if cached is not None:
            return cached
        # Leaf lengths: total tokens per text-bearing node.
        leaf_lengths: dict[DeweyCode, int] = {}
        leaf_paths: dict[DeweyCode, int] = {}
        for token in self.inverted.tokens():
            for dewey, path_id, tf in self.inverted.list_for(token):
                leaf_lengths[dewey] = leaf_lengths.get(dewey, 0) + tf
                leaf_paths[dewey] = path_id
        totals: dict[int, float] = {}
        table = self.path_table
        for dewey, length in leaf_lengths.items():
            path_id = leaf_paths[dewey]
            for depth in range(1, len(dewey) + 1):
                ancestor = table.prefix_id(path_id, depth)
                totals[ancestor] = totals.get(ancestor, 0.0) + length
        self._path_token_totals = totals
        return totals

    def max_path_depth(self) -> int:
        """Deepest label path in the corpus."""
        deepest = 0
        for labels in self.path_table:
            if len(labels) > deepest:
                deepest = len(labels)
        return deepest

    def describe(self) -> dict[str, int]:
        """Summary counters (used in logs and benchmark headers)."""
        return {
            "tokens": len(self.vocabulary),
            "postings": self.inverted.total_postings(),
            "paths": len(self.path_table),
            "total_occurrences": self.vocabulary.total_tokens,
        }


def build_corpus_index(
    document: XMLDocument, tokenizer: Tokenizer | None = None
) -> CorpusIndex:
    """Index an XML document in one document-order pass.

    Tokenization follows the supplied tokenizer (default: the paper's
    conventions — lowercase, no stop words, no numbers, length >= 3).
    """
    tokenizer = tokenizer or Tokenizer()
    path_table = PathTable()
    vocabulary = Vocabulary()
    postings_by_token: dict[str, list[tuple[DeweyCode, int, int]]] = {}
    subtree_counts: dict[DeweyCode, int] = {}
    path_node_counts: dict[int, int] = {}

    for node, path in document.iter_with_paths():
        path_id = path_table.intern(path)
        path_node_counts[path_id] = path_node_counts.get(path_id, 0) + 1
        if not node.text:
            continue
        counts: dict[str, int] = {}
        for token in tokenizer.iter_tokens(node.text):
            counts[token] = counts.get(token, 0) + 1
        if not counts:
            continue
        dewey = node.dewey
        assert dewey is not None
        for token, tf in counts.items():
            postings_by_token.setdefault(token, []).append(
                (dewey, path_id, tf)
            )
            vocabulary.add_occurrence(token, tf)
        vocabulary.register_element_doc(counts)
        length = sum(counts.values())
        for depth in range(1, len(dewey) + 1):
            prefix = dewey[:depth]
            subtree_counts[prefix] = subtree_counts.get(prefix, 0) + length

    inverted = InvertedIndex()
    path_index = PathIndex()
    for token, postings in postings_by_token.items():
        inverted.add_list(InvertedList(token, postings))
        path_index.set_counts(
            token, path_counts_from_postings(postings, path_table)
        )

    return CorpusIndex(
        name=document.name,
        path_table=path_table,
        inverted=inverted,
        path_index=path_index,
        vocabulary=vocabulary,
        subtree_token_counts=subtree_counts,
        path_node_counts=path_node_counts,
        tokenizer=tokenizer,
    )
