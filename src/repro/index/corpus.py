"""The corpus index: everything XClean needs at query time, in one object.

Built from an :class:`~repro.xmltree.document.XMLDocument` in a single
document-order pass, the :class:`CorpusIndex` bundles:

* the interned :class:`PathTable` of label paths;
* the Dewey-coded :class:`InvertedIndex` (Section V-C);
* the :class:`PathIndex` with the f_w^p counts (Section V-B);
* the :class:`Vocabulary` with background-model and PY08 statistics;
* subtree token counts ``|D(r)|`` for every node whose subtree contains
  at least one token (the virtual-document lengths of Eq. 6);
* per-path node counts (the normalizer N of Eq. 8).

The index is self-contained: suggesters never touch the original tree.
"""

from __future__ import annotations

import itertools
import sys
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

from repro.index.inverted import (
    InvertedIndex,
    InvertedList,
    PackedInvertedList,
)
from repro.index.merge_kernel import (
    DEFAULT_INTERSECTION_CACHE_SIZE,
    IntersectionCache,
)
from repro.index.merged_list import (
    MergedList,
    PackedMergedColumns,
    PackedMergedList,
)
from repro.index.path_index import PathIndex, path_counts_from_postings
from repro.index.tokenizer import Tokenizer
from repro.index.vocabulary import Vocabulary
from repro.obs.metrics import NULL_METRICS
from repro.xmltree.dewey import DeweyCode
from repro.xmltree.dewey_packed import DeweyPacker
from repro.xmltree.document import XMLDocument
from repro.xmltree.labelpath import PathTable


#: Default LRU bound of the merged-columns memo (per variant set).
DEFAULT_MERGED_CACHE_SIZE = 256


class PackedIndex:
    """The packed (columnar) view of a corpus — the fast query engine.

    Built once per corpus on first use and cached: a
    :class:`DeweyPacker` sized to the corpus, per-token columnar lists
    (packed lazily, so only tokens that queries actually touch pay the
    conversion), and the subtree token lengths re-keyed by packed Dewey
    so the scoring loop never materializes a tuple.
    """

    __slots__ = ("packer", "_inverted", "_lists", "_subtree_lengths",
                 "_empty")

    def __init__(self, inverted: InvertedIndex,
                 subtree_token_counts: dict[DeweyCode, int]):
        self.packer = DeweyPacker.for_codes(
            itertools.chain(
                (
                    code
                    for token in inverted.tokens()
                    for code, _pid, _tf in inverted.list_for(token)
                ),
                subtree_token_counts,
            )
        )
        self._inverted = inverted
        self._lists: dict[str, PackedInvertedList] = {}
        pack = self.packer.pack
        self._subtree_lengths: dict[int, int] = {
            pack(code): count
            for code, count in subtree_token_counts.items()
        }
        self._empty = PackedInvertedList("", [], [], [])

    @property
    def subtree_lengths(self) -> dict[int, int]:
        """|D(r)| keyed by packed Dewey code."""
        return self._subtree_lengths

    def get(self, token: str) -> PackedInvertedList | None:
        """Packed posting list for ``token``, or ``None`` if absent."""
        packed = self._lists.get(token)
        if packed is None:
            source = self._inverted.get(token)
            if source is None:
                return None
            packed = PackedInvertedList.from_inverted(source, self.packer)
            self._lists[token] = packed
        return packed


class QueryEngineMixin:
    """The query-time engine API shared by every corpus flavour.

    Both the in-memory :class:`CorpusIndex` and the mmap-backed
    :class:`~repro.index.snapshot.SnapshotCorpusIndex` expose the same
    accessors to the suggesters: memoized merged-list construction over
    the tuple and packed engines, precomputed Eq. 8 normalizers, and a
    metrics binding for the cache counters.  Subclasses must provide
    ``inverted``, ``path_node_counts``, ``path_token_totals_map``,
    ``max_depth``, and ``packed_view()``; the mixin owns the caches.
    """

    def _init_query_caches(self) -> None:
        # Query-time caches; `= None` sentinels keep CorpusIndex
        # picklable and the packed view lazily built.  Both merged-list
        # memos are LRU-bounded and keyed by (generation, variant set),
        # so a snapshot hot-swap that bumps the generation can never
        # serve stale columns.
        self._merged_cache: OrderedDict[
            tuple, list[InvertedList]
        ] = OrderedDict()
        self._packed_merged_cache: OrderedDict[
            tuple, PackedMergedColumns
        ] = OrderedDict()
        self.merged_cache_size: int | None = DEFAULT_MERGED_CACHE_SIZE
        self.merged_cache_hits = 0
        self.merged_cache_misses = 0
        self.merged_cache_evictions = 0
        #: Generation number of the data this index serves.  Bumped on
        #: a snapshot hot-swap (see ``bump_generation``); every
        #: generation-keyed cache entry from before the bump becomes
        #: unreachable.
        self.generation = 0
        #: Merge-kernel plan cache (``index/merge_kernel``): the
        #: precomputed group runs per variant-set intersection.
        self.intersection_cache = IntersectionCache(
            DEFAULT_INTERSECTION_CACHE_SIZE
        )
        self._metrics = NULL_METRICS

    def configure_query_caches(
        self,
        merged_cache_size: int | None = DEFAULT_MERGED_CACHE_SIZE,
        intersection_cache_size: int | None = (
            DEFAULT_INTERSECTION_CACHE_SIZE
        ),
    ) -> None:
        """Apply cache bounds from an :class:`XCleanConfig`.

        Idempotent: re-applying the current bounds touches nothing, so
        several suggesters sharing one corpus (the normal serving
        arrangement) do not thrash each other's warm caches.  Shrinking
        trims LRU-first; the last caller's bounds win.
        """
        if merged_cache_size != self.merged_cache_size:
            self.merged_cache_size = merged_cache_size
            self._trim_merged_caches()
        if intersection_cache_size != self.intersection_cache.capacity:
            self.intersection_cache.resize(intersection_cache_size)

    def bump_generation(self) -> None:
        """Invalidate every generation-keyed cache (snapshot hot-swap).

        The old entries are dropped eagerly — they are unreachable
        anyway (all lookups embed the new generation) and holding them
        would pin the previous snapshot's columns in memory.
        """
        self.generation += 1
        self._merged_cache.clear()
        self._packed_merged_cache.clear()
        self.intersection_cache.clear()

    def _trim_merged_caches(self) -> None:
        cap = self.merged_cache_size
        if cap is None:
            return
        for cache in (self._merged_cache, self._packed_merged_cache):
            while len(cache) > cap:
                cache.popitem(last=False)
                self.merged_cache_evictions += 1
                self._metrics.inc("merged_cache_evictions_total")

    def bind_metrics(self, metrics) -> None:
        """Attach a MetricsRegistry to the cache hooks.

        One registry per corpus (the last binding wins): a
        ``SuggestionService`` binds its own registry so the
        ``merged_cache_*`` counters and packed-view build time show up
        in its snapshot.  Pass ``None`` to detach.
        """
        self._metrics = metrics or NULL_METRICS

    # ------------------------------------------------------------------
    # Query-time accessors
    # ------------------------------------------------------------------

    def entity_count(self, path_id: int) -> int:
        """N — number of nodes of the given type in the document."""
        return self.path_node_counts.get(path_id, 0)

    def merged_list(self, tokens: Iterable[str]) -> MergedList:
        """MergedList over the inverted lists of the given variants.

        The per-variant-set list lookup is memoized: the same keyword
        (hence the same variant set) recurs across queries, and
        resolving dozens of token strings to posting lists on every
        query is measurable.  Cursor state lives in the MergedList, so
        sharing the underlying immutable lists is safe.
        """
        cache = self._merged_cache
        key = (self.generation, tuple(tokens))
        lists = cache.get(key)
        if lists is None:
            self.merged_cache_misses += 1
            self._metrics.inc("merged_cache_misses_total")
            lists = []
            for token in key[1]:
                found = self.inverted.get(token)
                if found is not None:
                    lists.append(found)
            cache[key] = lists
            self._trim_merged_caches()
        else:
            cache.move_to_end(key)
            self.merged_cache_hits += 1
            self._metrics.inc("merged_cache_hits_total")
        return MergedList(lists)

    def merged_list_packed(self, tokens: Iterable[str]) -> PackedMergedList:
        """Packed MergedList over the given variants.

        The *physical merge* of the variant columns is memoized, not
        just the list lookup: the same keyword recurs across queries,
        and re-merging costs O(postings log postings) while a cursor
        over cached columns costs O(1).
        """
        cache = self._packed_merged_cache
        key = (self.generation, tuple(tokens))
        columns = cache.get(key)
        if columns is None:
            self.merged_cache_misses += 1
            self._metrics.inc("merged_cache_misses_total")
            view = self.packed_view()
            lists = []
            for token in key[1]:
                found = view.get(token)
                if found is not None:
                    lists.append(found)
            columns = PackedMergedColumns(lists)
            cache[key] = columns
            self._trim_merged_caches()
        else:
            cache.move_to_end(key)
            self.merged_cache_hits += 1
            self._metrics.inc("merged_cache_hits_total")
        return PackedMergedList(columns=columns)

    def path_token_totals(self) -> dict[int, float]:
        """Σ |D(r)| over the nodes r of each label path.

        The normalizer W_p of Eq. 8 under the *length* entity prior
        (P(r|T) ∝ |D(r)|): longer entities are a priori more likely
        search targets.  Precomputed at construction (see
        ``path_token_totals_map``) so the query path is a dict lookup.
        """
        assert self.path_token_totals_map is not None
        return self.path_token_totals_map

    def max_path_depth(self) -> int:
        """Deepest label path in the corpus (precomputed)."""
        assert self.max_depth is not None
        return self.max_depth


@dataclass
class CorpusIndex(QueryEngineMixin):
    """All index structures for one corpus (see module docstring)."""

    name: str
    path_table: PathTable
    inverted: InvertedIndex
    path_index: PathIndex
    vocabulary: Vocabulary
    subtree_token_counts: dict[DeweyCode, int]
    path_node_counts: dict[int, int]
    tokenizer: Tokenizer = field(default_factory=Tokenizer)
    #: W_p of Eq. 8 per path id; precomputed at build time (and
    #: persisted), derived here only for hand-assembled indexes.
    path_token_totals_map: dict[int, float] | None = None
    #: Deepest label path; precomputed for the same reason.
    max_depth: int | None = None

    def __post_init__(self):
        if self.path_token_totals_map is None:
            self.path_token_totals_map = self._derive_path_token_totals()
        if self.max_depth is None:
            self.max_depth = max(
                (len(labels) for labels in self.path_table), default=0
            )
        self._packed: PackedIndex | None = None
        self._init_query_caches()

    def subtree_length(self, dewey: DeweyCode) -> int:
        """|D(r)| — token count of the virtual document rooted at r."""
        return self.subtree_token_counts.get(dewey, 0)

    def packed_view(self) -> PackedIndex:
        """The columnar view used by the packed engine (built once)."""
        packed = self._packed
        if packed is None:
            with self._metrics.stage("pack_index"):
                packed = PackedIndex(
                    self.inverted, self.subtree_token_counts
                )
            self._packed = packed
        return packed

    def _derive_path_token_totals(self) -> dict[int, float]:
        """One-pass derivation of W_p from the postings (build time)."""
        # Leaf lengths: total tokens per text-bearing node.
        leaf_lengths: dict[DeweyCode, int] = {}
        leaf_paths: dict[DeweyCode, int] = {}
        for token in self.inverted.tokens():
            for dewey, path_id, tf in self.inverted.list_for(token):
                leaf_lengths[dewey] = leaf_lengths.get(dewey, 0) + tf
                leaf_paths[dewey] = path_id
        totals: dict[int, float] = {}
        table = self.path_table
        for dewey, length in leaf_lengths.items():
            path_id = leaf_paths[dewey]
            for depth in range(1, len(dewey) + 1):
                ancestor = table.prefix_id(path_id, depth)
                totals[ancestor] = totals.get(ancestor, 0.0) + length
        return totals

    def describe(self, generator=None) -> dict:
        """Summary counters (used in logs and benchmark headers).

        Besides the classic counts, the ``approx_bytes`` sub-dict gives
        an approximate in-memory size breakdown — tuple postings,
        packed columns (when built), vocabulary, subtree lengths, and
        (when a :class:`~repro.fastss.generator.VariantGenerator` is
        passed) its FastSS deletion-neighborhood buckets — so snapshot
        savings are verifiable number against number.
        """
        return {
            "tokens": len(self.vocabulary),
            "postings": self.inverted.total_postings(),
            "paths": len(self.path_table),
            "total_occurrences": self.vocabulary.total_tokens,
            "approx_bytes": approximate_index_bytes(
                self, generator=generator
            ),
        }


#: Amortized bytes per dict entry (key/value slots, hash, and the
#: boxed small value), calibrated against CPython 3.10-3.12 dicts at
#: typical fill factors.  An estimate, not an audit: ``describe`` only
#: needs the breakdown to be *comparable* across corpus flavours.
_DICT_ENTRY_BYTES = 104


def _bucket_table_bytes(buckets: dict[str, list[str]]) -> int:
    """Approximate bytes of one FastSS signature → tokens table.

    Token strings are shared with the vocabulary, so each bucket slot
    is charged a pointer, not the string.
    """
    sizeof = sys.getsizeof
    total = sizeof(buckets)
    for signature, tokens in buckets.items():
        total += sizeof(signature) + sizeof(tokens) + 8 * len(tokens)
    return total


def fastss_bucket_bytes(generator) -> int:
    """Approximate bytes held by a generator's FastSS bucket tables.

    Accepts a :class:`~repro.fastss.generator.VariantGenerator` or a
    bare variant index; handles both the plain and the partitioned
    (short + prefix + suffix tables) layouts.
    """
    index = getattr(generator, "_index", generator)
    total = 0
    buckets = getattr(index, "_buckets", None)
    if buckets is not None:
        total += _bucket_table_bytes(buckets)
    short = getattr(index, "_short", None)
    if short is not None:
        total += _bucket_table_bytes(short._buckets)
    for attr in ("_prefix_buckets", "_suffix_buckets"):
        table = getattr(index, attr, None)
        if table is not None:
            total += _bucket_table_bytes(table)
    return total


def approximate_index_bytes(index, generator=None) -> dict[str, int]:
    """Approximate in-memory footprint of the index structures (bytes).

    Deterministic for equal indexes: every term derives from element
    counts and ``sys.getsizeof`` of the stored objects, both of which
    survive a persistence round-trip — which is what lets the
    round-trip tests compare ``describe()`` outputs with ``==``.

    ``postings_packed`` is the footprint the columnar engine pays (one
    int64 key plus two int32 side columns per posting), reported
    whether or not the packed view has been built yet, so the tuple vs
    packed vs snapshot comparison is always available.
    """
    sizeof = sys.getsizeof
    inverted = index.inverted

    postings_tuple = 0
    postings_packed = 0
    for token in inverted.tokens():
        lst = inverted.list_for(token)
        n = len(lst)
        postings_tuple += sizeof(lst.postings)
        postings_packed += 16 * n + 3 * 64
        if n == 0:
            continue
        first = lst[0]
        # Per posting: the 3-tuple, its Dewey tuple, and the list slot.
        # Dewey components are small ints (interned), charged nothing.
        postings_tuple += n * (sizeof(first) + sizeof(first[0]) + 8)

    vocabulary = 0
    for token, _cf, df, max_rel in index.vocabulary.export_rows():
        vocabulary += sizeof(token) + _DICT_ENTRY_BYTES
        if df:
            vocabulary += _DICT_ENTRY_BYTES
        if max_rel:
            vocabulary += _DICT_ENTRY_BYTES + sizeof(max_rel)

    subtree_lengths = sizeof(index.subtree_token_counts)
    for dewey in index.subtree_token_counts:
        subtree_lengths += sizeof(dewey) + _DICT_ENTRY_BYTES

    path_index_bytes = 0
    for token in index.path_index.tokens():
        counts = index.path_index.counts_for(token)
        path_index_bytes += (
            sizeof(token)
            + sizeof(counts)
            + len(counts) * _DICT_ENTRY_BYTES
        )

    # Merge-kernel plan cache (bounded LRU; zero until queries populate
    # it) — surfaced so its budget is auditable next to the structures
    # it shadows.
    plan_cache = getattr(index, "intersection_cache", None)
    breakdown = {
        "postings_tuple": postings_tuple,
        "postings_packed": postings_packed,
        "vocabulary": vocabulary,
        "subtree_lengths": subtree_lengths,
        "path_index": path_index_bytes,
        "merge_plans": (
            plan_cache.approx_bytes() if plan_cache is not None else 0
        ),
    }
    if generator is not None:
        breakdown["fastss_buckets"] = fastss_bucket_bytes(generator)
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def build_corpus_index(
    document: XMLDocument, tokenizer: Tokenizer | None = None
) -> CorpusIndex:
    """Index an XML document in one document-order pass.

    Tokenization follows the supplied tokenizer (default: the paper's
    conventions — lowercase, no stop words, no numbers, length >= 3).
    """
    tokenizer = tokenizer or Tokenizer()
    path_table = PathTable()
    vocabulary = Vocabulary()
    postings_by_token: dict[str, list[tuple[DeweyCode, int, int]]] = {}
    subtree_counts: dict[DeweyCode, int] = {}
    path_node_counts: dict[int, int] = {}

    for node, path in document.iter_with_paths():
        path_id = path_table.intern(path)
        path_node_counts[path_id] = path_node_counts.get(path_id, 0) + 1
        if not node.text:
            continue
        counts: dict[str, int] = {}
        for token in tokenizer.iter_tokens(node.text):
            counts[token] = counts.get(token, 0) + 1
        if not counts:
            continue
        dewey = node.dewey
        assert dewey is not None
        for token, tf in counts.items():
            postings_by_token.setdefault(token, []).append(
                (dewey, path_id, tf)
            )
            vocabulary.add_occurrence(token, tf)
        vocabulary.register_element_doc(counts)
        length = sum(counts.values())
        for depth in range(1, len(dewey) + 1):
            prefix = dewey[:depth]
            subtree_counts[prefix] = subtree_counts.get(prefix, 0) + length

    inverted = InvertedIndex()
    path_index = PathIndex()
    for token, postings in postings_by_token.items():
        inverted.add_list(InvertedList(token, postings))
        path_index.set_counts(
            token, path_counts_from_postings(postings, path_table)
        )

    return CorpusIndex(
        name=document.name,
        path_table=path_table,
        inverted=inverted,
        path_index=path_index,
        vocabulary=vocabulary,
        subtree_token_counts=subtree_counts,
        path_node_counts=path_node_counts,
        tokenizer=tokenizer,
    )
