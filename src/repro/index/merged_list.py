"""The MergedList abstraction (Section V-C).

Given the list of variants for one query keyword, ``MergedList``
organizes their inverted lists as if physically merged into one
document-ordered list, via a min-heap of the member lists' heads:

* ``cur_pos()`` — the head (smallest Dewey code) without consuming it;
* ``next()`` — pop the head, pull the next posting of that member list
  into the heap;
* ``skip_to(dewey)`` — discard every posting smaller than ``dewey`` in
  all member lists (galloping search per list), rebuild the heap, and
  return the new head.

Each yielded entry carries the originating token, because Algorithm 1
needs to know *which variant* occurred at a position.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.index.inverted import InvertedList, ListCursor
from repro.xmltree.dewey import DeweyCode

#: An entry of the merged list: (dewey, path_id, tf, token).
MergedEntry = tuple[DeweyCode, int, int, str]


class MergedList:
    """Document-ordered merge of the variant lists of one keyword."""

    def __init__(self, lists: Iterable[InvertedList]):
        self._cursors = [ListCursor(lst) for lst in lists]
        self._heap: list[tuple[DeweyCode, int]] = []
        for index, cursor in enumerate(self._cursors):
            head = cursor.current()
            if head is not None:
                self._heap.append((head[0], index))
        heapq.heapify(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def cur_pos(self) -> MergedEntry | None:
        """The head of the merged list, or ``None`` when exhausted."""
        if not self._heap:
            return None
        _dewey, index = self._heap[0]
        cursor = self._cursors[index]
        posting = cursor.current()
        assert posting is not None
        return (*posting, cursor.source.token)

    def next(self) -> MergedEntry | None:
        """Pop and return the head; ``None`` when exhausted."""
        if not self._heap:
            return None
        _dewey, index = heapq.heappop(self._heap)
        cursor = self._cursors[index]
        posting = cursor.advance()
        assert posting is not None
        following = cursor.current()
        if following is not None:
            heapq.heappush(self._heap, (following[0], index))
        return (*posting, cursor.source.token)

    def head_dewey(self) -> DeweyCode | None:
        """Dewey code of the head, without materializing the entry.

        O(1); used by the anchor-selection loop of Algorithm 1, which
        inspects heads far more often than it consumes them.
        """
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop_subtree(self, group: DeweyCode) -> list[MergedEntry]:
        """Pop every entry under ``group`` (Lines 9–11 of Algorithm 1).

        Equivalent to repeated ``cur_pos``/``next`` with an
        ancestor-or-self test, but touches the heap head directly.
        """
        out: list[MergedEntry] = []
        heap = self._heap
        cursors = self._cursors
        depth = len(group)
        while heap:
            dewey, index = heap[0]
            if dewey[:depth] != group:
                break
            heapq.heappop(heap)
            cursor = cursors[index]
            posting = cursor.advance()
            assert posting is not None
            out.append((*posting, cursor.source.token))
            following = cursor.current()
            if following is not None:
                heapq.heappush(heap, (following[0], index))
        return out

    def skip_to(self, dewey: DeweyCode) -> MergedEntry | None:
        """Discard all entries with code < ``dewey``; return the new head.

        Implemented per the paper: skip in each member list (binary /
        exponential search), then rebuild the min-heap.
        """
        self._heap = []
        for index, cursor in enumerate(self._cursors):
            head = cursor.skip_to(dewey)
            if head is not None:
                self._heap.append((head[0], index))
        heapq.heapify(self._heap)
        return self.cur_pos()

    # ------------------------------------------------------------------
    # Introspection used by benchmarks and tests
    # ------------------------------------------------------------------

    @property
    def total_reads(self) -> int:
        """Postings consumed via ``next`` across member lists."""
        return sum(c.reads for c in self._cursors)

    @property
    def total_skips(self) -> int:
        """Postings jumped over via ``skip_to`` across member lists."""
        return sum(c.skips for c in self._cursors)

    def drain(self) -> list[MergedEntry]:
        """Consume the remainder of the merged list (testing aid)."""
        out = []
        while True:
            entry = self.next()
            if entry is None:
                return out
            out.append(entry)
