"""The MergedList abstraction (Section V-C).

Given the list of variants for one query keyword, ``MergedList``
organizes their inverted lists as if physically merged into one
document-ordered list, via a min-heap of the member lists' heads:

* ``cur_pos()`` — the head (smallest Dewey code) without consuming it;
* ``next()`` — pop the head, pull the next posting of that member list
  into the heap;
* ``skip_to(dewey)`` — discard every posting smaller than ``dewey`` in
  all member lists (galloping search per list), rebuild the heap, and
  return the new head.

Each yielded entry carries the originating token, because Algorithm 1
needs to know *which variant* occurred at a position.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Iterable

from repro.index.inverted import (
    InvertedList,
    ListCursor,
    PackedInvertedList,
)
from repro.index.merge_kernel import gallop_left
from repro.xmltree.dewey import DeweyCode

#: An entry of the merged list: (dewey, path_id, tf, token).
MergedEntry = tuple[DeweyCode, int, int, str]

#: An entry of the packed merged list: (packed_key, path_id, tf, token).
PackedEntry = tuple[int, int, int, str]


def _next_columns_uid(_counter=iter(range(1, 1 << 62)).__next__) -> int:
    """Process-wide unique id for PackedMergedColumns instances.

    Monotonic and never reused (unlike ``id()``), so a cache keyed on
    uids can never alias a dead columns object with a new one."""
    return _counter()


class MergedList:
    """Document-ordered merge of the variant lists of one keyword."""

    def __init__(self, lists: Iterable[InvertedList]):
        self._cursors = [ListCursor(lst) for lst in lists]
        self._heap: list[tuple[DeweyCode, int]] = []
        for index, cursor in enumerate(self._cursors):
            head = cursor.current()
            if head is not None:
                self._heap.append((head[0], index))
        heapq.heapify(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def cur_pos(self) -> MergedEntry | None:
        """The head of the merged list, or ``None`` when exhausted."""
        if not self._heap:
            return None
        _dewey, index = self._heap[0]
        cursor = self._cursors[index]
        posting = cursor.current()
        assert posting is not None
        return (*posting, cursor.source.token)

    def next(self) -> MergedEntry | None:
        """Pop and return the head; ``None`` when exhausted."""
        if not self._heap:
            return None
        _dewey, index = heapq.heappop(self._heap)
        cursor = self._cursors[index]
        posting = cursor.advance()
        assert posting is not None
        following = cursor.current()
        if following is not None:
            heapq.heappush(self._heap, (following[0], index))
        return (*posting, cursor.source.token)

    def head_dewey(self) -> DeweyCode | None:
        """Dewey code of the head, without materializing the entry.

        O(1); used by the anchor-selection loop of Algorithm 1, which
        inspects heads far more often than it consumes them.
        """
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop_subtree(self, group: DeweyCode) -> list[MergedEntry]:
        """Pop every entry under ``group`` (Lines 9–11 of Algorithm 1).

        Equivalent to repeated ``cur_pos``/``next`` with an
        ancestor-or-self test, but touches the heap head directly.
        """
        out: list[MergedEntry] = []
        heap = self._heap
        cursors = self._cursors
        depth = len(group)
        while heap:
            dewey, index = heap[0]
            if dewey[:depth] != group:
                break
            heapq.heappop(heap)
            cursor = cursors[index]
            posting = cursor.advance()
            assert posting is not None
            out.append((*posting, cursor.source.token))
            following = cursor.current()
            if following is not None:
                heapq.heappush(heap, (following[0], index))
        return out

    def skip_to(self, dewey: DeweyCode) -> MergedEntry | None:
        """Discard all entries with code < ``dewey``; return the new head.

        Implemented per the paper: skip in each member list (binary /
        exponential search), then rebuild the min-heap.
        """
        self._heap = []
        for index, cursor in enumerate(self._cursors):
            head = cursor.skip_to(dewey)
            if head is not None:
                self._heap.append((head[0], index))
        heapq.heapify(self._heap)
        return self.cur_pos()

    # ------------------------------------------------------------------
    # Introspection used by benchmarks and tests
    # ------------------------------------------------------------------

    @property
    def total_reads(self) -> int:
        """Postings consumed via ``next`` across member lists."""
        return sum(c.reads for c in self._cursors)

    @property
    def total_skips(self) -> int:
        """Postings jumped over via ``skip_to`` across member lists."""
        return sum(c.skips for c in self._cursors)

    def drain(self) -> list[MergedEntry]:
        """Consume the remainder of the merged list (testing aid)."""
        out = []
        while True:
            entry = self.next()
            if entry is None:
                return out
            out.append(entry)


class PackedMergedColumns:
    """The variant lists of one keyword, physically merged (immutable).

    Packed Dewey keys sort globally, so the member lists can be merged
    once into four parallel columns sorted by key.  Two consequences
    make the query-time cursor trivial:

    * ``skip_to`` is a single C-level bisect over the key column — no
      per-member galloping, no heap rebuild;
    * every subtree is a *contiguous* key range (descendants of a node
      share its packed prefix and nothing else sorts between them), so
      ``pop_subtree`` pops one slice found by a second bisect.

    The merge is paid once per variant set and memoized on the corpus;
    :class:`PackedMergedList` cursors share the columns.
    """

    __slots__ = ("keys", "path_ids", "tfs", "token_ids", "tokens",
                 "length", "uid")

    def __init__(self, lists: Iterable[PackedInvertedList]):
        members = list(lists)
        self.tokens = [lst.token for lst in members]
        #: Never-reused identity for plan-cache keys: the corpus memoizes
        #: columns per variant set, so while an instance stays cached its
        #: uid names that variant set in O(1) — no token-tuple hashing on
        #: the query path.  A rebuilt instance gets a fresh uid and the
        #: old plans simply age out of the LRU.
        self.uid = _next_columns_uid()
        rows = [
            (lst.keys[i], member, lst.path_ids[i], lst.tfs[i])
            for member, lst in enumerate(members)
            for i in range(len(lst.keys))
        ]
        # Keys ascending, ties broken by member index — exactly the
        # order a (key, member) min-heap merge would yield.
        rows.sort()
        # Snapshot-backed lists carry memoryview columns; they hold
        # int64 keys just like array('q'), so the merged keys stay a
        # machine-int column (only >63-bit packers fall through).
        if all(
            isinstance(lst.keys, (array, memoryview)) for lst in members
        ):
            self.keys: list[int] | array = array(
                "q", (row[0] for row in rows)
            )
        else:
            self.keys = [row[0] for row in rows]
        self.token_ids = array("i", (row[1] for row in rows))
        self.path_ids = array("i", (row[2] for row in rows))
        self.tfs = array("i", (row[3] for row in rows))
        self.length = len(rows)

    def slice_by_token(
        self, start: int, end: int
    ) -> dict[str, list[PackedEntry]]:
        """Materialize ``[start, end)`` grouped by originating token.

        The group-collection step of Algorithm 1 (Lines 9-11) in one
        call: entries come out in column (document) order within each
        token list, which is what keeps candidate enumeration — and
        hence score accumulation — deterministic across the classic
        loop, the kernel, and plan replays.
        """
        keys = self.keys
        path_ids = self.path_ids
        tfs = self.tfs
        token_ids = self.token_ids
        tokens = self.tokens
        by_token: dict[str, list[PackedEntry]] = {}
        for j in range(start, end):
            token = tokens[token_ids[j]]
            entry = (keys[j], path_ids[j], tfs[j], token)
            found = by_token.get(token)
            if found is None:
                by_token[token] = [entry]
            else:
                found.append(entry)
        return by_token


class PackedMergedList:
    """Cursor over the physically merged variant lists of one keyword.

    Same contract as :class:`MergedList`, but the merge already
    happened at construction (:class:`PackedMergedColumns`), so every
    operation is a position bump or a bisect over an int column.
    Entries are ``(packed_key, path_id, tf, token)``.
    """

    __slots__ = ("columns", "position", "reads", "skips")

    def __init__(
        self,
        lists: Iterable[PackedInvertedList] | None = None,
        *,
        columns: PackedMergedColumns | None = None,
    ):
        if columns is None:
            columns = PackedMergedColumns(
                [] if lists is None else lists
            )
        self.columns = columns
        self.position = 0
        self.reads = 0
        self.skips = 0

    def __bool__(self) -> bool:
        return self.position < self.columns.length

    def head_key(self) -> int | None:
        """Packed key of the head; O(1), no entry materialized."""
        columns = self.columns
        position = self.position
        if position >= columns.length:
            return None
        return columns.keys[position]

    def cur_pos(self) -> PackedEntry | None:
        """The head entry without consuming it."""
        columns = self.columns
        position = self.position
        if position >= columns.length:
            return None
        return (
            columns.keys[position],
            columns.path_ids[position],
            columns.tfs[position],
            columns.tokens[columns.token_ids[position]],
        )

    def next(self) -> PackedEntry | None:
        """Pop and return the head; ``None`` when exhausted."""
        entry = self.cur_pos()
        if entry is not None:
            self.position += 1
            self.reads += 1
        return entry

    def pop_subtree(self, group: int, shift: int) -> list[PackedEntry]:
        """Pop every entry under ``group`` (Lines 9–11 of Algorithm 1).

        ``shift`` is ``packer.shift_for(depth(group))``: a key belongs
        to the group iff ``key >> shift == group >> shift``.  The head
        must itself be in the group (callers ``skip_to(group)`` first);
        the group then ends at the first key reaching the next prefix,
        found by one bisect.
        """
        columns = self.columns
        keys = columns.keys
        position = self.position
        prefix = group >> shift
        if position >= columns.length or (
            keys[position] >> shift
        ) != prefix:
            return []
        end = gallop_left(
            keys, (prefix + 1) << shift, position, columns.length
        )
        path_ids = columns.path_ids
        tfs = columns.tfs
        token_ids = columns.token_ids
        tokens = columns.tokens
        out = [
            (keys[i], path_ids[i], tfs[i], tokens[token_ids[i]])
            for i in range(position, end)
        ]
        self.reads += end - position
        self.position = end
        return out

    def skip_to(self, key: int) -> PackedEntry | None:
        """Discard all entries with key < ``key``; return the new head.

        Galloping (exponential probe + bisect) from the cursor: skips
        in Algorithm 1 are local, so the probe window is usually a few
        entries wide regardless of how much list remains.
        """
        columns = self.columns
        new_position = gallop_left(
            columns.keys, key, self.position, columns.length
        )
        self.skips += new_position - self.position
        self.position = new_position
        return self.cur_pos()

    @property
    def total_reads(self) -> int:
        """Postings consumed via ``next``/``pop_subtree``."""
        return self.reads

    @property
    def total_skips(self) -> int:
        """Postings jumped over via ``skip_to``."""
        return self.skips

    def drain(self) -> list[PackedEntry]:
        """Consume the remainder of the merged list (testing aid)."""
        out = []
        while True:
            entry = self.next()
            if entry is None:
                return out
            out.append(entry)
