"""The batch merge kernel: galloping intersection over packed columns.

Algorithm 1's merge loop repeatedly asks one question of every merged
variant list: *where does the current subtree group start and end in
your key column?*  The classic packed loop answers with a full-range
``bisect_left`` per probe; this module supplies the two layers that
make the question (almost) free:

* :func:`gallop_left` — an exponential-probe ("galloping") search that
  brackets the target from the cursor's current position before handing
  off to a C-level ``bisect_left``.  Skips in Algorithm 1 are local
  (the next group is usually near the previous one), so the probe
  window stays tiny and the cost per group drops from
  O(log n_remaining) to O(log distance).

* :class:`MergePlan` / :class:`IntersectionCache` — the sequence of
  complete subtree groups produced by merging a fixed set of variant
  columns is *deterministic* for a given index: the same keyword (hence
  the same variant set) recurs across queries, so the kernel records
  every group it discovers — per-list slice boundaries, read/skip
  deltas, and the fully materialized per-token occurrence dicts — into
  a plan and memoizes it keyed by ``(snapshot generation, variant
  columns, min_depth)``.  A cache hit replays the plan: no anchor
  scans, no bisects, no per-posting materialization — just one
  deadline/fault check and one scoring call per group.

Plans record *deltas*, not just totals, so a deadline can expire
mid-replay and the postings read/skipped counters still agree with the
groups actually processed (the anytime contract of
``core/deadline.py``).  Plans interrupted by a deadline or a fault are
never cached.
"""

from __future__ import annotations

import sys
from bisect import bisect_left
from collections import OrderedDict

#: Default LRU bound of the per-corpus :class:`IntersectionCache`.
#: Sized above the working set of a head-heavy query log: an LRU
#: scanned sequentially by more distinct variant sets than its capacity
#: hits zero percent, so undersizing does not merely degrade — it turns
#: every query into plan-recording overhead with no replays.
DEFAULT_INTERSECTION_CACHE_SIZE = 256


def gallop_left(keys, target: int, lo: int, hi: int) -> int:
    """First index in ``[lo, hi)`` whose key is ``>= target``.

    Exponential probe from ``lo`` (1, 2, 4, ... steps) to bracket the
    answer, then a C-level ``bisect_left`` inside the bracket.
    Equivalent to ``bisect_left(keys, target, lo, hi)`` for sorted
    ``keys``, but O(log distance) instead of O(log (hi - lo)) when the
    answer is near ``lo`` — the common case for Algorithm 1's skips.
    """
    if lo >= hi or keys[lo] >= target:
        return lo
    # Invariant: keys[prev] < target.
    prev = lo
    step = 1
    probe = lo + 1
    while probe < hi and keys[probe] < target:
        prev = probe
        step <<= 1
        probe = lo + step
    # Answer lies in (prev, min(probe, hi)].
    return bisect_left(keys, target, prev + 1, min(probe, hi))


class GroupRun:
    """One complete subtree group discovered by the kernel.

    ``ends[i]`` is list i's absolute cursor position after draining the
    group; ``reads[i]``/``skips[i]`` are the postings consumed/jumped
    by list i *since the previous complete group* (shallow heads and
    incomplete groups in between are charged to this run, exactly as
    the live loop pays them on the way to this group).
    ``occurrences[i]`` is the materialized token → entries dict the
    scoring stage consumes; entries are immutable tuples shared across
    replays.
    """

    __slots__ = ("key", "ends", "reads", "skips", "occurrences")

    def __init__(self, key, ends, reads, skips, occurrences):
        self.key = key
        self.ends = ends
        self.reads = reads
        self.skips = skips
        self.occurrences = occurrences


class MergePlan:
    """The full group sequence of one merged-variant-set intersection.

    ``tail_*`` account for the postings consumed/skipped after the last
    complete group up to loop exhaustion, so a replayed full run lands
    on byte-identical ``postings_read``/``postings_skipped`` totals.
    """

    __slots__ = ("runs", "tail_ends", "tail_reads", "tail_skips")

    def __init__(self, runs, tail_ends, tail_reads, tail_skips):
        self.runs = runs
        self.tail_ends = tail_ends
        self.tail_reads = tail_reads
        self.tail_skips = tail_skips

    @property
    def groups(self) -> int:
        return len(self.runs)

    def approx_bytes(self) -> int:
        """Approximate in-memory footprint of the plan.

        Entry tuples dominate; strings are shared with the vocabulary
        and charged as pointers.
        """
        sizeof = sys.getsizeof
        total = sizeof(self.runs)
        for run in self.runs:
            total += 200  # run object + the three small tuples
            for by_token in run.occurrences:
                total += sizeof(by_token)
                for entries in by_token.values():
                    total += sizeof(entries) + 112 * len(entries)
        return total


class IntersectionCache:
    """Bounded, generation-keyed LRU of :class:`MergePlan` objects.

    Owned by the corpus index (one per corpus flavour); keys embed the
    snapshot generation, so bumping the generation makes every cached
    plan unreachable — a future hot-swap can never serve stale runs.
    ``capacity=None`` disables caching entirely (every lookup misses
    and nothing is stored); ``0`` is rejected at the config layer.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_plans")

    def __init__(self, capacity: int | None = DEFAULT_INTERSECTION_CACHE_SIZE):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._plans: OrderedDict[tuple, MergePlan] = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def enabled(self) -> bool:
        return self.capacity is not None

    def get(self, key) -> MergePlan | None:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key, plan: MergePlan) -> None:
        capacity = self.capacity
        if capacity is None:
            return
        plans = self._plans
        if key in plans:
            plans.move_to_end(key)
            plans[key] = plan
            return
        while len(plans) >= capacity:
            plans.popitem(last=False)
            self.evictions += 1
        plans[key] = plan

    def resize(self, capacity: int | None) -> None:
        """Change the bound, trimming LRU-first if shrinking.

        ``None`` disables the cache *and* drops every stored plan —
        a disabled cache is never consulted, so keeping the plans
        would only pin their columns in memory.
        """
        self.capacity = capacity
        plans = self._plans
        if capacity is None:
            if plans:
                self.evictions += len(plans)
                plans.clear()
            return
        while len(plans) > capacity:
            plans.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._plans.clear()

    def approx_bytes(self) -> int:
        """Approximate footprint of every cached plan (describe())."""
        return sum(plan.approx_bytes() for plan in self._plans.values())
