"""The path index: f_w^p counts for result-type inference (Section V-B).

For result-type inference (Eq. 7) XClean needs, for each keyword ``w``,
the list of label paths ``p`` with the count ``f_w^p`` — the number of
nodes whose label path is ``p`` and whose *subtree* contains ``w``.

Building this without materializing ancestor sets exploits document
order: in a sorted posting list, the ancestors-or-self of consecutive
postings share Dewey prefixes, so the number of distinct ancestors at
depth k equals the number of distinct length-k prefixes — countable in a
single scan by comparing each posting's Dewey code with its predecessor.
The label path of the depth-k ancestor is the posting's label path
truncated to k labels.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.index.inverted import Posting
from repro.xmltree.labelpath import PathTable


class PathIndex:
    """Token → { path_id: f_w^p } mapping."""

    def __init__(self):
        self._by_token: dict[str, dict[int, int]] = {}

    def __contains__(self, token: str) -> bool:
        return token in self._by_token

    def __len__(self) -> int:
        return len(self._by_token)

    def tokens(self) -> Iterable[str]:
        return self._by_token.keys()

    def set_counts(self, token: str, counts: dict[int, int]) -> None:
        """Install the completed count map for ``token``."""
        self._by_token[token] = counts

    def counts_for(self, token: str) -> Mapping[int, int]:
        """``{path_id: f_w^p}`` for a token; empty mapping if unknown."""
        return self._by_token.get(token, {})

    def f(self, token: str, path_id: int) -> int:
        """The single count f_w^p (0 when the pair never co-occurs)."""
        return self._by_token.get(token, {}).get(path_id, 0)


def path_counts_from_postings(
    postings: Iterable[Posting], path_table: PathTable
) -> dict[int, int]:
    """Compute ``{path_id: f_w^p}`` from one token's sorted postings.

    Counts distinct ancestor-or-self nodes per label path using the
    prefix-scan described in the module docstring.
    """
    counts: dict[int, int] = {}
    previous: tuple[int, ...] = ()
    for dewey, path_id, _tf in postings:
        # Length of the common prefix with the previous posting.
        limit = min(len(previous), len(dewey))
        shared = 0
        while shared < limit and previous[shared] == dewey[shared]:
            shared += 1
        # Ancestors at depths 1..shared were already counted for this
        # token; depths shared+1..len(dewey) are new distinct nodes.
        for depth in range(shared + 1, len(dewey) + 1):
            ancestor_path = path_table.prefix_id(path_id, depth)
            counts[ancestor_path] = counts.get(ancestor_path, 0) + 1
        previous = dewey
    return counts


def build_path_index(
    lists: Iterable[tuple[str, Iterable[Posting]]], path_table: PathTable
) -> PathIndex:
    """Build a :class:`PathIndex` for all tokens from their postings."""
    index = PathIndex()
    for token, postings in lists:
        index.set_counts(
            token, path_counts_from_postings(postings, path_table)
        )
    return index
