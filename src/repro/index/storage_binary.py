"""Compact binary persistence for :class:`CorpusIndex`.

The counterpart of the line-oriented text format in
:mod:`repro.index.storage`, built on the varint/delta codec of
:mod:`repro.index.compression`.  Several times smaller on real indexes
(Dewey deltas dominate; see ``bench_index_size.py``), at the cost of
not being diff-able.

Layout (all integers varint, all strings length-prefixed UTF-8)::

    magic "XCIB" | version | name
    path count | paths (component count, labels...)
    path-node-count pairs
    subtree-count entries (delta-coded deweys | count)
    max path depth | totals count | (pid, W_p as repr text) pairs
    element_doc_count | vocab rows (token, cf, df, max_rel_tf as text)
    list count | per token: token, encoded postings
    CRC32 of everything above (4 bytes, big-endian)

The trailing CRC32 guarantees detection of any single-byte corruption
(and virtually all larger ones) at load time.
"""

from __future__ import annotations

import zlib

from repro.exceptions import StorageError
from repro.index.compression import (
    decode_postings,
    encode_postings,
    read_string,
    read_uvarint,
    write_string,
    write_uvarint,
)
from repro.index.atomic import atomic_write
from repro.index.corpus import CorpusIndex
from repro.index.inverted import InvertedIndex, InvertedList
from repro.index.path_index import PathIndex, path_counts_from_postings
from repro.index.tokenizer import Tokenizer
from repro.index.vocabulary import Vocabulary
from repro.xmltree.labelpath import PathTable

MAGIC = b"XCIB"
#: Version 2 appends the precomputed Eq. 8 normalizers (W_p per path
#: id, as repr'd floats) and the maximal label-path depth after the
#: subtree section.  Version-1 payloads still load; the totals are
#: derived on the fly.
VERSION = 2


def dumps_binary(index: CorpusIndex) -> bytes:
    """Serialize ``index`` to compact bytes."""
    buffer = bytearray()
    buffer.extend(MAGIC)
    write_uvarint(buffer, VERSION)
    write_string(buffer, index.name)

    paths = list(index.path_table)
    write_uvarint(buffer, len(paths))
    for labels in paths:
        write_uvarint(buffer, len(labels))
        for label in labels:
            write_string(buffer, label)

    write_uvarint(buffer, len(index.path_node_counts))
    for pid in sorted(index.path_node_counts):
        write_uvarint(buffer, pid)
        write_uvarint(buffer, index.path_node_counts[pid])

    # Subtree token counts: reuse the posting codec by packing each
    # (dewey, count) as a pseudo-posting (path_id slot unused).
    subtree_items = sorted(index.subtree_token_counts.items())
    pseudo = [(code, 0, count) for code, count in subtree_items]
    buffer.extend(encode_postings(pseudo))

    totals = index.path_token_totals()
    write_uvarint(buffer, index.max_path_depth())
    write_uvarint(buffer, len(totals))
    for pid in sorted(totals):
        write_uvarint(buffer, pid)
        write_string(buffer, repr(totals[pid]))

    vocab_rows = sorted(index.vocabulary.export_rows())
    write_uvarint(buffer, index.vocabulary.element_doc_count)
    write_uvarint(buffer, len(vocab_rows))
    for token, cf, df, max_rel in vocab_rows:
        write_string(buffer, token)
        write_uvarint(buffer, cf)
        write_uvarint(buffer, df)
        write_string(buffer, repr(max_rel))

    tokens = sorted(index.inverted.tokens())
    write_uvarint(buffer, len(tokens))
    for token in tokens:
        write_string(buffer, token)
        buffer.extend(
            encode_postings(list(index.inverted.list_for(token)))
        )
    checksum = zlib.crc32(bytes(buffer)) & 0xFFFFFFFF
    buffer.extend(checksum.to_bytes(4, "big"))
    return bytes(buffer)


def loads_binary(data: bytes) -> CorpusIndex:
    """Deserialize an index written by :func:`dumps_binary`."""
    if data[: len(MAGIC)] != MAGIC:
        raise StorageError("not a binary XClean index")
    if len(data) < len(MAGIC) + 4:
        raise StorageError("truncated binary index")
    payload, trailer = data[:-4], data[-4:]
    expected = int.from_bytes(trailer, "big")
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != expected:
        raise StorageError(
            f"binary index checksum mismatch "
            f"(stored {expected:#010x}, computed {actual:#010x})"
        )
    data = payload
    position = len(MAGIC)
    version, position = read_uvarint(data, position)
    if version not in (1, VERSION):
        raise StorageError(f"unsupported binary index version {version}")
    name, position = read_string(data, position)

    path_table = PathTable()
    path_count, position = read_uvarint(data, position)
    for _ in range(path_count):
        label_count, position = read_uvarint(data, position)
        labels = []
        for _ in range(label_count):
            label, position = read_string(data, position)
            labels.append(label)
        path_table.intern(tuple(labels))

    node_count, position = read_uvarint(data, position)
    path_node_counts: dict[int, int] = {}
    for _ in range(node_count):
        pid, position = read_uvarint(data, position)
        count, position = read_uvarint(data, position)
        path_node_counts[pid] = count

    pseudo, position = decode_postings(data, position)
    subtree_counts = {code: count for code, _unused, count in pseudo}

    path_token_totals: dict[int, float] | None = None
    max_depth: int | None = None
    if version >= 2:
        max_depth, position = read_uvarint(data, position)
        total_count, position = read_uvarint(data, position)
        path_token_totals = {}
        for _ in range(total_count):
            pid, position = read_uvarint(data, position)
            total_text, position = read_string(data, position)
            path_token_totals[pid] = float(total_text)

    element_docs, position = read_uvarint(data, position)
    row_count, position = read_uvarint(data, position)
    rows = []
    for _ in range(row_count):
        token, position = read_string(data, position)
        cf, position = read_uvarint(data, position)
        df, position = read_uvarint(data, position)
        max_rel_text, position = read_string(data, position)
        rows.append((token, cf, df, float(max_rel_text)))
    vocabulary = Vocabulary.from_rows(rows, element_docs)

    inverted = InvertedIndex()
    path_index = PathIndex()
    list_count, position = read_uvarint(data, position)
    for _ in range(list_count):
        token, position = read_string(data, position)
        postings, position = decode_postings(data, position)
        inverted.add_list(InvertedList(token, postings))
        path_index.set_counts(
            token, path_counts_from_postings(postings, path_table)
        )

    return CorpusIndex(
        name=name,
        path_table=path_table,
        inverted=inverted,
        path_index=path_index,
        vocabulary=vocabulary,
        subtree_token_counts=subtree_counts,
        path_node_counts=path_node_counts,
        tokenizer=Tokenizer(),
        path_token_totals_map=path_token_totals,
        max_depth=max_depth,
    )


def save_index_binary(index: CorpusIndex, path: str) -> None:
    """Write the compact binary form to ``path`` (crash-safe).

    Atomic temp-file rename as in :func:`repro.index.storage.save_index`.
    """
    with atomic_write(path, "wb") as handle:
        handle.write(dumps_binary(index))


def load_index_binary(path: str) -> CorpusIndex:
    """Load an index written by :func:`save_index_binary`."""
    with open(path, "rb") as handle:
        return loads_binary(handle.read())
