"""Crash-safe write-ahead log of live subtree updates.

The live-update pipeline (``docs/index_format.md``, "Live updates")
acknowledges a subtree add/update/delete only after the operation is
durable.  Durability comes from this module: every operation is
appended to an on-disk log *before* it is applied to the in-memory
delta segment, and the append ends with an ``fsync`` — an
acknowledged record survives any crash of the serving process or the
machine.

File layout (all integers little-endian)::

    magic   8 bytes   b"XCWAL001"
    header  <u32 len><u32 crc32(payload)><payload>   JSON header
    record  <u32 len><u32 crc32(payload)><payload>   JSON record
    record  ...

The header carries ``base_generation`` — the data generation of the
snapshot the log's records extend.  Replay of a log whose base
generation does not match the serving snapshot is refused (the records
are either already folded in, or belong to a different lineage).

Each record frame is length-prefixed and CRC-framed.  A crash mid-
append leaves a *torn tail*: a partial length word, a partial payload,
or a payload whose CRC no longer matches.  :meth:`WriteAheadLog.replay`
detects the first bad frame, truncates the file back to the last good
frame boundary, and returns only the intact prefix — so recovery never
sees a corrupt record and never loses an acknowledged one (the torn
frame was, by construction, never acknowledged).

The ``wal.append`` fault site (:mod:`repro.obs.faults`) fires inside
:meth:`append` before the fsync/acknowledge step, with the log path —
so chaos plans can simulate both append crashes (``raise``) and torn
on-disk bytes (``corrupt``).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import StorageError, UpdateError
from repro.obs.faults import active as _active_faults
from repro.xmltree.dewey import DeweyCode

MAGIC = b"XCWAL001"

_FRAME = struct.Struct("<II")

#: Operations a record may carry.
OPS = ("add", "update", "delete")


@dataclass(frozen=True)
class WalRecord:
    """One logged subtree operation.

    ``dewey`` targets the *parent* node for ``add`` (the new subtree is
    appended as its last child) and the node itself for ``update`` /
    ``delete``.  ``subtree`` is the JSON tree of the new content
    (``{"label", "text", "children"}``, see :mod:`repro.index.delta`);
    ``None`` for deletes.
    """

    op: str
    dewey: DeweyCode
    subtree: dict | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.op not in OPS:
            raise UpdateError(
                f"unknown WAL op {self.op!r}; known ops: {', '.join(OPS)}"
            )
        if not self.dewey or any(
            (not isinstance(c, int)) or c < 1 for c in self.dewey
        ):
            raise UpdateError(
                f"WAL target must be a non-empty Dewey tuple of "
                f"positive ints, got {self.dewey!r}"
            )
        if self.op == "delete":
            if self.subtree is not None:
                raise UpdateError("delete records carry no subtree")
        elif self.subtree is None:
            raise UpdateError(f"{self.op} records need a subtree")

    def as_dict(self) -> dict:
        out: dict = {"op": self.op, "dewey": list(self.dewey)}
        if self.subtree is not None:
            out["subtree"] = self.subtree
        if self.meta:
            out["meta"] = self.meta
        return out

    @classmethod
    def from_dict(cls, document: dict) -> "WalRecord":
        try:
            return cls(
                op=document["op"],
                dewey=tuple(document["dewey"]),
                subtree=document.get("subtree"),
                meta=document.get("meta", {}),
            )
        except (KeyError, TypeError) as exc:
            raise UpdateError(f"malformed WAL record: {exc}") from exc


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """Append-only, CRC-framed, fsync-on-ack operation log."""

    def __init__(self, path: str):
        self.path = path
        self.base_generation = 0
        self._handle = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def create(self, base_generation: int) -> None:
        """Write a fresh, empty log (truncating any previous one)."""
        self.close()
        header = json.dumps(
            {"base_generation": base_generation}, sort_keys=True
        ).encode("utf-8")
        # Written in place (not via atomic rename): the log is defined
        # by its replay semantics, and an interrupted create leaves a
        # short file that replay rejects and recovery re-creates.
        with open(self.path, "wb") as handle:
            handle.write(MAGIC + _frame(header))
            handle.flush()
            os.fsync(handle.fileno())
        self.base_generation = base_generation

    def reset(self, base_generation: int) -> None:
        """Truncate all records and restamp the base generation."""
        self.create(base_generation)

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Append (the ack path)
    # ------------------------------------------------------------------

    def append(self, record: WalRecord) -> None:
        """Durably append one record; returning means acknowledged.

        The frame is written and flushed, the ``wal.append`` fault site
        fires, then the file is fsynced.  A fault or crash anywhere in
        that sequence means the record was *not* acknowledged — replay
        may find it whole (it was fully written) or truncate it as a
        torn tail; either outcome is a correct recovery.
        """
        handle = self._handle
        if handle is None:
            if not self.exists:
                raise StorageError(
                    f"{self.path}: WAL must be created before append"
                )
            handle = self._handle = open(self.path, "ab")
        payload = json.dumps(
            record.as_dict(), sort_keys=True
        ).encode("utf-8")
        handle.write(_frame(payload))
        handle.flush()
        faults = _active_faults()
        if faults.enabled:
            faults.hit("wal.append", path=self.path)
        os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Replay (the recovery path)
    # ------------------------------------------------------------------

    def replay(self) -> list[WalRecord]:
        """Read back every intact record, truncating any torn tail.

        Returns the acknowledged prefix in append order and leaves the
        file ending exactly at the last intact frame, so subsequent
        appends extend a clean log.  Raises :class:`StorageError` only
        when the file is not a WAL at all (bad magic or a torn/corrupt
        *header* — there is nothing trustworthy to salvage).
        """
        self.close()
        with open(self.path, "rb") as handle:
            data = handle.read()
        if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
            raise StorageError(f"{self.path}: not a WAL (bad magic)")
        offset = len(MAGIC)
        frames = list(self._iter_frames(data, offset))
        if not frames:
            raise StorageError(f"{self.path}: WAL header torn or corrupt")
        header_payload, offset = frames[0]
        try:
            header = json.loads(header_payload)
            self.base_generation = int(header["base_generation"])
        except (ValueError, KeyError, TypeError) as exc:
            raise StorageError(
                f"{self.path}: malformed WAL header: {exc}"
            ) from exc
        records: list[WalRecord] = []
        good_end = offset
        for payload, end in frames[1:]:
            try:
                records.append(WalRecord.from_dict(json.loads(payload)))
            except (ValueError, UpdateError):
                # An unparseable-but-CRC-clean record cannot be a torn
                # write; still, nothing after it can be trusted.
                break
            good_end = end
        if good_end < len(data):
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        return records

    @staticmethod
    def _iter_frames(data: bytes, offset: int) -> Iterator[
        tuple[bytes, int]
    ]:
        """Yield ``(payload, end_offset)`` for each intact frame."""
        size = len(data)
        while offset + _FRAME.size <= size:
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > size:
                return  # torn payload
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                return  # corrupt frame
            yield payload, end
            offset = end
