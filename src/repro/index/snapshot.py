"""Snapshot v3: zero-copy mmap persistence of the packed index.

The v1 text and v2 binary formats deserialize the corpus into a full
Python object graph — fine for archival, linear in corpus size at every
process start.  The v3 *snapshot* stores the structures the packed
query engine actually touches as flat, little-endian, 8-byte-aligned
sections in one file, so loading is::

    mmap the file → parse a fixed-size header + section table →
    wrap each section in a ``memoryview`` cast to its element type.

No per-posting Python object is ever materialized: posting columns stay
int64/int32 views that ``_merge_loop_packed`` bisects directly, and a
pool of serving workers mapping the same file shares the bytes through
the OS page cache (copy-on-access never happens on a read mapping).

File layout (everything little-endian)::

    header   magic "XCS3" | u32 version | u32 section count
             | u32 CRC32(section table)
    table    per section: 16s name (NUL-padded) | u64 offset
             | u64 length | u32 CRC32(payload) | u32 reserved
    payload  sections, each padded to an 8-byte boundary

Section reference (``i``/``q``/``I``/``d`` are array element codes;
*blob* sections are raw UTF-8 bytes):

=============  ====  =====================================================
name           type  contents
=============  ====  =====================================================
meta           blob  JSON: name, stats, packer dims, tokenizer, FastSS
paths_off      I     ``n_paths+1`` offsets into ``paths_blob``
paths_blob     blob  label-path strings ("/a/b"), **in path-id order**
pnode_pids     i     path ids with node counts (sorted)
pnode_counts   q     node count per ``pnode_pids`` entry (Eq. 8's N)
ptot_pids      i     path ids with token totals (sorted)
ptot_vals      d     W_p per ``ptot_pids`` entry (Eq. 8, length prior)
sub_keys       q     packed Dewey codes with subtree lengths (sorted)
sub_lens       q     \\|D(r)\\| per ``sub_keys`` entry (Eq. 6)
voc_off        I     ``n_tokens+1`` offsets into ``voc_blob``
voc_blob       blob  token strings **sorted by UTF-8 bytes** (id = rank)
voc_cf         q     collection frequency per token id
voc_df         q     element document frequency per token id
voc_rel        d     max relative tf per token id (PY08)
post_starts    q     ``n_tokens+1`` posting offsets per token id
post_keys      q     packed Dewey keys, concatenated per token
post_pids      i     posting path ids (parallel to ``post_keys``)
post_tfs       i     posting term frequencies (parallel)
pidx_starts    q     ``n_tokens+1`` offsets into the f_w^p pairs
pidx_pids      i     path ids of the f_w^p pairs (sorted per token)
pidx_counts    q     f_w^p per ``pidx_pids`` entry (Eq. 7)
fss_?_off      I     [optional] bucket-signature offsets (?: s/p/x =
fss_?_blob     blob  short/prefix/suffix table); signatures sorted by
fss_?_starts   q     UTF-8 bytes; ``starts`` spans token-id runs in
fss_?_tok      i     ``tok`` (vocabulary token ids)
=============  ====  =====================================================

Versioning rules: the magic changes only on incompatible layout
changes; unknown *extra* sections are ignored by loaders (forward
compatible); removing or re-typing a listed section requires a new
magic.  On big-endian hosts sections are copied into ``array`` objects
and byte-swapped at load (correct, not zero-copy).

The builder (:func:`build_snapshot`) can fan the per-token column
packing out across a fork-based process pool; section bytes are
concatenated in vocabulary order at the end, so the output is
byte-identical to a serial build.
"""

from __future__ import annotations

import itertools
import json
import logging
import mmap
import multiprocessing
import os
import struct
import sys
import zlib
from array import array
from bisect import bisect_left
from concurrent.futures import ProcessPoolExecutor
from typing import Iterator

from repro.exceptions import DeweyError, StorageError
from repro.fastss.generator import (
    DEFAULT_VARIANT_CACHE_SIZE,
    VariantGenerator,
)
from repro.fastss.index import FastSSIndex, PartitionedFastSSIndex
from repro.index.atomic import atomic_write
from repro.index.corpus import CorpusIndex, QueryEngineMixin
from repro.index.inverted import InvertedList, PackedInvertedList
from repro.index.tokenizer import Tokenizer, TokenizerConfig
from repro.obs.faults import active as _active_faults
from repro.obs.metrics import INDEX_LOAD_STAGE, NULL_METRICS
from repro.xmltree.dewey import DeweyCode
from repro.xmltree.dewey_packed import DeweyPacker
from repro.xmltree.labelpath import PathTable, format_path, parse_path

logger = logging.getLogger(__name__)

MAGIC = b"XCS3"
VERSION = 3

#: Suffix appended when a corrupt snapshot is moved aside.
QUARANTINE_SUFFIX = ".quarantined"

_HEADER = struct.Struct("<4sIII")
_ENTRY = struct.Struct("<16sQQII")

#: Element type per section name (``None`` = raw byte blob).  The
#: loader rejects a file whose section length is not a multiple of the
#: element size, and ignores names it does not know (see versioning
#: rules in the module docstring).
_SECTION_FORMATS: dict[str, str | None] = {
    "meta": None,
    "paths_off": "I",
    "paths_blob": None,
    "pnode_pids": "i",
    "pnode_counts": "q",
    "ptot_pids": "i",
    "ptot_vals": "d",
    "sub_keys": "q",
    "sub_lens": "q",
    "voc_off": "I",
    "voc_blob": None,
    "voc_cf": "q",
    "voc_df": "q",
    "voc_rel": "d",
    "post_starts": "q",
    "post_keys": "q",
    "post_pids": "i",
    "post_tfs": "i",
    "pidx_starts": "q",
    "pidx_pids": "i",
    "pidx_counts": "q",
    "fss_s_off": "I",
    "fss_s_blob": None,
    "fss_s_starts": "q",
    "fss_s_tok": "i",
    "fss_p_off": "I",
    "fss_p_blob": None,
    "fss_p_starts": "q",
    "fss_p_tok": "i",
    "fss_x_off": "I",
    "fss_x_blob": None,
    "fss_x_starts": "q",
    "fss_x_tok": "i",
}

_REQUIRED_SECTIONS = tuple(
    name for name in _SECTION_FORMATS if not name.startswith("fss_")
)

#: Bound of the per-structure string/id memo dicts on the query path
#: (token → vocabulary id, id → decoded token).  Matches the result-type
#: LRU default: large enough for ~100% hit rates on skewed traffic,
#: small enough that memory stays flat on a long-lived service.
_MEMO_LIMIT = 65536


def _align8(value: int) -> int:
    return (value + 7) & ~7


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------


def _string_table(strings: list[str]) -> tuple[bytes, bytes]:
    """``(u32 offsets, blob)`` for strings in the given (id) order."""
    offsets = array("I", [0])
    chunks = []
    total = 0
    for text in strings:
        encoded = text.encode("utf-8")
        chunks.append(encoded)
        total += len(encoded)
        offsets.append(total)
    return _le_bytes(offsets), b"".join(chunks)


def _le_bytes(column: array) -> bytes:
    """Array bytes in little-endian order regardless of host."""
    if sys.byteorder != "little":
        column = array(column.typecode, column)
        column.byteswap()
    return column.tobytes()


def _bucket_sections(
    buckets: dict[str, list[str]], token_ids: dict[str, int]
) -> tuple[bytes, bytes, bytes, bytes]:
    """Serialize one FastSS bucket table (off, blob, starts, tok)."""
    signatures = sorted(buckets, key=lambda s: s.encode("utf-8"))
    off, blob = _string_table(signatures)
    starts = array("q", [0])
    tokens = array("i")
    total = 0
    for signature in signatures:
        members = buckets[signature]
        for token in members:
            member_id = token_ids.get(token)
            if member_id is None:
                raise StorageError(
                    f"FastSS bucket token {token!r} is not in the "
                    f"corpus vocabulary; snapshots can only embed "
                    f"generators built over the corpus tokens"
                )
            tokens.append(member_id)
        total += len(members)
        starts.append(total)
    return off, blob, _le_bytes(starts), _le_bytes(tokens)


# Build-side fan-out state.  Set in the parent *before* the fork pool
# spawns its workers, so children inherit the inverted index and packer
# through the fork — nothing corpus-sized is ever pickled; each task
# message is a (lo, hi) token span and each result a bytes triple.
_PACK_SOURCE: tuple | None = None


def _pack_token_span(span: tuple[int, int]):
    assert _PACK_SOURCE is not None, "pack worker not initialized"
    inverted, packer, tokens = _PACK_SOURCE
    lo, hi = span
    keys = array("q")
    pids = array("i")
    tfs = array("i")
    lengths = []
    pack = packer.pack
    for token in tokens[lo:hi]:
        postings = inverted.list_for(token)
        lengths.append(len(postings))
        for code, pid, tf in postings:
            keys.append(pack(code))
            pids.append(pid)
            tfs.append(tf)
    return lengths, _le_bytes(keys), _le_bytes(pids), _le_bytes(tfs)


def _pack_postings(
    index: CorpusIndex,
    packer: DeweyPacker,
    tokens: list[str],
    workers: int | None,
) -> tuple[bytes, bytes, bytes, bytes]:
    """(post_starts, post_keys, post_pids, post_tfs) section bytes."""
    global _PACK_SOURCE
    _PACK_SOURCE = (index.inverted, packer, tokens)
    try:
        parts = None
        if workers and workers > 1 and len(tokens) > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = None
            if context is not None:
                chunk = max(1, -(-len(tokens) // (workers * 4)))
                spans = [
                    (lo, min(lo + chunk, len(tokens)))
                    for lo in range(0, len(tokens), chunk)
                ]
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                ) as pool:
                    parts = list(pool.map(_pack_token_span, spans))
        if parts is None:
            parts = [_pack_token_span((0, len(tokens)))]
    finally:
        _PACK_SOURCE = None
    starts = array("q", [0])
    total = 0
    for lengths, _keys, _pids, _tfs in parts:
        for length in lengths:
            total += length
            starts.append(total)
    return (
        _le_bytes(starts),
        b"".join(part[1] for part in parts),
        b"".join(part[2] for part in parts),
        b"".join(part[3] for part in parts),
    )


def build_snapshot(
    index: CorpusIndex,
    path: str,
    generator: VariantGenerator | None = None,
    fastss_max_errors: int | None = 3,
    fastss_partition_threshold: int = 9,
    workers: int | None = None,
    metrics=None,
    generation: int = 0,
) -> dict:
    """Write ``index`` to ``path`` in snapshot v3 form.

    ``generation`` stamps a monotonically increasing data generation
    into the snapshot meta (see ``docs/index_format.md``); the live
    update/compaction pipeline bumps it on every fold so serving tiers
    can tell two builds of the same corpus apart.

    ``generator`` embeds an existing FastSS index (it must be built
    over the corpus vocabulary); without one, a partitioned FastSS
    index with ``fastss_max_errors`` is built and embedded, unless
    ``fastss_max_errors`` is ``None`` (no variant sections — loaders
    then rebuild variant indexes from the vocabulary on demand).

    ``workers`` > 1 fans the per-token column packing out over a
    fork-based process pool; the output is byte-identical to a serial
    build.  Returns a summary dict (file size, per-section bytes).
    """
    metrics = metrics or NULL_METRICS

    packer = DeweyPacker.for_codes(
        itertools.chain(
            (
                code
                for token in index.inverted.tokens()
                for code, _pid, _tf in index.inverted.list_for(token)
            ),
            index.subtree_token_counts,
        )
    )
    if not packer.fits_int64:
        raise StorageError(
            f"packed Dewey keys need {packer.total_bits} bits; snapshot "
            f"v3 stores int64 keys (split the corpus or deepen the "
            f"format first)"
        )

    rows = sorted(
        index.vocabulary.export_rows(),
        key=lambda row: row[0].encode("utf-8"),
    )
    tokens = [row[0] for row in rows]
    token_ids = {token: rank for rank, token in enumerate(tokens)}

    sections: list[tuple[str, bytes]] = []

    def add(name: str, payload: bytes) -> None:
        sections.append((name, payload))

    paths = [format_path(labels) for labels in index.path_table]
    paths_off, paths_blob = _string_table(paths)
    add("paths_off", paths_off)
    add("paths_blob", paths_blob)

    pnode = sorted(index.path_node_counts.items())
    add("pnode_pids", _le_bytes(array("i", (p for p, _c in pnode))))
    add("pnode_counts", _le_bytes(array("q", (c for _p, c in pnode))))

    totals = sorted(index.path_token_totals().items())
    add("ptot_pids", _le_bytes(array("i", (p for p, _v in totals))))
    add("ptot_vals", _le_bytes(array("d", (v for _p, v in totals))))

    subtree = sorted(
        (packer.pack(code), count)
        for code, count in index.subtree_token_counts.items()
    )
    add("sub_keys", _le_bytes(array("q", (k for k, _v in subtree))))
    add("sub_lens", _le_bytes(array("q", (v for _k, v in subtree))))

    voc_off, voc_blob = _string_table(tokens)
    add("voc_off", voc_off)
    add("voc_blob", voc_blob)
    add("voc_cf", _le_bytes(array("q", (row[1] for row in rows))))
    add("voc_df", _le_bytes(array("q", (row[2] for row in rows))))
    add("voc_rel", _le_bytes(array("d", (row[3] for row in rows))))

    with metrics.stage("pack_index"):
        starts, keys, pids, tfs = _pack_postings(
            index, packer, tokens, workers
        )
    add("post_starts", starts)
    add("post_keys", keys)
    add("post_pids", pids)
    add("post_tfs", tfs)

    pidx_starts = array("q", [0])
    pidx_pids = array("i")
    pidx_counts = array("q")
    total_pairs = 0
    for token in tokens:
        pairs = sorted(index.path_index.counts_for(token).items())
        for pid, count in pairs:
            pidx_pids.append(pid)
            pidx_counts.append(count)
        total_pairs += len(pairs)
        pidx_starts.append(total_pairs)
    add("pidx_starts", _le_bytes(pidx_starts))
    add("pidx_pids", _le_bytes(pidx_pids))
    add("pidx_counts", _le_bytes(pidx_counts))

    fastss_meta = None
    if generator is None and fastss_max_errors is not None:
        generator = VariantGenerator(
            tokens,
            max_errors=fastss_max_errors,
            partition_threshold=fastss_partition_threshold,
        )
    if generator is not None:
        variant_index = getattr(generator, "_index", generator)
        fastss_meta = _add_fastss_sections(
            add, variant_index, token_ids
        )

    tokenizer_config = index.tokenizer.config
    meta = {
        "name": index.name,
        "generation": generation,
        "element_doc_count": index.vocabulary.element_doc_count,
        "total_tokens": index.vocabulary.total_tokens,
        "max_path_depth": index.max_path_depth(),
        "counts": {
            "tokens": len(tokens),
            "postings": index.inverted.total_postings(),
            "paths": len(paths),
        },
        "packer": {
            "max_depth": packer.max_depth,
            "component_bits": packer.component_bits,
        },
        "tokenizer": {
            "min_length": tokenizer_config.min_length,
            "lowercase": tokenizer_config.lowercase,
            "drop_numbers": tokenizer_config.drop_numbers,
            "stopwords": sorted(tokenizer_config.stopwords),
        },
        "fastss": fastss_meta,
    }
    sections.insert(
        0, ("meta", json.dumps(meta, sort_keys=True).encode("utf-8"))
    )

    return _write_sections(path, sections)


def _add_fastss_sections(add, variant_index, token_ids) -> dict | None:
    """Emit fss_* sections for a FastSS index; None if unsupported."""
    if isinstance(variant_index, PartitionedFastSSIndex):
        tables = {
            "s": variant_index._short._buckets,
            "p": variant_index._prefix_buckets,
            "x": variant_index._suffix_buckets,
        }
        meta = {
            "kind": "partitioned",
            "max_errors": variant_index.max_errors,
            "partition_threshold": variant_index.partition_threshold,
            "long_lengths": sorted(variant_index._long_lengths),
        }
    elif isinstance(variant_index, FastSSIndex):
        tables = {
            "s": variant_index._buckets,
            "p": {},
            "x": {},
        }
        meta = {
            "kind": "plain",
            "max_errors": variant_index.max_errors,
            "partition_threshold": None,
            "long_lengths": [],
        }
    else:
        # Unknown generator flavour (e.g. the brute-force oracle):
        # skip the sections; loaders rebuild from the vocabulary.
        return None
    for tag, buckets in tables.items():
        off, blob, starts, tok = _bucket_sections(buckets, token_ids)
        add(f"fss_{tag}_off", off)
        add(f"fss_{tag}_blob", blob)
        add(f"fss_{tag}_starts", starts)
        add(f"fss_{tag}_tok", tok)
    return meta


def _write_sections(
    path: str, sections: list[tuple[str, bytes]]
) -> dict:
    """Lay out header + table + aligned payloads; return a summary."""
    header_size = _HEADER.size + len(sections) * _ENTRY.size
    offset = _align8(header_size)
    entries = []
    for name, payload in sections:
        encoded = name.encode("ascii")
        if len(encoded) > 16:
            raise StorageError(f"section name {name!r} exceeds 16 bytes")
        entries.append(
            _ENTRY.pack(
                encoded.ljust(16, b"\0"),
                offset,
                len(payload),
                zlib.crc32(payload) & 0xFFFFFFFF,
                0,
            )
        )
        offset = _align8(offset + len(payload))
    table = b"".join(entries)
    header = _HEADER.pack(
        MAGIC, VERSION, len(sections), zlib.crc32(table) & 0xFFFFFFFF
    )
    # Crash-safe: the whole file lands in <path>.tmp and is renamed
    # into place, so a build killed mid-write cannot leave a torn
    # (loadable-looking) snapshot under the destination name.
    with atomic_write(path, "wb") as handle:
        handle.write(header)
        handle.write(table)
        position = header_size
        for _name, payload in sections:
            padding = _align8(position) - position
            if padding:
                handle.write(b"\0" * padding)
            handle.write(payload)
            position = _align8(position) + len(payload)
        padding = _align8(position) - position
        if padding:
            handle.write(b"\0" * padding)
        total = _align8(position)
    return {
        "path": path,
        "bytes": total,
        "sections": {
            name: len(payload) for name, payload in sections
        },
    }


# ----------------------------------------------------------------------
# Loader plumbing
# ----------------------------------------------------------------------


def _map_file(path: str) -> mmap.mmap:
    """mmap ``path`` read-only; the descriptor is closed immediately.

    POSIX keeps the mapping (and the pages behind it) valid after the
    file is closed or even unlinked — the snapshot index therefore
    survives rotation (or quarantine) of the file it was loaded from.

    This is the ``snapshot.load`` fault-injection site: every mapping —
    fast loads, deep verifies, worker inits — funnels through here, so
    a plan can fail or corrupt any snapshot read deterministically.
    """
    faults = _active_faults()
    if faults.enabled:
        faults.hit("snapshot.load", path=path)
    with open(path, "rb") as handle:
        if handle.seek(0, 2) == 0:
            raise StorageError("truncated snapshot: empty file")
        return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)


def _parse_table(mapped) -> dict[str, tuple[int, int, int]]:
    """Validate header and table; return name → (offset, length, crc)."""
    if len(mapped) < _HEADER.size:
        raise StorageError(
            f"truncated snapshot: {len(mapped)} bytes is shorter than "
            f"the {_HEADER.size}-byte header"
        )
    magic, version, count, table_crc = _HEADER.unpack_from(mapped, 0)
    if magic != MAGIC:
        raise StorageError(
            f"not an XClean snapshot (magic {magic!r}, expected "
            f"{MAGIC!r})"
        )
    if version != VERSION:
        raise StorageError(
            f"unsupported snapshot version {version} (this reader "
            f"handles version {VERSION})"
        )
    table_end = _HEADER.size + count * _ENTRY.size
    if len(mapped) < table_end:
        raise StorageError(
            f"truncated snapshot: section table needs {table_end} "
            f"bytes, file has {len(mapped)}"
        )
    table = bytes(mapped[_HEADER.size : table_end])
    actual = zlib.crc32(table) & 0xFFFFFFFF
    if actual != table_crc:
        raise StorageError(
            f"snapshot section table checksum mismatch (stored "
            f"{table_crc:#010x}, computed {actual:#010x})"
        )
    out: dict[str, tuple[int, int, int]] = {}
    for position in range(count):
        raw_name, offset, length, crc, _reserved = _ENTRY.unpack_from(
            table, position * _ENTRY.size
        )
        name = raw_name.rstrip(b"\0").decode("ascii")
        if offset + length > len(mapped):
            raise StorageError(
                f"snapshot section {name!r} out of bounds "
                f"(offset {offset} + length {length} > file size "
                f"{len(mapped)})"
            )
        out[name] = (offset, length, crc)
    missing = [n for n in _REQUIRED_SECTIONS if n not in out]
    if missing:
        raise StorageError(
            f"snapshot is missing required sections: "
            f"{', '.join(missing)}"
        )
    return out


class _Sections:
    """Typed views over the mapped sections of one snapshot."""

    def __init__(self, mapped, table: dict[str, tuple[int, int, int]]):
        self._memory = memoryview(mapped)
        self.table = table

    def blob(self, name: str) -> memoryview:
        offset, length, _crc = self.table[name]
        return self._memory[offset : offset + length]

    def column(self, name: str):
        """Section as an int/float view (zero-copy on little-endian)."""
        fmt = _SECTION_FORMATS[name]
        assert fmt is not None, name
        raw = self.blob(name)
        itemsize = struct.calcsize(fmt)
        if len(raw) % itemsize:
            raise StorageError(
                f"snapshot section {name!r} length {len(raw)} is not "
                f"a multiple of its {itemsize}-byte element"
            )
        if sys.byteorder != "little":
            swapped = array(fmt)
            swapped.frombytes(bytes(raw))
            swapped.byteswap()
            return swapped
        return raw.cast(fmt)


class _StringTable:
    """Read-only id ↔ string table over (offsets, blob) sections.

    ``find`` binary-searches by UTF-8 bytes and therefore requires the
    table to be byte-sorted (vocabulary and FastSS signatures are; the
    path table is id-ordered and only ever indexed).  Decoded strings
    are memoized up to a bound so hot tokens decode once.
    """

    __slots__ = ("_offsets", "_blob", "_decoded")

    def __init__(self, offsets, blob):
        self._offsets = offsets
        self._blob = blob
        self._decoded: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def raw(self, index: int) -> bytes:
        return bytes(
            self._blob[self._offsets[index] : self._offsets[index + 1]]
        )

    def get_str(self, index: int) -> str:
        decoded = self._decoded.get(index)
        if decoded is None:
            decoded = self.raw(index).decode("utf-8")
            if len(self._decoded) < _MEMO_LIMIT:
                self._decoded[index] = decoded
        return decoded

    def find(self, text: str) -> int:
        """Rank of ``text`` in the byte-sorted table, or -1."""
        probe = text.encode("utf-8")
        lo, hi = 0, len(self)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.raw(mid) < probe:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self) and self.raw(lo) == probe:
            return lo
        return -1

    def __iter__(self) -> Iterator[str]:
        for index in range(len(self)):
            yield self.get_str(index)


class PackedKeyMap:
    """Sorted-column ``.get`` map (the snapshot's ``subtree_lengths``).

    Mirrors the dict the in-memory :class:`PackedIndex` keeps, but as
    two parallel columns probed by bisect — the scoring loop only ever
    calls ``get``.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self, keys, values):
        self._keys = keys
        self._values = values

    def __len__(self) -> int:
        return len(self._keys)

    def get(self, key: int, default: int = 0) -> int:
        keys = self._keys
        position = bisect_left(keys, key)
        if position < len(keys) and keys[position] == key:
            return self._values[position]
        return default

    def items(self) -> Iterator[tuple[int, int]]:
        keys = self._keys
        values = self._values
        for position in range(len(keys)):
            yield keys[position], values[position]


class SnapshotVocabulary:
    """mmap-backed twin of :class:`~repro.index.vocabulary.Vocabulary`.

    Same read interface; statistics come straight from the ``voc_*``
    columns.  Token → id lookups are memoized because the language
    model asks for ``background_probability`` once per scored entity.
    """

    __slots__ = (
        "_table", "_cf", "_df", "_rel", "_total_tokens",
        "_element_doc_count", "_ids",
    )

    def __init__(self, table, cf, df, rel, total_tokens,
                 element_doc_count):
        self._table = table
        self._cf = cf
        self._df = df
        self._rel = rel
        self._total_tokens = total_tokens
        self._element_doc_count = element_doc_count
        self._ids: dict[str, int] = {}

    def _id(self, token: str) -> int:
        ids = self._ids
        found = ids.get(token)
        if found is None:
            found = self._table.find(token)
            if len(ids) < _MEMO_LIMIT:
                ids[token] = found
        return found

    def __contains__(self, token: str) -> bool:
        return self._id(token) >= 0

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[str]:
        return iter(self._table)

    def tokens(self):
        return iter(self._table)

    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    @property
    def element_doc_count(self) -> int:
        return self._element_doc_count

    def collection_frequency(self, token: str) -> int:
        rank = self._id(token)
        return self._cf[rank] if rank >= 0 else 0

    def background_probability(self, token: str) -> float:
        if self._total_tokens == 0:
            return 0.0
        rank = self._id(token)
        cf = self._cf[rank] if rank >= 0 else 0
        return cf / self._total_tokens

    def element_document_frequency(self, token: str) -> int:
        rank = self._id(token)
        return self._df[rank] if rank >= 0 else 0

    def max_relative_tf(self, token: str) -> float:
        rank = self._id(token)
        return self._rel[rank] if rank >= 0 else 0.0

    def idf(self, token: str) -> float:
        import math

        df = self.element_document_frequency(token)
        if df == 0 or self._element_doc_count == 0:
            return 0.0
        return math.log(self._element_doc_count / df)

    def max_tfidf(self, token: str) -> float:
        return self.max_relative_tf(token) * self.idf(token)

    def export_rows(self):
        for rank in range(len(self._table)):
            yield (
                self._table.get_str(rank),
                self._cf[rank],
                self._df[rank],
                self._rel[rank],
            )


class SnapshotPathIndex:
    """mmap-backed twin of :class:`~repro.index.path_index.PathIndex`.

    ``counts_for`` materializes one small dict per distinct token and
    memoizes it — result-type inference hits the same tokens over and
    over, and Eq. 7 only needs membership tests and single lookups.
    """

    __slots__ = ("_vocabulary", "_starts", "_pids", "_counts", "_memo")

    def __init__(self, vocabulary: SnapshotVocabulary, starts, pids,
                 counts):
        self._vocabulary = vocabulary
        self._starts = starts
        self._pids = pids
        self._counts = counts
        self._memo: dict[str, dict[int, int]] = {}

    def _span(self, token: str) -> tuple[int, int]:
        rank = self._vocabulary._id(token)
        if rank < 0:
            return (0, 0)
        return self._starts[rank], self._starts[rank + 1]

    def __contains__(self, token: str) -> bool:
        lo, hi = self._span(token)
        return hi > lo

    def __len__(self) -> int:
        starts = self._starts
        return sum(
            1
            for rank in range(len(starts) - 1)
            if starts[rank + 1] > starts[rank]
        )

    def tokens(self):
        starts = self._starts
        table = self._vocabulary._table
        for rank in range(len(starts) - 1):
            if starts[rank + 1] > starts[rank]:
                yield table.get_str(rank)

    def counts_for(self, token: str) -> dict[int, int]:
        found = self._memo.get(token)
        if found is None:
            lo, hi = self._span(token)
            pids = self._pids
            counts = self._counts
            found = {
                pids[position]: counts[position]
                for position in range(lo, hi)
            }
            if len(self._memo) < _MEMO_LIMIT:
                self._memo[token] = found
        return found

    def f(self, token: str, path_id: int) -> int:
        return self.counts_for(token).get(path_id, 0)


class SnapshotPackedIndex:
    """mmap-backed twin of :class:`~repro.index.corpus.PackedIndex`.

    ``get`` returns :class:`PackedInvertedList` objects whose columns
    are memoryview *slices* of the mapped posting sections — the merge
    loop bisects them exactly as it bisects ``array`` columns, and no
    posting is ever copied into a Python object.
    """

    __slots__ = (
        "packer", "_subtree", "_vocabulary", "_starts", "_keys",
        "_pids", "_tfs", "_lists",
    )

    def __init__(self, packer: DeweyPacker, subtree: PackedKeyMap,
                 vocabulary: SnapshotVocabulary, starts, keys, pids,
                 tfs):
        self.packer = packer
        self._subtree = subtree
        self._vocabulary = vocabulary
        self._starts = starts
        self._keys = keys
        self._pids = pids
        self._tfs = tfs
        self._lists: dict[str, PackedInvertedList] = {}

    @property
    def subtree_lengths(self) -> PackedKeyMap:
        """|D(r)| keyed by packed Dewey code (bisect-backed ``get``)."""
        return self._subtree

    def get(self, token: str) -> PackedInvertedList | None:
        packed = self._lists.get(token)
        if packed is None:
            rank = self._vocabulary._id(token)
            if rank < 0:
                return None
            lo, hi = self._starts[rank], self._starts[rank + 1]
            packed = PackedInvertedList(
                token,
                self._keys[lo:hi],
                self._pids[lo:hi],
                self._tfs[lo:hi],
            )
            if len(self._lists) < _MEMO_LIMIT:
                self._lists[token] = packed
        return packed


class _LazyInvertedIndex:
    """Tuple-engine compatibility over the packed posting sections.

    The packed engine never touches this; the reference tuple engine
    (``XCleanConfig.engine == "tuple"``) and a few offline consumers
    do, so lists are unpacked *per requested token*, on demand, and
    memoized.
    """

    __slots__ = ("_packed", "_memo")

    def __init__(self, packed: SnapshotPackedIndex):
        self._packed = packed
        self._memo: dict[str, InvertedList | None] = {}

    def get(self, token: str) -> InvertedList | None:
        if token in self._memo:
            return self._memo[token]
        columns = self._packed.get(token)
        if columns is None:
            materialized = None
        else:
            unpack = self._packed.packer.unpack
            materialized = InvertedList(
                token,
                [
                    (unpack(columns.keys[i]), columns.path_ids[i],
                     columns.tfs[i])
                    for i in range(len(columns))
                ],
            )
        if len(self._memo) < _MEMO_LIMIT:
            self._memo[token] = materialized
        return materialized

    def list_for(self, token: str) -> InvertedList:
        found = self.get(token)
        if found is None:
            return InvertedList(token, [])
        return found

    def __contains__(self, token: str) -> bool:
        return self._packed._vocabulary._id(token) >= 0

    def tokens(self):
        packed = self._packed
        starts = packed._starts
        table = packed._vocabulary._table
        for rank in range(len(starts) - 1):
            if starts[rank + 1] > starts[rank]:
                yield table.get_str(rank)

    def __len__(self) -> int:
        starts = self._packed._starts
        return sum(
            1
            for rank in range(len(starts) - 1)
            if starts[rank + 1] > starts[rank]
        )

    def total_postings(self) -> int:
        starts = self._packed._starts
        return starts[len(starts) - 1] if len(starts) else 0


class _SnapshotBuckets:
    """dict-like FastSS bucket table over fss_* sections (read-only)."""

    __slots__ = ("_signatures", "_starts", "_tokens", "_vocab_table")

    def __init__(self, signatures: _StringTable, starts, tokens,
                 vocab_table: _StringTable):
        self._signatures = signatures
        self._starts = starts
        self._tokens = tokens
        self._vocab_table = vocab_table

    def __len__(self) -> int:
        return len(self._signatures)

    def get(self, signature: str) -> list[str] | None:
        rank = self._signatures.find(signature)
        if rank < 0:
            return None
        lo, hi = self._starts[rank], self._starts[rank + 1]
        get_str = self._vocab_table.get_str
        tokens = self._tokens
        return [get_str(tokens[position]) for position in range(lo, hi)]


class _SnapshotFastSSIndex(FastSSIndex):
    """Read-only plain FastSS over snapshot bucket tables."""

    def __init__(self, buckets, max_errors: int):
        self.max_errors = max_errors
        self._buckets = buckets
        # Read-only: ``add_token`` is never used on a snapshot index.
        self._vocabulary = set()


class _SnapshotPartitionedFastSS(PartitionedFastSSIndex):
    """Read-only partitioned FastSS over snapshot bucket tables."""

    def __init__(self, short_buckets, prefix_buckets, suffix_buckets,
                 max_errors: int, partition_threshold: int,
                 long_lengths):
        self.max_errors = max_errors
        self.partition_threshold = partition_threshold
        self._half_errors = max_errors // 2
        self._short = _SnapshotFastSSIndex(short_buckets, max_errors)
        self._prefix_buckets = prefix_buckets
        self._suffix_buckets = suffix_buckets
        self._long_lengths = set(long_lengths)


# ----------------------------------------------------------------------
# The loaded corpus
# ----------------------------------------------------------------------


class SnapshotCorpusIndex(QueryEngineMixin):
    """A corpus index served directly out of a mapped v3 snapshot.

    Exposes the :class:`~repro.index.corpus.CorpusIndex` query surface
    (it shares :class:`QueryEngineMixin`), but the packed engine's data
    — posting columns, subtree lengths, vocabulary statistics — are
    memoryviews into the mapping.  Only the small dict-shaped
    structures (path table, Eq. 8 normalizers) are materialized at
    load, so construction is O(paths), not O(postings).
    """

    def __init__(self, mapped, sections: _Sections, meta: dict,
                 snapshot_path: str):
        self._mapped = mapped
        self._sections = sections
        self._meta = meta
        self.snapshot_path = snapshot_path
        self.name = meta["name"]
        #: Data generation stamped at build time (0 for pre-live
        #: snapshots; bumped by every compaction fold).  Distinct from
        #: the mixin's in-process cache ``generation`` counter.
        self.data_generation = meta.get("generation", 0)

        tok = meta["tokenizer"]
        self.tokenizer = Tokenizer(
            TokenizerConfig(
                min_length=tok["min_length"],
                lowercase=tok["lowercase"],
                drop_numbers=tok["drop_numbers"],
                stopwords=frozenset(tok["stopwords"]),
            )
        )

        self.path_table = PathTable()
        path_strings = _StringTable(
            sections.column("paths_off"), sections.blob("paths_blob")
        )
        for text in path_strings:
            self.path_table.intern(parse_path(text))

        self.path_node_counts = dict(
            zip(
                sections.column("pnode_pids"),
                sections.column("pnode_counts"),
            )
        )
        self.path_token_totals_map = dict(
            zip(
                sections.column("ptot_pids"),
                sections.column("ptot_vals"),
            )
        )
        self.max_depth = meta["max_path_depth"]

        vocab_table = _StringTable(
            sections.column("voc_off"), sections.blob("voc_blob")
        )
        self.vocabulary = SnapshotVocabulary(
            vocab_table,
            sections.column("voc_cf"),
            sections.column("voc_df"),
            sections.column("voc_rel"),
            meta["total_tokens"],
            meta["element_doc_count"],
        )

        packer_meta = meta["packer"]
        packer = DeweyPacker(
            packer_meta["max_depth"], packer_meta["component_bits"]
        )
        subtree = PackedKeyMap(
            sections.column("sub_keys"), sections.column("sub_lens")
        )
        self._packed_index = SnapshotPackedIndex(
            packer,
            subtree,
            self.vocabulary,
            sections.column("post_starts"),
            sections.column("post_keys"),
            sections.column("post_pids"),
            sections.column("post_tfs"),
        )
        self.path_index = SnapshotPathIndex(
            self.vocabulary,
            sections.column("pidx_starts"),
            sections.column("pidx_pids"),
            sections.column("pidx_counts"),
        )
        self._inverted: _LazyInvertedIndex | None = None
        self._subtree_tuple_counts: dict[DeweyCode, int] | None = None
        self._fastss: object | None = None
        self._init_query_caches()

    # -- query surface shared with CorpusIndex -------------------------

    def packed_view(self) -> SnapshotPackedIndex:
        """The columnar engine view (already built — it *is* the file)."""
        return self._packed_index

    @property
    def inverted(self) -> _LazyInvertedIndex:
        """Tuple-engine shim; packed queries never touch it."""
        found = self._inverted
        if found is None:
            found = _LazyInvertedIndex(self._packed_index)
            self._inverted = found
        return found

    @property
    def subtree_token_counts(self) -> dict[DeweyCode, int]:
        """Tuple-keyed |D(r)| map, materialized on first (rare) use."""
        found = self._subtree_tuple_counts
        if found is None:
            unpack = self._packed_index.packer.unpack
            found = {
                unpack(key): count
                for key, count in self._packed_index.subtree_lengths
                .items()
            }
            self._subtree_tuple_counts = found
        return found

    def subtree_length(self, dewey: DeweyCode) -> int:
        """|D(r)| — token count of the virtual document rooted at r."""
        try:
            key = self._packed_index.packer.pack(dewey)
        except DeweyError:
            # A shape the corpus never contained cannot have tokens.
            return 0
        return self._packed_index.subtree_lengths.get(key, 0)

    # -- variant generation --------------------------------------------

    def variant_generator(
        self,
        max_errors: int = 2,
        cache_size: int = DEFAULT_VARIANT_CACHE_SIZE,
    ) -> VariantGenerator:
        """A variant generator over this corpus's vocabulary.

        Served from the embedded FastSS sections when present and built
        with a radius >= ``max_errors``; otherwise (no sections, or a
        larger radius requested) a fresh index is built from the
        vocabulary — correct either way, just slower to construct.
        """
        embedded = self._fastss_index()
        if embedded is not None and max_errors <= embedded.max_errors:
            return VariantGenerator(
                (),
                max_errors=max_errors,
                cache_size=cache_size,
                _shared_index=embedded,
            )
        return VariantGenerator(
            self.vocabulary.tokens(),
            max_errors=max_errors,
            cache_size=cache_size,
        )

    def _fastss_index(self):
        if self._fastss is not None:
            return self._fastss
        fss_meta = self._meta.get("fastss")
        if not fss_meta or "fss_s_off" not in self._sections.table:
            return None
        sections = self._sections
        vocab_table = self.vocabulary._table

        def bucket_table(tag: str) -> _SnapshotBuckets:
            return _SnapshotBuckets(
                _StringTable(
                    sections.column(f"fss_{tag}_off"),
                    sections.blob(f"fss_{tag}_blob"),
                ),
                sections.column(f"fss_{tag}_starts"),
                sections.column(f"fss_{tag}_tok"),
                vocab_table,
            )

        if fss_meta["kind"] == "partitioned":
            self._fastss = _SnapshotPartitionedFastSS(
                bucket_table("s"),
                bucket_table("p"),
                bucket_table("x"),
                fss_meta["max_errors"],
                fss_meta["partition_threshold"],
                fss_meta["long_lengths"],
            )
        else:
            self._fastss = _SnapshotFastSSIndex(
                bucket_table("s"), fss_meta["max_errors"]
            )
        return self._fastss

    # -- introspection --------------------------------------------------

    def describe(self) -> dict:
        """Summary counters plus the on-disk per-section byte sizes."""
        counts = self._meta["counts"]
        section_bytes = {
            name: length
            for name, (_off, length, _crc) in sorted(
                self._sections.table.items()
            )
        }
        return {
            "tokens": counts["tokens"],
            "postings": counts["postings"],
            "paths": counts["paths"],
            "total_occurrences": self._meta["total_tokens"],
            "snapshot_bytes": {
                **section_bytes,
                "total": len(self._mapped),
            },
            # Query-time heap caches on top of the mapping (bounded
            # LRUs; zero until queries populate them).
            "cache_bytes": {
                "merge_plans": self.intersection_cache.approx_bytes(),
            },
        }

    def close(self) -> None:
        """Best-effort unmap.

        Memoryview slices handed to query structures keep the mapping
        alive; closing then raises ``BufferError``, which is swallowed —
        the mapping is reclaimed when the index is garbage-collected.
        """
        try:
            self._mapped.close()
        except BufferError:
            pass


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def load_snapshot(path: str, metrics=None) -> SnapshotCorpusIndex:
    """Map a v3 snapshot and wrap it as a query-ready corpus index.

    O(header + paths): posting, vocabulary, and FastSS sections are
    only *referenced*, their bytes fault in lazily as queries touch
    them.  Header, table checksum, and section bounds are validated;
    run :func:`verify_snapshot` for a deep per-section CRC check.
    """
    metrics = metrics or NULL_METRICS
    with metrics.stage(INDEX_LOAD_STAGE):
        mapped = _map_file(path)
        table = _parse_table(mapped)
        sections = _Sections(mapped, table)
        try:
            meta = json.loads(bytes(sections.blob("meta")))
        except ValueError as error:
            raise StorageError(
                f"snapshot meta section is not valid JSON: {error}"
            ) from None
        return SnapshotCorpusIndex(mapped, sections, meta, path)


def verify_snapshot(path: str) -> dict:
    """Deep-check every section CRC; return a summary dict.

    Raises :class:`StorageError` on any mismatch, naming the damaged
    section — this is the integrity gate for snapshot distribution
    (the fast loader only validates the header and table).
    """
    mapped = _map_file(path)
    try:
        table = _parse_table(mapped)
        view = memoryview(mapped)
        for name, (offset, length, stored) in sorted(table.items()):
            actual = zlib.crc32(view[offset : offset + length])
            actual &= 0xFFFFFFFF
            if actual != stored:
                raise StorageError(
                    f"snapshot section {name!r} checksum mismatch "
                    f"(stored {stored:#010x}, computed {actual:#010x})"
                )
        view.release()
        return {
            "path": path,
            "bytes": len(mapped),
            "sections": len(table),
        }
    finally:
        try:
            mapped.close()
        except BufferError:  # pragma: no cover - defensive
            pass


def quarantine_snapshot(path: str, metrics=None) -> str | None:
    """Move a damaged snapshot aside so nothing loads it again.

    Renames ``path`` to ``path + ".quarantined"`` (atomic; an existing
    quarantine file from an earlier incident is overwritten) and bumps
    the ``snapshot_quarantined_total`` counter.  Returns the quarantine
    path, or ``None`` when the rename failed (file already gone, or a
    permission problem — logged, not raised: quarantine is a best-effort
    cleanup on an already-failing path).

    Live mappings of the file keep working after the rename (POSIX
    keeps mapped pages valid), so a parent process that loaded the
    snapshot before it went bad continues serving while new loads and
    new workers fall back.
    """
    metrics = metrics or NULL_METRICS
    target = path + QUARANTINE_SUFFIX
    try:
        os.replace(path, target)
    except OSError as error:
        logger.warning(
            "could not quarantine snapshot %s: %s", path, error
        )
        return None
    metrics.inc("snapshot_quarantined_total")
    logger.warning("quarantined corrupt snapshot %s -> %s", path, target)
    return target


def load_resilient(
    path: str,
    metrics=None,
    verify: bool = False,
    fallback_path: str | None = None,
    rebuild=None,
):
    """Load an on-disk index, quarantining a corrupt v3 snapshot.

    The degradation ladder:

    1. ``snapshot_or_corpus(path)`` — optionally preceded by a deep
       per-section CRC check (``verify=True``) when the file is a v3
       snapshot;
    2. on a :class:`StorageError` from a v3 snapshot, the file is
       quarantined (moved to ``path + ".quarantined"``, counter
       bumped) and the loader falls back to ``fallback_path`` (a v1/v2
       index or older snapshot) when given;
    3. else to ``rebuild()`` — a zero-argument callable returning a
       fresh corpus index (e.g. re-parsing the source documents).

    Corruption in a *non*-snapshot file is not quarantined (the v1/v2
    formats are the fallback tier, not the managed artifact) but still
    falls through the same ladder.  Raises the original
    :class:`StorageError` when no fallback recovers.
    """
    metrics = metrics or NULL_METRICS
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
        is_snapshot = magic == MAGIC
        if is_snapshot and verify:
            verify_snapshot(path)
        return snapshot_or_corpus(path, metrics=metrics)
    except StorageError as error:
        if is_snapshot:
            quarantine_snapshot(path, metrics=metrics)
        logger.warning("index load failed for %s: %s", path, error)
        if fallback_path is not None:
            try:
                return load_resilient(
                    fallback_path, metrics=metrics, verify=verify,
                    rebuild=rebuild,
                )
            except StorageError:
                pass
        if rebuild is not None:
            return rebuild()
        raise


def snapshot_or_corpus(path: str, metrics=None):
    """Load ``path`` as a snapshot if it is one, else as v1/v2.

    The cold-start entry point for callers that accept any on-disk
    index: sniffs the magic and dispatches to the right loader, timing
    either path under the ``index_load`` stage.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
    if magic == MAGIC:
        return load_snapshot(path, metrics=metrics)
    metrics = metrics or NULL_METRICS
    with metrics.stage(INDEX_LOAD_STAGE):
        from repro.index.storage import load_index
        from repro.index.storage_binary import MAGIC as BINARY_MAGIC
        from repro.index.storage_binary import load_index_binary

        if magic == BINARY_MAGIC:
            return load_index_binary(path)
        return load_index(path)
