"""Sharded v3 snapshots: partition the corpus at subtree boundaries.

A shard is an ordinary, self-contained v3 snapshot (``index/snapshot``)
holding a *subset* of the postings plus the **global** statistics —
vocabulary (cf/df/rel, element doc count, total tokens), path table,
path node counts, Eq. 8 totals, the per-path term counts f_w^p, and
the FastSS variant buckets.  Query-side consequences:

* every shard generates the identical candidate space, error weights,
  normalizers, and result types as a single-index run (those depend
  only on global statistics);
* each shard's accumulator masses cover exactly the entities whose
  subtrees live on that shard, so per-candidate masses are *additive*
  across shards: summed exactly (``core/pruning.add_partial``), the
  merged table is bit-identical to the single-index table.

Partitioning invariant: the corpus is split at depth
``partition_depth`` subtree boundaries.  Every element subtree rooted
at that depth — and therefore every deeper subtree, including every
Algorithm 1 group at ``min_depth >= partition_depth`` and every scored
entity — lives wholly on one shard.  Postings *above* the partition
depth (tokens attached to shallow structural nodes) all go to shard 0;
subtree length entries above the partition depth are replicated to
every shard with their global values so ``subtree_length`` stays
correct everywhere.

Assignment strategies (both deterministic):

* ``range`` (default) — the sorted partition subtrees are cut into N
  contiguous runs balanced by their token counts; each shard's
  manifest entry records its ``[lo, hi]`` Dewey range.
* ``hash`` — crc32 of the dotted Dewey prefix modulo N; spreads hot
  document-order neighborhoods at the cost of range locality.

The shard set is described by a CRC-checked JSON manifest
(:class:`ShardManifest`): per shard its relative path, sha256, byte
size, Dewey range, and its share of the Eq. 8 totals (entities =
partition subtrees, token_total = their subtree lengths, postings);
the per-shard shares must sum to the recorded global totals, which
:func:`load_manifest` re-validates on every load.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass

from repro.index.atomic import atomic_write
from repro.index.snapshot import build_snapshot, verify_snapshot
from repro.exceptions import ConfigurationError, StorageError
from repro.xmltree.dewey import DeweyCode, format_code

#: Manifest format tag + version (rejected on mismatch).
MANIFEST_FORMAT = "xclean-shard-manifest"
MANIFEST_VERSION = 1

#: Default partition depth.  Must stay <= the query-time ``min_depth``
#: (``XCleanConfig``, default 2) so groups and entities never span
#: shards; 2 matches the paper's "d = 2 is usually enough".
DEFAULT_PARTITION_DEPTH = 2

#: File name of the manifest inside a shard directory.
MANIFEST_NAME = "manifest.json"

_STRATEGIES = ("range", "hash")


def _dotted(code: DeweyCode) -> str:
    return format_code(code)


def hash_shard_of(prefix: DeweyCode, shards: int) -> int:
    """Deterministic hash assignment of one partition prefix.

    crc32 rather than ``hash()``: Python string hashing is salted per
    process, and shard assignment must be reproducible across builds.
    """
    return zlib.crc32(_dotted(prefix).encode("utf-8")) % shards


def partition_prefixes(index, partition_depth: int) -> list[DeweyCode]:
    """The sorted partition subtree roots (depth == partition_depth)."""
    return sorted(
        code
        for code in index.subtree_token_counts
        if len(code) == partition_depth
    )


def assign_prefixes(
    index,
    shards: int,
    partition_depth: int = DEFAULT_PARTITION_DEPTH,
    strategy: str = "range",
) -> dict[DeweyCode, int]:
    """Map every partition prefix to a shard id.

    ``range`` balances contiguous runs by subtree token count (the
    Eq. 8 totals are the best single predictor of per-shard scoring
    work); ``hash`` uses :func:`hash_shard_of`.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if strategy not in _STRATEGIES:
        raise ConfigurationError(
            f"unknown shard strategy {strategy!r}; "
            f"expected one of {_STRATEGIES}"
        )
    prefixes = partition_prefixes(index, partition_depth)
    if strategy == "hash":
        return {
            prefix: hash_shard_of(prefix, shards) for prefix in prefixes
        }
    lengths = index.subtree_token_counts
    total = sum(lengths[prefix] for prefix in prefixes) or 1
    assignment: dict[DeweyCode, int] = {}
    seen = 0
    for rank, prefix in enumerate(prefixes):
        # Cut so that shard i ends once the running weight passes
        # total*(i+1)/N — contiguous, deterministic, balanced; the
        # min() guards degenerate weight skew, the max() guarantees
        # progress when there are more shards than prefixes.
        remaining_prefixes = len(prefixes) - rank
        shard = min(
            shards * seen // total,
            shards - 1,
            # Never leave a later shard more prefixes than it can use.
            len(prefixes) - remaining_prefixes,
        )
        assignment[prefix] = shard
        seen += lengths[prefix]
    return assignment


class _ShardInverted:
    """Filtered posting view handed to ``build_snapshot``.

    ``list_for`` keeps only postings whose partition prefix is
    assigned to this shard; postings shallower than the partition
    depth belong to shard 0.  Lists stay strictly document-ordered
    (filtering preserves order), so snapshot packing is unchanged.
    """

    def __init__(self, inverted, assignment, shard_id, partition_depth):
        self._inverted = inverted
        self._assignment = assignment
        self._shard_id = shard_id
        self._depth = partition_depth

    def _keep(self, code: DeweyCode) -> bool:
        if len(code) < self._depth:
            return self._shard_id == 0
        return self._assignment.get(code[: self._depth]) == self._shard_id

    def tokens(self):
        return self._inverted.tokens()

    def list_for(self, token: str) -> list:
        keep = self._keep
        return [
            posting
            for posting in self._inverted.list_for(token)
            if keep(posting[0])
        ]

    def total_postings(self) -> int:
        return sum(
            len(self.list_for(token)) for token in self.tokens()
        )


class _ShardView:
    """One shard of a corpus, shaped like what ``build_snapshot`` reads.

    Postings and deep subtree lengths are filtered to the shard;
    everything statistical — vocabulary, path table, path node counts,
    Eq. 8 totals, f_w^p, tokenizer — is the *global* object, so the
    resulting snapshot scores its local entities with global smoothing
    and normalization (the additivity argument in the module
    docstring).
    """

    def __init__(self, index, assignment, shard_id, partition_depth):
        self._index = index
        self.inverted = _ShardInverted(
            index.inverted, assignment, shard_id, partition_depth
        )
        depth = partition_depth
        self.subtree_token_counts = {
            code: count
            for code, count in index.subtree_token_counts.items()
            if (
                len(code) < depth  # shared shallow spine, global values
                or assignment.get(code[:depth]) == shard_id
            )
        }
        self.vocabulary = index.vocabulary
        self.path_table = index.path_table
        self.path_node_counts = index.path_node_counts
        self.path_index = index.path_index
        self.tokenizer = index.tokenizer
        self.name = f"{index.name}#shard{shard_id}"

    def path_token_totals(self):
        return self._index.path_token_totals()

    def max_path_depth(self) -> int:
        return self._index.max_path_depth()


@dataclass(frozen=True)
class ShardInfo:
    """One shard's manifest entry."""

    shard_id: int
    #: Path relative to the manifest's directory.
    path: str
    sha256: str
    bytes: int
    #: This shard's share of the Eq. 8 totals.
    entities: int
    token_total: int
    postings: int
    #: Inclusive dotted-Dewey range of assigned partition subtrees
    #: (range strategy; ``None`` for hash or an empty shard).
    range: tuple[str, str] | None = None

    def as_dict(self) -> dict:
        out = {
            "shard_id": self.shard_id,
            "path": self.path,
            "sha256": self.sha256,
            "bytes": self.bytes,
            "entities": self.entities,
            "token_total": self.token_total,
            "postings": self.postings,
        }
        if self.range is not None:
            out["range"] = list(self.range)
        return out


@dataclass(frozen=True)
class ShardManifest:
    """The CRC-checked description of one sharded index build."""

    name: str
    partition_depth: int
    strategy: str
    shards: tuple[ShardInfo, ...]
    #: Global Eq. 8 totals the per-shard shares must sum to.
    entities: int
    token_total: int
    postings: int
    #: Data generation of this build (0 for pre-live manifests;
    #: bumped by every compaction fold, mirroring the per-shard
    #: snapshot meta stamps).
    generation: int = 0
    #: crc32 of the canonical payload (computed on write/load).
    crc: int = 0
    #: Directory the relative shard paths resolve against (set by
    #: :func:`load_manifest`; empty for an in-memory manifest).
    directory: str = ""

    def shard_paths(self) -> list[str]:
        """Absolute (directory-resolved) shard snapshot paths."""
        return [
            os.path.join(self.directory, info.path)
            for info in self.shards
        ]

    def payload(self) -> dict:
        """The canonical JSON payload (without crc)."""
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "name": self.name,
            "generation": self.generation,
            "partition_depth": self.partition_depth,
            "strategy": self.strategy,
            "totals": {
                "entities": self.entities,
                "token_total": self.token_total,
                "postings": self.postings,
            },
            "shards": [info.as_dict() for info in self.shards],
        }


def _payload_crc(payload: dict) -> int:
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(canonical.encode("utf-8"))


def write_manifest(manifest: ShardManifest, path: str) -> ShardManifest:
    """Atomically write ``manifest`` (with a fresh crc) to ``path``."""
    payload = manifest.payload()
    crc = _payload_crc(payload)
    document = dict(payload, crc=crc)
    with atomic_write(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return ShardManifest(
        name=manifest.name,
        partition_depth=manifest.partition_depth,
        strategy=manifest.strategy,
        shards=manifest.shards,
        entities=manifest.entities,
        token_total=manifest.token_total,
        postings=manifest.postings,
        generation=manifest.generation,
        crc=crc,
        directory=os.path.dirname(os.path.abspath(path)),
    )


def load_manifest(path: str) -> ShardManifest:
    """Load + integrity-check a shard manifest.

    Raises :class:`StorageError` on a bad format tag, a crc mismatch
    (any byte of the payload changed since the build), or per-shard
    totals that no longer sum to the recorded global totals.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        raise StorageError(
            f"cannot read shard manifest {path}: {error}"
        ) from error
    if not isinstance(document, dict) or document.get(
        "format"
    ) != MANIFEST_FORMAT:
        raise StorageError(f"{path} is not a shard manifest")
    if document.get("version") != MANIFEST_VERSION:
        raise StorageError(
            f"{path}: unsupported manifest version "
            f"{document.get('version')!r}"
        )
    stored_crc = document.get("crc")
    payload = {k: v for k, v in document.items() if k != "crc"}
    actual_crc = _payload_crc(payload)
    if stored_crc != actual_crc:
        raise StorageError(
            f"{path}: manifest crc mismatch (stored {stored_crc}, "
            f"computed {actual_crc}) — manifest corrupt or hand-edited"
        )
    totals = document["totals"]
    shards = tuple(
        ShardInfo(
            shard_id=entry["shard_id"],
            path=entry["path"],
            sha256=entry["sha256"],
            bytes=entry["bytes"],
            entities=entry["entities"],
            token_total=entry["token_total"],
            postings=entry["postings"],
            range=tuple(entry["range"]) if "range" in entry else None,
        )
        for entry in document["shards"]
    )
    if [info.shard_id for info in shards] != list(range(len(shards))):
        raise StorageError(f"{path}: shard ids must be 0..N-1 in order")
    for field in ("entities", "token_total", "postings"):
        share_sum = sum(getattr(info, field) for info in shards)
        if share_sum != totals[field]:
            raise StorageError(
                f"{path}: per-shard {field} sum {share_sum} != global "
                f"total {totals[field]}"
            )
    return ShardManifest(
        name=document["name"],
        partition_depth=document["partition_depth"],
        strategy=document["strategy"],
        shards=shards,
        entities=totals["entities"],
        token_total=totals["token_total"],
        postings=totals["postings"],
        generation=document.get("generation", 0),
        crc=stored_crc,
        directory=os.path.dirname(os.path.abspath(path)),
    )


def is_manifest(path: str) -> bool:
    """Cheap sniff: does ``path`` look like a shard manifest?

    Reads only the first bytes — the dispatch twin of the XCS3 magic
    check in ``snapshot_or_corpus``.  A directory counts when it holds
    a ``manifest.json``.
    """
    if os.path.isdir(path):
        return os.path.exists(os.path.join(path, MANIFEST_NAME))
    try:
        with open(path, "rb") as handle:
            head = handle.read(256)
    except OSError:
        return False
    return (
        head.lstrip().startswith(b"{")
        and MANIFEST_FORMAT.encode("utf-8") in head
    )


def resolve_manifest_path(path: str) -> str:
    """Accept either the manifest file or its directory."""
    if os.path.isdir(path):
        return os.path.join(path, MANIFEST_NAME)
    return path


def _sha256_of(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def shard_file_name(shard_id: int) -> str:
    return f"shard-{shard_id:04d}.xcs3"


def build_sharded_snapshot(
    index,
    directory: str,
    shards: int,
    partition_depth: int = DEFAULT_PARTITION_DEPTH,
    strategy: str = "range",
    generator=None,
    fastss_max_errors: int | None = 3,
    workers: int | None = None,
    metrics=None,
    generation: int = 0,
) -> ShardManifest:
    """Partition ``index`` into N v3 snapshots under ``directory``.

    Each shard is written through ``build_snapshot`` (atomic writes,
    optional parallel packing, byte-identical to a serial build) and
    recorded in the returned manifest, itself written atomically as
    ``directory/manifest.json``.  ``generator`` (or a freshly built
    FastSS index over the *global* vocabulary) is embedded into every
    shard so variant generation is identical on all of them.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if partition_depth < 1:
        raise ConfigurationError("partition_depth must be >= 1")
    os.makedirs(directory, exist_ok=True)
    assignment = assign_prefixes(
        index, shards, partition_depth, strategy
    )
    if generator is None and fastss_max_errors is not None:
        # Built once over the global vocabulary, embedded N times.
        from repro.fastss.generator import VariantGenerator

        generator = VariantGenerator(
            [row[0] for row in index.vocabulary.export_rows()],
            max_errors=fastss_max_errors,
        )
    lengths = index.subtree_token_counts
    infos: list[ShardInfo] = []
    for shard_id in range(shards):
        view = _ShardView(
            index, assignment, shard_id, partition_depth
        )
        file_name = shard_file_name(shard_id)
        shard_path = os.path.join(directory, file_name)
        build_snapshot(
            view,
            shard_path,
            generator=generator,
            fastss_max_errors=fastss_max_errors,
            workers=workers,
            metrics=metrics,
            generation=generation,
        )
        mine = sorted(
            prefix
            for prefix, owner in assignment.items()
            if owner == shard_id
        )
        infos.append(
            ShardInfo(
                shard_id=shard_id,
                path=file_name,
                sha256=_sha256_of(shard_path),
                bytes=os.path.getsize(shard_path),
                entities=len(mine),
                token_total=sum(lengths[p] for p in mine),
                postings=view.inverted.total_postings(),
                range=(
                    (_dotted(mine[0]), _dotted(mine[-1]))
                    if mine and strategy == "range"
                    else None
                ),
            )
        )
    manifest = ShardManifest(
        name=index.name,
        partition_depth=partition_depth,
        strategy=strategy,
        shards=tuple(infos),
        entities=len(assignment),
        token_total=sum(lengths[p] for p in assignment),
        postings=index.inverted.total_postings(),
        generation=generation,
    )
    return write_manifest(
        manifest, os.path.join(directory, MANIFEST_NAME)
    )


def verify_sharded(manifest_path: str) -> list[dict]:
    """Deep-verify every shard of a manifest.

    Returns one report dict per shard: ``{"shard_id", "path", "ok",
    "bytes", "error"}``.  Verification is per-section CRC
    (``verify_snapshot``) plus the manifest's recorded sha256 and byte
    size, so both silent corruption and file swaps are caught.  The
    manifest itself is integrity-checked by :func:`load_manifest`
    before any shard is opened.
    """
    manifest = load_manifest(resolve_manifest_path(manifest_path))
    reports: list[dict] = []
    for info, path in zip(manifest.shards, manifest.shard_paths()):
        report = {
            "shard_id": info.shard_id,
            "path": path,
            "ok": True,
            "bytes": info.bytes,
            "error": None,
        }
        try:
            verify_snapshot(path)
            actual = _sha256_of(path)
            if actual != info.sha256:
                raise StorageError(
                    f"sha256 mismatch: manifest {info.sha256[:12]}…, "
                    f"file {actual[:12]}…"
                )
            size = os.path.getsize(path)
            if size != info.bytes:
                raise StorageError(
                    f"size mismatch: manifest {info.bytes}, file {size}"
                )
        except (OSError, StorageError) as error:
            report["ok"] = False
            report["error"] = str(error)
        reports.append(report)
    return reports
