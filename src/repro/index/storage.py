"""Persistence of :class:`~repro.index.corpus.CorpusIndex` objects.

A versioned, line-oriented text format.  Deliberately simple: tokens are
whitespace-free by construction, XML labels never contain ``/``, Dewey
codes serialize as dotted integers — so every record fits on one
space-separated line, is diff-able, and loads without a binary codec.

The path index (f_w^p) is *not* stored: it is derivable from postings in
one linear pass, and rebuilding is faster than parsing it back in.
"""

from __future__ import annotations

import io
from typing import TextIO

from repro.exceptions import StorageError
from repro.index.corpus import CorpusIndex
from repro.index.inverted import InvertedIndex, InvertedList
from repro.index.atomic import atomic_write
from repro.index.path_index import PathIndex, path_counts_from_postings
from repro.index.tokenizer import Tokenizer
from repro.index.vocabulary import Vocabulary
from repro.xmltree import dewey as dewey_mod
from repro.xmltree.labelpath import PathTable, format_path, parse_path

MAGIC = "XCLEANIDX"
#: Version 2 adds the TOTALS section (precomputed Eq. 8 normalizers
#: W_p plus the maximal label-path depth) so loading an index never
#: re-derives them from the postings.  Version-1 files still load; the
#: totals are derived on the fly.
VERSION = 2


def save_index(index: CorpusIndex, path: str) -> None:
    """Write ``index`` to ``path`` (overwriting, crash-safe).

    The bytes land in ``<path>.tmp`` and are atomically renamed into
    place, so a crash mid-write never leaves a torn file under
    ``path`` (see :mod:`repro.index.atomic`).
    """
    with atomic_write(path, "w", encoding="utf-8") as handle:
        write_index(index, handle)


def load_index(path: str) -> CorpusIndex:
    """Load an index previously written by :func:`save_index`."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_index(handle)


def dumps(index: CorpusIndex) -> str:
    """Serialize to a string (round-trip tests)."""
    buffer = io.StringIO()
    write_index(index, buffer)
    return buffer.getvalue()


def loads(text: str) -> CorpusIndex:
    """Deserialize from a string produced by :func:`dumps`."""
    return read_index(io.StringIO(text))


def write_index(index: CorpusIndex, out: TextIO) -> None:
    """Serialize ``index`` to a text stream."""
    out.write(f"{MAGIC} {VERSION}\n")
    out.write(f"NAME {index.name}\n")

    paths = list(index.path_table)
    out.write(f"PATHS {len(paths)}\n")
    for labels in paths:
        out.write(format_path(labels) + "\n")

    out.write(f"PATHNODES {len(index.path_node_counts)}\n")
    for pid in sorted(index.path_node_counts):
        out.write(f"{pid} {index.path_node_counts[pid]}\n")

    out.write(f"SUBTREE {len(index.subtree_token_counts)}\n")
    for code in sorted(index.subtree_token_counts):
        count = index.subtree_token_counts[code]
        out.write(f"{dewey_mod.format_code(code)} {count}\n")

    totals = index.path_token_totals()
    out.write(f"TOTALS {len(totals)} {index.max_path_depth()}\n")
    for pid in sorted(totals):
        out.write(f"{pid} {totals[pid]!r}\n")

    vocab_rows = list(index.vocabulary.export_rows())
    out.write(
        f"VOCAB {len(vocab_rows)} {index.vocabulary.element_doc_count}\n"
    )
    for token, cf, df, max_rel in vocab_rows:
        out.write(f"{token} {cf} {df} {max_rel!r}\n")

    tokens = sorted(index.inverted.tokens())
    out.write(f"LISTS {len(tokens)}\n")
    for token in tokens:
        postings = index.inverted.list_for(token)
        out.write(f"TOKEN {token} {len(postings)}\n")
        for code, pid, tf in postings:
            out.write(f"{dewey_mod.format_code(code)} {pid} {tf}\n")
    out.write("END\n")


def _expect_header(line: str, keyword: str) -> list[str]:
    parts = line.split()
    if not parts or parts[0] != keyword:
        raise StorageError(f"expected {keyword} section, got {line!r}")
    return parts[1:]


def read_index(source: TextIO) -> CorpusIndex:
    """Parse an index from a text stream.

    Raises:
        StorageError: on any structural problem (wrong magic, truncated
            sections, malformed records).
    """
    try:
        return _read_index(source)
    except StorageError:
        raise
    except (ValueError, IndexError) as exc:
        raise StorageError(f"malformed index file: {exc}") from exc


def _read_index(source: TextIO) -> CorpusIndex:
    def next_line() -> str:
        line = source.readline()
        if not line:
            raise StorageError("unexpected end of index file")
        return line.rstrip("\n")

    header = next_line().split()
    if len(header) != 2 or header[0] != MAGIC:
        raise StorageError("not an XClean index file")
    version = int(header[1])
    if version not in (1, VERSION):
        raise StorageError(f"unsupported index version {header[1]}")

    name_parts = next_line().split(maxsplit=1)
    if name_parts[0] != "NAME":
        raise StorageError("missing NAME record")
    name = name_parts[1] if len(name_parts) > 1 else "index"

    (path_count,) = _expect_header(next_line(), "PATHS")
    path_table = PathTable()
    for _ in range(int(path_count)):
        pid = path_table.intern(parse_path(next_line()))
        del pid  # ids are dense and assigned in file order

    (node_count,) = _expect_header(next_line(), "PATHNODES")
    path_node_counts: dict[int, int] = {}
    for _ in range(int(node_count)):
        pid_text, count_text = next_line().split()
        path_node_counts[int(pid_text)] = int(count_text)

    (subtree_count,) = _expect_header(next_line(), "SUBTREE")
    subtree_counts: dict[tuple[int, ...], int] = {}
    for _ in range(int(subtree_count)):
        code_text, count_text = next_line().split()
        subtree_counts[dewey_mod.parse(code_text)] = int(count_text)

    path_token_totals: dict[int, float] | None = None
    max_depth: int | None = None
    if version >= 2:
        totals_header = _expect_header(next_line(), "TOTALS")
        max_depth = int(totals_header[1])
        path_token_totals = {}
        for _ in range(int(totals_header[0])):
            pid_text, total_text = next_line().split()
            path_token_totals[int(pid_text)] = float(total_text)

    vocab_header = _expect_header(next_line(), "VOCAB")
    vocab_rows = []
    for _ in range(int(vocab_header[0])):
        token, cf, df, max_rel = next_line().split()
        vocab_rows.append((token, int(cf), int(df), float(max_rel)))
    vocabulary = Vocabulary.from_rows(vocab_rows, int(vocab_header[1]))

    (list_count,) = _expect_header(next_line(), "LISTS")
    inverted = InvertedIndex()
    path_index = PathIndex()
    for _ in range(int(list_count)):
        token_header = next_line().split()
        if token_header[0] != "TOKEN" or len(token_header) != 3:
            raise StorageError(f"malformed TOKEN record: {token_header}")
        token = token_header[1]
        postings = []
        for _ in range(int(token_header[2])):
            code_text, pid_text, tf_text = next_line().split()
            postings.append(
                (dewey_mod.parse(code_text), int(pid_text), int(tf_text))
            )
        inverted.add_list(InvertedList(token, postings))
        path_index.set_counts(
            token, path_counts_from_postings(postings, path_table)
        )

    if next_line() != "END":
        raise StorageError("missing END record")

    return CorpusIndex(
        name=name,
        path_table=path_table,
        inverted=inverted,
        path_index=path_index,
        vocabulary=vocabulary,
        subtree_token_counts=subtree_counts,
        path_node_counts=path_node_counts,
        tokenizer=Tokenizer(),
        path_token_totals_map=path_token_totals,
        max_depth=max_depth,
    )
