"""Indexing substrate: tokenizer, vocabulary, inverted lists, path index.

Implements the data structures of Sections V-B and V-C of the paper: the
Dewey-coded inverted index, the MergedList abstraction, and the path
index that feeds result-type inference.
"""

from repro.index.corpus import CorpusIndex, build_corpus_index
from repro.index.inverted import (
    InvertedIndex,
    InvertedList,
    ListCursor,
    Posting,
)
from repro.index.merged_list import MergedEntry, MergedList
from repro.index.path_index import (
    PathIndex,
    build_path_index,
    path_counts_from_postings,
)
from repro.index.storage import dumps, load_index, loads, save_index
from repro.index.storage_binary import (
    dumps_binary,
    load_index_binary,
    loads_binary,
    save_index_binary,
)
from repro.index.tokenizer import (
    DEFAULT_STOPWORDS,
    Tokenizer,
    TokenizerConfig,
)
from repro.index.vocabulary import Vocabulary

__all__ = [
    "CorpusIndex",
    "DEFAULT_STOPWORDS",
    "InvertedIndex",
    "InvertedList",
    "ListCursor",
    "MergedEntry",
    "MergedList",
    "PathIndex",
    "Posting",
    "Tokenizer",
    "TokenizerConfig",
    "Vocabulary",
    "build_corpus_index",
    "build_path_index",
    "dumps",
    "dumps_binary",
    "load_index",
    "load_index_binary",
    "loads",
    "loads_binary",
    "path_counts_from_postings",
    "save_index",
    "save_index_binary",
]
