"""Tokenization of XML text content and keyword queries.

Section VII-A of the paper: text is split on whitespace and punctuation;
stop words, pure numbers, and short tokens (fewer than three characters)
are not indexed.  The same tokenizer must be used for documents and for
queries, otherwise query keywords would never match the vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

#: A small English stop word list.  The paper does not publish its list;
#: this is the classic Van Rijsbergen-style core, which is what matters:
#: extremely frequent glue words must not become query keywords.
DEFAULT_STOPWORDS = frozenset(
    """
    a about above after again all am an and any are as at be because been
    before being below between both but by could did do does doing down
    during each few for from further had has have having he her here hers
    him his how i if in into is it its itself just me more most my no nor
    not of off on once only or other our ours out over own same she so
    some such than that the their theirs them then there these they this
    those through to too under until up very was we were what when where
    which while who whom why will with you your yours
    """.split()
)


@dataclass(frozen=True)
class TokenizerConfig:
    """Configuration knobs for :class:`Tokenizer`.

    Attributes:
        min_length: tokens shorter than this are dropped (paper: 3).
        lowercase: case-fold tokens before use.
        drop_numbers: drop tokens consisting solely of digits.
        stopwords: tokens dropped regardless of length.
    """

    min_length: int = 3
    lowercase: bool = True
    drop_numbers: bool = True
    stopwords: frozenset[str] = field(default=DEFAULT_STOPWORDS)


class Tokenizer:
    """Splits text into index/query tokens per the paper's conventions."""

    def __init__(self, config: TokenizerConfig | None = None):
        self.config = config or TokenizerConfig()

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield accepted tokens from ``text`` in order of appearance."""
        config = self.config
        for raw in _split_words(text):
            token = raw.lower() if config.lowercase else raw
            if len(token) < config.min_length:
                continue
            if config.drop_numbers and token.isdigit():
                continue
            if token in config.stopwords:
                continue
            yield token

    def tokenize(self, text: str) -> list[str]:
        """All accepted tokens from ``text`` as a list."""
        return list(self.iter_tokens(text))

    def accepts(self, token: str) -> bool:
        """Whether a single, already-split token would be kept."""
        return self.tokenize(token) == [
            token.lower() if self.config.lowercase else token
        ]


def _split_words(text: str) -> Iterator[str]:
    """Split on any non-alphanumeric character (whitespace, punctuation)."""
    start = -1
    for i, ch in enumerate(text):
        if ch.isalnum():
            if start < 0:
                start = i
        else:
            if start >= 0:
                yield text[start:i]
                start = -1
    if start >= 0:
        yield text[start:]
