"""Background compaction and the live-index lifecycle manager.

:class:`LiveIndexManager` owns the moving parts of a live index (see
``docs/index_format.md``, "Live updates"): the logical document, the
:class:`~repro.index.wal.WriteAheadLog`, the in-memory
:class:`~repro.index.delta.DeltaSegment`, and the generation-stamped
base artifact (a single v3 snapshot or a shard manifest).

Three files live next to the base artifact::

    <index>            the snapshot (or manifest directory)
    <index>.live.json  the logical document, stamped with a generation
    <index>.wal        the record log, stamped with a base generation

**Generation lifecycle** (build → serve → compact → swap → retire):
every compaction folds the WAL'd updates into a fresh build stamped
``generation + 1`` through the atomic writer, then resets the WAL to
the new base.  The three stamps (live source, snapshot/manifest, WAL)
let recovery classify any crash point:

* live source *ahead* of the snapshot — the crash hit between the
  source write and the snapshot replace; recovery finishes the
  interrupted compaction (every acknowledged update is in the source).
* WAL base *behind* the snapshot — the crash hit between the snapshot
  replace and the WAL reset; the records are already folded in, so
  the WAL is reset.
* all three equal — normal serve state; WAL records (if any) replay
  into the delta segment.

The ``compact.swap`` fault site fires at the start of a compaction and
again between the snapshot build and the WAL reset, so chaos plans can
crash both recovery windows deterministically.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from repro.exceptions import StorageError, UpdateError
from repro.index.atomic import atomic_write
from repro.index.corpus import build_corpus_index
from repro.index.delta import (
    DEFAULT_DELTA_MAX_RECORDS,
    DeltaOverlayCorpus,
    DeltaSegment,
    apply_record,
    document_from_json,
    document_to_json,
    node_from_json,
)
from repro.index.sharding import (
    MANIFEST_NAME,
    build_sharded_snapshot,
    load_manifest,
)
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.index.wal import WalRecord, WriteAheadLog
from repro.obs.faults import active as _active_faults
from repro.obs.metrics import NULL_METRICS
from repro.xmltree.document import XMLDocument

LIVE_SUFFIX = ".live.json"
WAL_SUFFIX = ".wal"


def _copy_document(document: XMLDocument) -> XMLDocument:
    """Deep-copy via the sidecar codec (frees the caller's tree)."""
    return document_from_json(document_to_json(document))


class LiveIndexManager:
    """Crash-safe lifecycle manager for one live index.

    ``document`` seeds the logical document on the *first* open (it
    must be the exact corpus the base artifact was built from); later
    opens recover it from the live-source sidecar plus the WAL, so a
    restarted process needs only the index path.
    """

    def __init__(
        self,
        index_path: str,
        *,
        document: XMLDocument | None = None,
        base=None,
        wal_path: str | None = None,
        live_path: str | None = None,
        max_records: int = DEFAULT_DELTA_MAX_RECORDS,
        fastss_max_errors: int | None = 3,
        metrics=None,
    ):
        self.index_path = index_path
        self.sharded = os.path.isdir(index_path)
        anchor = (
            os.path.join(index_path, "live")
            if self.sharded
            else index_path
        )
        self.wal_path = wal_path or anchor + WAL_SUFFIX
        self.live_path = live_path or anchor + LIVE_SUFFIX
        self.max_records = max_records
        self.fastss_max_errors = fastss_max_errors
        self.metrics = metrics or NULL_METRICS
        self.recovered_records = 0
        #: Monotonic count of WAL-acknowledged records this process
        #: has appended; lets callers size a partial ``apply`` failure.
        self.acked_records = 0
        #: Monotonic count of records this process has successfully
        #: applied to the logical document.  ``acked_records`` can run
        #: ahead of it only when a record failed *after* its fsync-ack
        #: — such a record lives solely in the WAL, so compacting
        #: (which resets the log) would silently discard it;
        #: :meth:`compact` refuses while the gap exists.
        self.applied_records = 0
        #: Records currently sitting in the WAL (since its last
        #: reset): the "WAL depth" /statusz reports.  Replay seeds it;
        #: every ack bumps it; compaction zeroes it.
        self.wal_records = 0
        #: ``{generation, duration_s, outcome, records_folded}`` of
        #: the most recent :meth:`compact` (``outcome`` is ``"ok"`` or
        #: ``"failed"``); ``None`` before the first one.
        self.last_compaction: dict | None = None

        self.base = base if base is not None else self._load_base()
        self.generation = self._base_generation()
        self.tokenizer = self._base_tokenizer()
        self.document = self._open_document(document)
        self.delta = DeltaSegment(max_records=max_records)
        self._overlay: DeltaOverlayCorpus | None = None
        self.wal = WriteAheadLog(self.wal_path)
        self._open_wal()

    # ------------------------------------------------------------------
    # Base artifact plumbing (single snapshot vs shard manifest)
    # ------------------------------------------------------------------

    def _load_base(self):
        if self.sharded:
            return load_manifest(
                os.path.join(self.index_path, MANIFEST_NAME)
            )
        return load_snapshot(self.index_path, metrics=self.metrics)

    def _base_generation(self) -> int:
        if self.sharded:
            return self.base.generation
        return getattr(self.base, "data_generation", 0)

    def _base_tokenizer(self):
        if self.sharded:
            # Shard 0 carries the global tokenizer config (every shard
            # does; loading one is O(header + paths)).
            shard = load_snapshot(self.base.shard_paths()[0])
            tokenizer = shard.tokenizer
            shard.close()
            return tokenizer
        return self.base.tokenizer

    # ------------------------------------------------------------------
    # Open / recovery
    # ------------------------------------------------------------------

    def _open_document(
        self, document: XMLDocument | None
    ) -> XMLDocument:
        if os.path.exists(self.live_path):
            with open(self.live_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            live_generation = int(payload.get("generation", 0))
            recovered = document_from_json(payload)
            if live_generation > self.generation:
                # Crash between the live-source write and the base
                # swap: finish the interrupted compaction now.
                self.document = recovered
                self.delta = DeltaSegment(max_records=self.max_records)
                self._finish_compaction(live_generation)
                return self.document
            if live_generation < self.generation:
                raise StorageError(
                    f"{self.live_path}: live source generation "
                    f"{live_generation} behind index generation "
                    f"{self.generation} — sidecar does not belong to "
                    f"this index"
                )
            return recovered
        if document is None:
            raise UpdateError(
                f"{self.index_path}: no live source sidecar; the first "
                f"open must pass the document the index was built from"
            )
        copied = _copy_document(document)
        self._write_live_source(copied, self.generation)
        return copied

    def _write_live_source(
        self, document: XMLDocument, generation: int
    ) -> None:
        payload = dict(
            document_to_json(document), generation=generation
        )
        with atomic_write(
            self.live_path, "w", encoding="utf-8"
        ) as handle:
            json.dump(payload, handle, separators=(",", ":"))

    def _open_wal(self) -> None:
        if not self.wal.exists:
            self.wal.create(self.generation)
            return
        try:
            records = self.wal.replay()
        except StorageError:
            # Torn header: the only write that produces one is an
            # interrupted create/reset, which happens strictly after
            # the records it dropped were folded into the base.
            self.wal.create(self.generation)
            return
        if self.wal.base_generation != self.generation:
            # Records already folded by a compaction that crashed
            # before resetting the log.
            self.wal.reset(self.generation)
            return
        for record in records:
            result = apply_record(self.document, record)
            if not self.sharded:
                self.delta.apply(
                    result, self.tokenizer, self.base.path_table
                )
        self.recovered_records = len(records)
        self.wal_records = len(records)
        if records and not self.sharded:
            self.overlay.refresh()

    # ------------------------------------------------------------------
    # Serving surface
    # ------------------------------------------------------------------

    @property
    def overlay(self) -> DeltaOverlayCorpus:
        if self.sharded:
            raise UpdateError(
                "sharded live indexes fold updates eagerly; there is "
                "no overlay corpus"
            )
        found = self._overlay
        if found is None:
            found = DeltaOverlayCorpus(self.base, self.delta)
            self._overlay = found
        return found

    @property
    def corpus(self):
        """What to serve right now: overlay when dirty, else the base."""
        if self.delta.dirty:
            return self.overlay
        return self.base

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------

    def _validate(self, record: WalRecord) -> None:
        """Reject structurally invalid records *before* logging them.

        A record is only appended once it is guaranteed to apply, so
        WAL replay can never fail on an acknowledged record.  That
        guarantee covers the payload too: the subtree is fully parsed
        here — a record whose subtree cannot round-trip through
        ``node_from_json`` (``WalRecord`` itself only checks presence)
        must never be fsync-acknowledged, or every later open would
        crash replaying it.
        """
        if record.subtree is not None:
            node_from_json(record.subtree)
        if record.op == "add":
            if self.document.node_at(record.dewey) is None:
                raise UpdateError(
                    f"add target (parent) {record.dewey!r} does not "
                    f"exist"
                )
            return
        if len(record.dewey) < 2:
            raise UpdateError(
                f"cannot {record.op} the document root "
                f"{record.dewey!r}"
            )
        if self.document.node_at(record.dewey) is None:
            raise UpdateError(
                f"{record.op} target {record.dewey!r} does not exist"
            )

    def apply(self, records) -> int:
        """Durably apply records; returning means all acknowledged.

        Each record is validated, WAL-appended (fsync — the ack
        point), then folded into the logical document and the delta
        segment.  A crash between ack and fold is repaired by WAL
        replay on the next open.
        """
        metrics = self.metrics
        applied = 0
        for record in records:
            if isinstance(record, dict):
                record = WalRecord.from_dict(record)
            self._validate(record)
            with metrics.stage("wal_append"):
                self.wal.append(record)
            self.acked_records += 1
            self.wal_records += 1
            if metrics.enabled:
                metrics.inc("wal_records_total")
            with metrics.stage("delta_apply"):
                result = apply_record(self.document, record)
                self.applied_records += 1
                if not self.sharded:
                    self.delta.apply(
                        result, self.tokenizer, self.base.path_table
                    )
            applied += 1
        if applied and not self.sharded:
            self.overlay.refresh()
        return applied

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, workers: int | None = None) -> int:
        """Fold the WAL'd updates into a fresh generation.

        Returns the new generation number.  Crash-safe at every step —
        see the module docstring for the recovery classification.
        """
        if self.acked_records > self.applied_records:
            raise UpdateError(
                f"refusing to compact: "
                f"{self.acked_records - self.applied_records} "
                f"acknowledged records never folded into the document; "
                f"resetting the WAL would discard them — reopen the "
                f"index to recover them by replay"
            )
        began = perf_counter()
        folding = self.wal_records
        new_generation = self.generation + 1
        try:
            faults = _active_faults()
            if faults.enabled:
                faults.hit("compact.swap", path=self.wal_path)
            self._write_live_source(self.document, new_generation)
            self._finish_compaction(new_generation, workers=workers)
        except BaseException:
            duration = perf_counter() - began
            self.last_compaction = {
                "generation": new_generation,
                "duration_s": duration,
                "outcome": "failed",
                "records_folded": folding,
            }
            if self.metrics.enabled:
                self.metrics.inc(
                    "compactions_total", outcome="failed"
                )
            raise
        duration = perf_counter() - began
        self.last_compaction = {
            "generation": new_generation,
            "duration_s": duration,
            "outcome": "ok",
            "records_folded": folding,
        }
        if self.metrics.enabled:
            self.metrics.inc("compactions_total", outcome="ok")
            self.metrics.observe_stage("compact", duration)
        return new_generation

    def _finish_compaction(
        self, new_generation: int, workers: int | None = None
    ) -> None:
        index = build_corpus_index(
            self.document, tokenizer=self.tokenizer
        )
        if self.sharded:
            self.base = build_sharded_snapshot(
                index,
                self.index_path,
                shards=len(self.base.shards),
                partition_depth=self.base.partition_depth,
                strategy=self.base.strategy,
                fastss_max_errors=self.fastss_max_errors,
                workers=workers,
                metrics=self.metrics,
                generation=new_generation,
            )
        else:
            build_snapshot(
                index,
                self.index_path,
                fastss_max_errors=self.fastss_max_errors,
                workers=workers,
                metrics=self.metrics,
                generation=new_generation,
            )
            self.base = load_snapshot(
                self.index_path, metrics=self.metrics
            )
        faults = _active_faults()
        if faults.enabled:
            # The second recovery window: base swapped, WAL not yet
            # reset.
            faults.hit("compact.swap", path=self.wal_path)
        self.wal = WriteAheadLog(self.wal_path)
        self.wal.reset(new_generation)
        self.wal_records = 0
        self.generation = new_generation
        self.delta = DeltaSegment(max_records=self.max_records)
        self._overlay = None

    # ------------------------------------------------------------------

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "LiveIndexManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def wal_bytes(self) -> int:
        """On-disk size of the WAL file (0 when absent)."""
        try:
            return os.path.getsize(self.wal_path)
        except OSError:
            return 0

    def describe(self) -> dict:
        return {
            "index_path": self.index_path,
            "sharded": self.sharded,
            "generation": self.generation,
            "pending_records": len(self.delta.records),
            "recovered_records": self.recovered_records,
            "delta": self.delta.describe(),
        }

    def status(self) -> dict:
        """The live-update half of ``/statusz`` (see ``obs/ops.py``)."""
        return {
            "generation": self.generation,
            "wal_records": self.wal_records,
            "wal_bytes": self.wal_bytes(),
            "acked_records": self.acked_records,
            "applied_records": self.applied_records,
            "recovered_records": self.recovered_records,
            "delta": self.delta.describe(),
            "last_compaction": self.last_compaction,
        }
