"""Crash-safe file writes: temp file + fsync + atomic rename.

Every on-disk index writer (v1 text, v2 binary, v3 snapshot) funnels
through :func:`atomic_write`, so a process killed mid-write can never
leave a half-written file under the destination name: the bytes go to
``<path>.tmp``, are fsynced, and only then renamed over ``<path>`` with
``os.replace`` — which is atomic on POSIX and on Windows.  Readers see
either the complete old file or the complete new one, never a torn
middle; a crash leaves at worst a stale ``.tmp`` beside the target.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import IO, Iterator

#: Suffix of the in-flight temporary (same directory as the target, so
#: the final rename never crosses a filesystem boundary).
TMP_SUFFIX = ".tmp"


def _fsync_directory(path: str) -> None:
    """Best-effort fsync of ``path``'s directory (rename durability)."""
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str, mode: str = "wb", **open_kwargs) -> Iterator[IO]:
    """Open ``<path>.tmp`` for writing; publish atomically on success.

    On a clean exit from the ``with`` block the temp file is flushed,
    fsynced, and renamed over ``path`` (plus a best-effort directory
    fsync so the rename itself survives power loss).  On any exception
    the temp file is deleted and the destination is left untouched.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write needs a write mode, got {mode!r}")
    tmp = path + TMP_SUFFIX
    handle = open(tmp, mode, **open_kwargs)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    handle.close()
    os.replace(tmp, path)
    _fsync_directory(path)
