"""Dewey-coded inverted lists (Section V-C).

Each token maps to a list of postings sorted in document order.  A
posting is the tuple ``(dewey, path_id, tf)``: the Dewey code of the
*leaf* node that directly contains the token, the interned id of its
label path, and the token's frequency in that node.

Lists support positional cursors with ``skip_to`` implemented by
exponential (galloping) search followed by binary search, which is what
lets Algorithm 1 jump over whole subtrees that cannot contribute.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterator, Sequence

from repro.xmltree.dewey import DeweyCode
from repro.xmltree.dewey_packed import DeweyPacker

#: A posting: (dewey, path_id, term_frequency).
Posting = tuple[DeweyCode, int, int]


class InvertedList:
    """An immutable, document-ordered posting list for one token."""

    __slots__ = ("token", "postings")

    def __init__(self, token: str, postings: Sequence[Posting]):
        self.token = token
        self.postings: list[Posting] = list(postings)
        for i in range(1, len(self.postings)):
            if self.postings[i - 1][0] >= self.postings[i][0]:
                raise ValueError(
                    f"postings for {token!r} not strictly document-ordered"
                )

    def __len__(self) -> int:
        return len(self.postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.postings)

    def __getitem__(self, index: int) -> Posting:
        return self.postings[index]

    def first_at_or_after(self, dewey: DeweyCode, start: int = 0) -> int:
        """Index of the first posting with code >= ``dewey``.

        Uses galloping search from ``start`` (the cursor position), so a
        sequence of increasing ``skip_to`` targets costs O(log gap) each
        rather than O(log n).
        Returns ``len(self)`` when every remaining posting is smaller.
        """
        postings = self.postings
        n = len(postings)
        if start >= n or postings[start][0] >= dewey:
            return start
        # Gallop: find a window [lo, hi) with postings[lo] < dewey <= hi.
        step = 1
        lo = start
        hi = start + 1
        while hi < n and postings[hi][0] < dewey:
            lo = hi
            step *= 2
            hi = min(n, hi + step)
        return bisect_left(postings, dewey, lo + 1, hi, key=lambda p: p[0])


class InvertedIndex:
    """Token → :class:`InvertedList` mapping for one corpus."""

    def __init__(self):
        self._lists: dict[str, InvertedList] = {}

    def __contains__(self, token: str) -> bool:
        return token in self._lists

    def __len__(self) -> int:
        return len(self._lists)

    def tokens(self) -> Iterator[str]:
        return iter(self._lists)

    def add_list(self, inverted_list: InvertedList) -> None:
        """Register a completed list (construction-time only)."""
        self._lists[inverted_list.token] = inverted_list

    def get(self, token: str) -> InvertedList | None:
        """Posting list for ``token``, or ``None`` if absent."""
        return self._lists.get(token)

    def list_for(self, token: str) -> InvertedList:
        """Posting list for ``token``; empty list when absent."""
        found = self._lists.get(token)
        if found is None:
            return InvertedList(token, [])
        return found

    def total_postings(self) -> int:
        """Total number of postings across all lists (index size)."""
        return sum(len(lst) for lst in self._lists.values())


class ListCursor:
    """A read cursor over one inverted list.

    Tracks the current position and the number of postings actually
    *read* versus *skipped*, which the ablation benchmarks use to show
    the effect of Algorithm 1's skipping.
    """

    __slots__ = ("source", "position", "reads", "skips", "_postings",
                 "_length")

    def __init__(self, source: InvertedList):
        self.source = source
        self.position = 0
        self.reads = 0
        self.skips = 0
        # Hot-path locals: cursor operations run once per posting.
        self._postings = source.postings
        self._length = len(source.postings)

    def exhausted(self) -> bool:
        return self.position >= self._length

    def current(self) -> Posting | None:
        """Posting under the cursor, or ``None`` when exhausted."""
        if self.position >= self._length:
            return None
        return self._postings[self.position]

    def advance(self) -> Posting | None:
        """Return the current posting and move one step forward."""
        posting = self.current()
        if posting is not None:
            self.position += 1
            self.reads += 1
        return posting

    def skip_to(self, dewey: DeweyCode) -> Posting | None:
        """Discard postings with code < ``dewey``; return the new head."""
        new_position = self.source.first_at_or_after(dewey, self.position)
        self.skips += new_position - self.position
        self.position = new_position
        return self.current()


# ----------------------------------------------------------------------
# Columnar (packed) posting lists — the fast query engine
# ----------------------------------------------------------------------
#
# The tuple-based classes above are the reference implementation; the
# packed classes below store the same postings as three parallel columns
# so the hot operations run on machine integers:
#
# * ``keys``  — packed Dewey codes (``array('q')`` when they fit in 64
#   bits, else a plain list of big ints), numerically document-ordered;
# * ``path_ids`` / ``tfs`` — ``array('i')`` side columns.
#
# ``skip_to`` gallops over the int column with C-level ``bisect`` (no
# ``key=`` extractor), and the merged list's heap holds plain ints.


class PackedInvertedList:
    """Columnar, document-ordered posting list for one token."""

    __slots__ = ("token", "keys", "path_ids", "tfs")

    def __init__(
        self,
        token: str,
        keys: Sequence[int],
        path_ids: Sequence[int],
        tfs: Sequence[int],
    ):
        if not (len(keys) == len(path_ids) == len(tfs)):
            raise ValueError("packed columns must have equal length")
        self.token = token
        self.keys = keys
        self.path_ids = path_ids
        self.tfs = tfs

    @classmethod
    def from_inverted(
        cls, source: InvertedList, packer: DeweyPacker
    ) -> "PackedInvertedList":
        """Pack a tuple-based list into columns (build-time only)."""
        packed = [packer.pack(code) for code, _pid, _tf in source]
        if packer.fits_int64:
            keys: Sequence[int] = array("q", packed)
        else:
            keys = packed
        path_ids = array("i", (pid for _c, pid, _tf in source))
        tfs = array("i", (tf for _c, _pid, tf in source))
        return cls(source.token, keys, path_ids, tfs)

    def __len__(self) -> int:
        return len(self.keys)

    def first_at_or_after(self, key: int, start: int = 0) -> int:
        """Index of the first posting with packed key >= ``key``.

        Same galloping-then-binary contract as
        :meth:`InvertedList.first_at_or_after`, but over an int column.
        """
        keys = self.keys
        n = len(keys)
        if start >= n or keys[start] >= key:
            return start
        step = 1
        lo = start
        hi = start + 1
        while hi < n and keys[hi] < key:
            lo = hi
            step *= 2
            hi = min(n, hi + step)
        return bisect_left(keys, key, lo + 1, hi)


class PackedListCursor:
    """Read cursor over one packed list (mirrors :class:`ListCursor`)."""

    __slots__ = ("source", "position", "reads", "skips", "_keys",
                 "_length")

    def __init__(self, source: PackedInvertedList):
        self.source = source
        self.position = 0
        self.reads = 0
        self.skips = 0
        self._keys = source.keys
        self._length = len(source.keys)

    def exhausted(self) -> bool:
        return self.position >= self._length

    def head_key(self) -> int | None:
        """Packed key under the cursor, or ``None`` when exhausted."""
        if self.position >= self._length:
            return None
        return self._keys[self.position]

    def skip_to(self, key: int) -> int | None:
        """Discard postings with key < ``key``; return the new head."""
        new_position = self.source.first_at_or_after(key, self.position)
        self.skips += new_position - self.position
        self.position = new_position
        return self.head_key()
