"""Posting-list compression: varints + Dewey shared-prefix deltas.

The paper's indexes are disk-resident (Section VII-A reports 1.8 GB /
400 MB index sizes), so a compact on-disk representation is part of the
system.  This module implements the two classic techniques that fit
Dewey-coded postings:

* **Unsigned varints** — small integers in one byte; Dewey components,
  path ids and term frequencies are almost always small.
* **Shared-prefix delta coding** — consecutive postings in document
  order share long Dewey prefixes (they are often siblings or cousins);
  each posting stores only the length of the prefix shared with its
  predecessor plus the differing suffix.

The codec is self-contained and lossless; the binary storage format
(:mod:`repro.index.storage_binary`) builds on it.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import StorageError
from repro.index.inverted import Posting


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append ``value`` as a LEB128 unsigned varint."""
    if value < 0:
        raise StorageError(f"cannot varint-encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_uvarint(data: bytes, position: int) -> tuple[int, int]:
    """Read a varint at ``position``; returns (value, next_position)."""
    result = 0
    shift = 0
    while True:
        if position >= len(data):
            raise StorageError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise StorageError("varint too long")


def encode_postings(postings: Sequence[Posting]) -> bytes:
    """Encode a document-ordered posting list.

    Layout: count, then per posting
    ``shared_prefix_len, suffix_len, suffix..., path_id, tf``.
    """
    buffer = bytearray()
    write_uvarint(buffer, len(postings))
    previous: tuple[int, ...] = ()
    for dewey, path_id, tf in postings:
        limit = min(len(previous), len(dewey))
        shared = 0
        while shared < limit and previous[shared] == dewey[shared]:
            shared += 1
        write_uvarint(buffer, shared)
        write_uvarint(buffer, len(dewey) - shared)
        for component in dewey[shared:]:
            write_uvarint(buffer, component)
        write_uvarint(buffer, path_id)
        write_uvarint(buffer, tf)
        previous = dewey
    return bytes(buffer)


def decode_postings(data: bytes, position: int = 0) -> tuple[list[Posting], int]:
    """Decode a posting list; returns (postings, next_position)."""
    count, position = read_uvarint(data, position)
    postings: list[Posting] = []
    previous: tuple[int, ...] = ()
    for _ in range(count):
        shared, position = read_uvarint(data, position)
        suffix_length, position = read_uvarint(data, position)
        if shared > len(previous):
            raise StorageError("corrupt delta: prefix exceeds previous")
        components = list(previous[:shared])
        for _ in range(suffix_length):
            component, position = read_uvarint(data, position)
            components.append(component)
        path_id, position = read_uvarint(data, position)
        tf, position = read_uvarint(data, position)
        dewey = tuple(components)
        postings.append((dewey, path_id, tf))
        previous = dewey
    return postings, position


def write_string(buffer: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string."""
    raw = text.encode("utf-8")
    write_uvarint(buffer, len(raw))
    buffer.extend(raw)


def read_string(data: bytes, position: int) -> tuple[str, int]:
    """Read a length-prefixed UTF-8 string."""
    length, position = read_uvarint(data, position)
    end = position + length
    if end > len(data):
        raise StorageError("truncated string")
    return data[position:end].decode("utf-8"), end
