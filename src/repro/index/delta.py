"""In-memory delta segment and query-time overlay for live updates.

The live-update pipeline (``docs/index_format.md``, "Live updates")
keeps the base index immutable — an mmap'd v3 snapshot or an in-memory
:class:`~repro.index.corpus.CorpusIndex` — and layers acknowledged
subtree operations on top of it:

* :func:`apply_record` mutates the *logical document* (the Dewey-coded
  tree the index describes) and hands back the old and new subtrees;
* :class:`DeltaSegment` turns those subtrees into exact adjustments of
  every statistic the scoring model reads — postings, vocabulary
  (Eq. 6 background model), subtree token counts and the Eq. 8
  normalizers — plus a tombstone set masking deleted base postings;
* :class:`DeltaOverlayCorpus` exposes the merged view through the
  standard :class:`~repro.index.corpus.QueryEngineMixin` surface, so
  the tuple engine, the packed classic loop, and the merge kernel all
  consume it unchanged via ``merged_list`` / ``merged_list_packed``.

**Dewey stability.**  Updates must not renumber nodes the base index
already refers to.  ``add`` therefore appends as the last child, and
``delete`` leaves a childless, textless *placeholder* node in the tree
(removing a middle child would shift every following sibling's
ordinal).  The placeholder carries no tokens, so the entity disappears
from all query results; its node still counts toward ``entity_count``
— on both sides of the equivalence, because the rebuilt reference
corpus is the applied logical document, placeholders included.

**Exactness.**  Every statistic the XClean scoring path reads is
adjusted exactly, so overlay top-k results are byte-identical to a
from-scratch rebuild of the applied document (the crash-recovery tests
assert this across engines, kernel modes, and shard counts).  The one
documented approximation is the PY08 baseline's ``max_relative_tf``:
a delete cannot lower a base maximum without a global scan, so the
overlay only ever raises it; compaction restores the exact value.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import DeweyError, UpdateError
from repro.fastss.generator import (
    DEFAULT_VARIANT_CACHE_SIZE,
    VariantGenerator,
)
from repro.fastss.index import FastSSIndex, Variant
from repro.index.corpus import QueryEngineMixin
from repro.index.inverted import InvertedList, PackedInvertedList
from repro.index.path_index import path_counts_from_postings
from repro.index.wal import WalRecord
from repro.obs.faults import active as _active_faults
from repro.xmltree.dewey import DeweyCode
from repro.xmltree.dewey_packed import DeweyPacker
from repro.xmltree.document import XMLDocument
from repro.xmltree.labelpath import LabelPath
from repro.xmltree.node import XMLNode

#: Default bound on buffered records before compaction is advised.
DEFAULT_DELTA_MAX_RECORDS = 4096


# ----------------------------------------------------------------------
# Subtree (de)serialization — the WAL payload format
# ----------------------------------------------------------------------


def node_to_json(node: XMLNode) -> dict:
    """Serialize a subtree as the WAL's JSON tree payload."""
    out: dict = {"label": node.label}
    if node.text:
        out["text"] = node.text
    if node.children:
        out["children"] = [node_to_json(child) for child in node.children]
    return out


def node_from_json(document: dict) -> XMLNode:
    """Parse a WAL JSON tree payload into a detached subtree."""
    try:
        node = XMLNode(
            str(document["label"]), text=str(document.get("text", ""))
        )
        for child in document.get("children", ()):
            node.add_child(node_from_json(child))
    except (KeyError, TypeError, AttributeError) as exc:
        raise UpdateError(f"malformed subtree payload: {exc}") from exc
    return node


def document_to_json(document: XMLDocument) -> dict:
    """Serialize a whole logical document (the live-source sidecar)."""
    return {"name": document.name, "root": node_to_json(document.root)}


def document_from_json(payload: dict) -> XMLDocument:
    """Rebuild a logical document from its sidecar payload."""
    root = node_from_json(payload["root"])
    root.assign_deweys((1,))
    return XMLDocument(root, name=payload.get("name", "document"))


# ----------------------------------------------------------------------
# Applying records to the logical document
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ApplyResult:
    """The document mutation produced by one WAL record.

    ``old`` / ``new`` are the replaced and inserted subtrees (``None``
    when the op adds fresh content / ``new`` is the delete
    placeholder); ``parent_labels`` is the label path of the affected
    node's parent, so walking either subtree with
    ``iter_with_paths(prefix=parent_labels)`` yields full label paths.
    """

    record: WalRecord
    old: XMLNode | None
    new: XMLNode
    parent_labels: LabelPath


def _labels_along(document: XMLDocument, dewey: DeweyCode) -> LabelPath:
    """Label path of the node at ``dewey`` (validating the walk)."""
    root = document.root
    if root.dewey != dewey[:1]:
        raise UpdateError(
            f"dewey {dewey!r} does not start at the document root"
        )
    labels = [root.label]
    node = root
    for ordinal in dewey[1:]:
        index = ordinal - 1
        if index < 0 or index >= len(node.children):
            raise UpdateError(f"no node at dewey {dewey!r}")
        node = node.children[index]
        labels.append(node.label)
    return tuple(labels)


def apply_record(
    document: XMLDocument, record: WalRecord
) -> ApplyResult:
    """Apply one record to the logical document (mutating it)."""
    if record.op == "add":
        parent = document.node_at(record.dewey)
        if parent is None:
            raise UpdateError(
                f"add target (parent) {record.dewey!r} does not exist"
            )
        parent_labels = _labels_along(document, record.dewey)
        assert record.subtree is not None
        new = node_from_json(record.subtree)
        parent.children.append(new)
        new.assign_deweys(record.dewey + (len(parent.children),))
        return ApplyResult(record, None, new, parent_labels)

    # update / delete target an existing non-root node.
    if len(record.dewey) < 2:
        raise UpdateError(
            f"cannot {record.op} the document root {record.dewey!r}"
        )
    parent = document.node_at(record.dewey[:-1])
    ordinal = record.dewey[-1]
    if parent is None or not (1 <= ordinal <= len(parent.children)):
        raise UpdateError(
            f"{record.op} target {record.dewey!r} does not exist"
        )
    parent_labels = _labels_along(document, record.dewey[:-1])
    old = parent.children[ordinal - 1]
    if record.op == "update":
        assert record.subtree is not None
        new = node_from_json(record.subtree)
    else:
        # Delete leaves a placeholder so sibling ordinals (and hence
        # every Dewey code the base index stores) stay valid.
        new = XMLNode(old.label)
    parent.children[ordinal - 1] = new
    new.assign_deweys(record.dewey)
    return ApplyResult(record, old, new, parent_labels)


def apply_records(
    document: XMLDocument, records: Iterable[WalRecord]
) -> list[ApplyResult]:
    """Apply a sequence of records in order (mutating the document)."""
    return [apply_record(document, record) for record in records]


# ----------------------------------------------------------------------
# The delta segment
# ----------------------------------------------------------------------


@dataclass
class DeltaSegment:
    """Bounded, exact stat adjustments for a batch of applied records.

    All mappings are *deltas* against the base index: postings to add,
    signed adjustments to the Eq. 6/8 statistics, and a tombstone set
    of subtree roots whose base postings are masked.  ``touched`` names
    every token whose posting list differs from the base — untouched
    tokens pass through the overlay zero-copy.
    """

    tombstones: set[DeweyCode] = field(default_factory=set)
    postings_add: dict[str, list[tuple[DeweyCode, int, int]]] = field(
        default_factory=dict
    )
    touched: set[str] = field(default_factory=set)
    cf_delta: dict[str, int] = field(default_factory=dict)
    df_delta: dict[str, int] = field(default_factory=dict)
    rel_new: dict[str, float] = field(default_factory=dict)
    total_tokens_delta: int = 0
    element_doc_delta: int = 0
    subtree_delta: dict[DeweyCode, int] = field(default_factory=dict)
    path_node_delta: dict[int, int] = field(default_factory=dict)
    path_total_delta: dict[int, int] = field(default_factory=dict)
    max_new_depth: int = 0
    records: list[WalRecord] = field(default_factory=list)
    max_records: int = DEFAULT_DELTA_MAX_RECORDS
    #: Monotone change counter; overlay caches key off it.
    version: int = 0

    def __len__(self) -> int:
        return len(self.records)

    @property
    def dirty(self) -> bool:
        return self.version > 0

    @property
    def needs_compaction(self) -> bool:
        """True once the segment outgrew its configured bound."""
        return len(self.records) >= self.max_records

    # ------------------------------------------------------------------

    def apply(self, result: ApplyResult, tokenizer, path_table) -> None:
        """Fold one applied record into the segment.

        The ``delta.apply`` fault site fires first, so a chaos plan can
        simulate a crash *after* the WAL acknowledged the record but
        before it became query-visible — recovery (WAL replay) must
        land in the same state.
        """
        faults = _active_faults()
        if faults.enabled:
            faults.hit("delta.apply")
        record = result.record
        if result.old is not None:
            self._fold_subtree(
                result.old, result.parent_labels, tokenizer,
                path_table, sign=-1,
            )
            target = result.old.dewey
            assert target is not None
            self.tombstones.add(target)
            self._purge_added_under(target)
        self._fold_subtree(
            result.new, result.parent_labels, tokenizer, path_table,
            sign=+1,
        )
        self.records.append(record)
        self.version += 1

    def _purge_added_under(self, root: DeweyCode) -> None:
        """Drop previously added postings shadowed by a new tombstone."""
        depth = len(root)
        for token, postings in list(self.postings_add.items()):
            kept = [p for p in postings if p[0][:depth] != root]
            if len(kept) != len(postings):
                self.postings_add[token] = kept

    def _fold_subtree(
        self,
        subtree: XMLNode,
        parent_labels: LabelPath,
        tokenizer,
        path_table,
        sign: int,
    ) -> None:
        for node, labels in subtree.iter_with_paths(
            prefix=parent_labels
        ):
            pid = path_table.intern(labels)
            self.path_node_delta[pid] = (
                self.path_node_delta.get(pid, 0) + sign
            )
            if sign > 0 and len(labels) > self.max_new_depth:
                self.max_new_depth = len(labels)
            if not node.text:
                continue
            counts: dict[str, int] = {}
            for token in tokenizer.iter_tokens(node.text):
                counts[token] = counts.get(token, 0) + 1
            if not counts:
                continue
            dewey = node.dewey
            assert dewey is not None
            length = sum(counts.values())
            self.element_doc_delta += sign
            self.total_tokens_delta += sign * length
            for token, tf in counts.items():
                self.touched.add(token)
                self.cf_delta[token] = (
                    self.cf_delta.get(token, 0) + sign * tf
                )
                self.df_delta[token] = (
                    self.df_delta.get(token, 0) + sign
                )
                if sign > 0:
                    self.postings_add.setdefault(token, []).append(
                        (dewey, pid, tf)
                    )
                    rel = tf / length
                    if rel > self.rel_new.get(token, 0.0):
                        self.rel_new[token] = rel
            for depth in range(1, len(dewey) + 1):
                prefix = dewey[:depth]
                self.subtree_delta[prefix] = (
                    self.subtree_delta.get(prefix, 0) + sign * length
                )
                ancestor = path_table.prefix_id(pid, depth)
                self.path_total_delta[ancestor] = (
                    self.path_total_delta.get(ancestor, 0)
                    + sign * length
                )

    # ------------------------------------------------------------------

    def masks(self, dewey: DeweyCode) -> bool:
        """True when a tombstone covers ``dewey`` (ancestor-or-self)."""
        for root in self.tombstones:
            if dewey[: len(root)] == root:
                return True
        return False

    def approx_bytes(self) -> int:
        """Rough in-memory footprint of the segment.

        A deterministic per-entry estimate (CPython container + tuple
        overheads), not a deep ``getsizeof`` walk — /statusz polls
        this, so it must stay O(tokens) and allocation-free.
        """
        postings = sum(len(p) for p in self.postings_add.values())
        return (
            64 * len(self.records)
            + 88 * postings
            + 56 * (
                len(self.cf_delta) + len(self.df_delta)
                + len(self.rel_new)
            )
            + 72 * (
                len(self.subtree_delta) + len(self.path_node_delta)
                + len(self.path_total_delta)
            )
            + 48 * (len(self.touched) + len(self.tombstones))
        )

    def describe(self) -> dict:
        return {
            "records": len(self.records),
            "touched_tokens": len(self.touched),
            "tombstones": len(self.tombstones),
            "added_postings": sum(
                len(p) for p in self.postings_add.values()
            ),
            "total_tokens_delta": self.total_tokens_delta,
            "approx_bytes": self.approx_bytes(),
            "needs_compaction": self.needs_compaction,
        }


# ----------------------------------------------------------------------
# Overlay views (vocabulary / inverted / path index / packed)
# ----------------------------------------------------------------------


class OverlayVocabulary:
    """Base vocabulary plus exact delta adjustments (Eq. 6 inputs)."""

    def __init__(self, base, delta: DeltaSegment):
        self._base = base
        self._delta = delta

    def _cf(self, token: str) -> int:
        return self._base.collection_frequency(token) + (
            self._delta.cf_delta.get(token, 0)
        )

    def __contains__(self, token: str) -> bool:
        return self._cf(token) > 0

    def __len__(self) -> int:
        return sum(1 for _ in self.tokens())

    def __iter__(self) -> Iterator[str]:
        return iter(self.tokens())

    def tokens(self) -> Iterator[str]:
        delta_cf = self._delta.cf_delta
        for token in self._base.tokens():
            if self._base.collection_frequency(token) + delta_cf.get(
                token, 0
            ) > 0:
                yield token
        for token, adjust in delta_cf.items():
            if adjust > 0 and self._base.collection_frequency(token) == 0:
                yield token

    @property
    def total_tokens(self) -> int:
        return self._base.total_tokens + self._delta.total_tokens_delta

    @property
    def element_doc_count(self) -> int:
        return (
            self._base.element_doc_count
            + self._delta.element_doc_delta
        )

    def collection_frequency(self, token: str) -> int:
        return max(0, self._cf(token))

    def background_probability(self, token: str) -> float:
        total = self.total_tokens
        if total == 0:
            return 0.0
        return self.collection_frequency(token) / total

    def element_document_frequency(self, token: str) -> int:
        return max(
            0,
            self._base.element_document_frequency(token)
            + self._delta.df_delta.get(token, 0),
        )

    def max_relative_tf(self, token: str) -> float:
        # Approximate under deletes (see module docstring): the base
        # maximum is never lowered, only raised by new elements.
        # XClean scoring does not read it; compaction restores
        # exactness for the PY08 baseline.
        return max(
            self._base.max_relative_tf(token),
            self._delta.rel_new.get(token, 0.0),
        )

    def idf(self, token: str) -> float:
        import math

        df = self.element_document_frequency(token)
        count = self.element_doc_count
        if df == 0 or count == 0:
            return 0.0
        return math.log(count / df)

    def max_tfidf(self, token: str) -> float:
        return self.max_relative_tf(token) * self.idf(token)

    def export_rows(self) -> Iterator[tuple[str, int, int, float]]:
        for token in self.tokens():
            yield (
                token,
                self.collection_frequency(token),
                self.element_document_frequency(token),
                self.max_relative_tf(token),
            )


class OverlayInvertedIndex:
    """Token → posting list view merging base lists with the delta.

    Untouched tokens are served zero-copy from the base; touched
    tokens get a materialized, Dewey-sorted merge of the unmasked base
    postings and the delta additions, cached until the next delta
    version.
    """

    def __init__(self, overlay: "DeltaOverlayCorpus"):
        self._overlay = overlay
        self._cache: dict[str, InvertedList | None] = {}
        self._version = overlay.delta.version

    def _refresh(self) -> None:
        version = self._overlay.delta.version
        if version != self._version:
            self._cache.clear()
            self._version = version

    def get(self, token: str) -> InvertedList | None:
        self._refresh()
        delta = self._overlay.delta
        if token not in delta.touched:
            return self._overlay.base.inverted.get(token)
        if token in self._cache:
            return self._cache[token]
        merged = self._merge(token)
        self._cache[token] = merged
        return merged

    def _merge(self, token: str) -> InvertedList | None:
        delta = self._overlay.delta
        base_list = self._overlay.base.inverted.get(token)
        postings: list[tuple[DeweyCode, int, int]] = []
        if base_list is not None:
            masks = delta.masks
            postings.extend(
                p for p in base_list if not masks(p[0])
            )
        added = delta.postings_add.get(token)
        if added:
            postings.extend(added)
            postings.sort(key=lambda p: p[0])
        if not postings:
            return None
        return InvertedList(token, postings)

    def list_for(self, token: str) -> InvertedList:
        found = self.get(token)
        if found is None:
            return InvertedList(token, [])
        return found

    def __contains__(self, token: str) -> bool:
        return self.get(token) is not None

    def tokens(self) -> Iterator[str]:
        delta = self._overlay.delta
        for token in self._overlay.base.inverted.tokens():
            if token in delta.touched:
                if self.get(token) is not None:
                    yield token
            else:
                yield token
        base = self._overlay.base.inverted
        for token in delta.postings_add:
            if token not in base and self.get(token) is not None:
                yield token

    def __len__(self) -> int:
        return sum(1 for _ in self.tokens())

    def total_postings(self) -> int:
        return sum(
            len(self.list_for(token)) for token in self.tokens()
        )


class OverlayPathIndex:
    """f_w^p counts: recomputed for touched tokens, else pass-through.

    Recomputation runs the same prefix-scan as the index builder over
    the overlay's merged (document-ordered) posting list, so counts
    are exact — not adjusted approximations.
    """

    def __init__(self, overlay: "DeltaOverlayCorpus"):
        self._overlay = overlay
        self._cache: dict[str, dict[int, int]] = {}
        self._version = overlay.delta.version

    def counts_for(self, token: str) -> dict[int, int]:
        overlay = self._overlay
        if token not in overlay.delta.touched:
            return overlay.base.path_index.counts_for(token)
        if overlay.delta.version != self._version:
            self._cache.clear()
            self._version = overlay.delta.version
        counts = self._cache.get(token)
        if counts is None:
            merged = overlay.inverted.get(token)
            counts = (
                path_counts_from_postings(
                    merged.postings, overlay.path_table
                )
                if merged is not None
                else {}
            )
            self._cache[token] = counts
        return counts

    def f(self, token: str, path_id: int) -> int:
        return self.counts_for(token).get(path_id, 0)

    def __contains__(self, token: str) -> bool:
        return bool(self.counts_for(token))

    def tokens(self) -> Iterator[str]:
        return self._overlay.inverted.tokens()


class _OverlayLengths:
    """Packed-key |D(r)| map: base map plus packed delta adjustments."""

    __slots__ = ("_base", "_delta")

    def __init__(self, base, delta: dict[int, int]):
        self._base = base
        self._delta = delta

    def get(self, key: int, default: int = 0) -> int:
        value = self._base.get(key, 0) + self._delta.get(key, 0)
        return value if value > 0 else default


class OverlayPackedView:
    """Packed-engine view over the overlay.

    When the base packer can encode every new Dewey code (the common
    case — updates rarely deepen or widen the tree), untouched tokens
    reuse the base packed columns zero-copy and only touched tokens are
    re-packed.  Otherwise the view falls back to a full re-pack with a
    wider packer: slower to warm, still exact.
    """

    def __init__(self, overlay: "DeltaOverlayCorpus"):
        self._overlay = overlay
        self.version = overlay.delta.version
        self._cache: dict[str, PackedInvertedList | None] = {}
        base_view = overlay.base.packed_view()
        delta = overlay.delta
        packer = base_view.packer
        self._repacked = False
        try:
            packed_delta = {
                packer.pack(code): adjust
                for code, adjust in delta.subtree_delta.items()
            }
        except DeweyError:
            packed_delta = None
        if packed_delta is not None:
            self.packer = packer
            self._base_view = base_view
            self.subtree_lengths = _OverlayLengths(
                base_view.subtree_lengths, packed_delta
            )
        else:
            # The delta outgrew the base packer (deeper tree or wider
            # fanout): re-pack everything against a packer sized to the
            # merged corpus.
            self._repacked = True
            self._base_view = None
            merged = overlay.subtree_token_counts
            self.packer = DeweyPacker.for_codes(merged)
            self.subtree_lengths = {
                self.packer.pack(code): length
                for code, length in merged.items()
            }

    def get(self, token: str) -> PackedInvertedList | None:
        if not self._repacked and (
            token not in self._overlay.delta.touched
        ):
            return self._base_view.get(token)
        if token in self._cache:
            return self._cache[token]
        merged = self._overlay.inverted.get(token)
        packed = (
            PackedInvertedList.from_inverted(merged, self.packer)
            if merged is not None
            else None
        )
        self._cache[token] = packed
        return packed


class OverlayVariantGenerator:
    """Incremental var_ε(q) over the overlay vocabulary.

    Rebuilding a deletion-neighborhood index over the merged
    vocabulary after every update batch is O(|vocabulary|) — seconds
    on a large corpus for a single-record delta.  Instead this wrapper
    probes the *base* generator (typically served zero-copy from the
    snapshot's embedded FastSS sections), drops hits whose token the
    delta removed from the vocabulary, and merges hits from a small
    FastSS index over only the tokens the delta *added* — O(|touched|)
    to construct.  The merged hit set is sorted ``(distance, token)``,
    so results are identical to a generator built from scratch over
    the merged vocabulary.
    """

    def __init__(
        self,
        overlay: "DeltaOverlayCorpus",
        base_generator: VariantGenerator,
        max_errors: int = 2,
        cache_size: int = DEFAULT_VARIANT_CACHE_SIZE,
    ):
        self.max_errors = max_errors
        self._base = base_generator
        self._vocabulary = overlay.vocabulary
        base_vocabulary = overlay.base.vocabulary
        added = sorted(
            token
            for token, adjust in overlay.delta.cf_delta.items()
            if adjust > 0
            and base_vocabulary.collection_frequency(token) == 0
        )
        self._added = (
            FastSSIndex(added, max_errors=max_errors) if added else None
        )
        self.cache_size = cache_size
        self._cache: OrderedDict[
            tuple[str, int], tuple[Variant, ...]
        ] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def variants(
        self, keyword: str, max_errors: int | None = None
    ) -> tuple[Variant, ...]:
        """var_ε(q) over the merged vocabulary (shared tuple)."""
        eps = self.max_errors if max_errors is None else max_errors
        key = (keyword, eps)
        cache = self._cache
        cached = cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            cache.move_to_end(key)
            return cached
        self.cache_misses += 1
        vocabulary = self._vocabulary
        merged = [
            variant
            for variant in self._base.variants(keyword, eps)
            if variant.token in vocabulary
        ]
        if self._added is not None:
            merged.extend(self._added.variants(keyword, eps))
            merged.sort()
        cached = tuple(merged)
        cache[key] = cached
        if len(cache) > self.cache_size:
            cache.popitem(last=False)
        return cached

    def variant_tokens(
        self, keyword: str, max_errors: int | None = None
    ) -> list[str]:
        """Just the token strings, sorted by (distance, token)."""
        return [v.token for v in self.variants(keyword, max_errors)]

    def distance_of(
        self, keyword: str, token: str, max_errors: int | None = None
    ) -> int | None:
        """Edit distance keyword→token if token ∈ var_ε(keyword)."""
        for variant in self.variants(keyword, max_errors):
            if variant.token == token:
                return variant.distance
        return None


class DeltaOverlayCorpus(QueryEngineMixin):
    """Base corpus + delta segment behind the standard query surface.

    Shares the base's (mutable, interning) path table so path ids are
    identical across base, overlay, and the eventual compacted
    snapshot of the same content.  Call :meth:`refresh` after folding
    records into the delta — it bumps the cache generation so every
    memoized merged list, packed column set, and intersection plan from
    the previous delta version becomes unreachable.
    """

    def __init__(self, base, delta: DeltaSegment | None = None):
        self.base = base
        self.delta = delta if delta is not None else DeltaSegment()
        self.name = base.name
        self.tokenizer = base.tokenizer
        self.path_table = base.path_table
        self.vocabulary = OverlayVocabulary(base.vocabulary, self.delta)
        self.inverted = OverlayInvertedIndex(self)
        self.path_index = OverlayPathIndex(self)
        self._init_query_caches()
        self._packed_overlay: OverlayPackedView | None = None
        self._node_counts: dict[int, int] | None = None
        self._totals: dict[int, float] | None = None
        self._subtree_counts: dict[DeweyCode, int] | None = None
        self._stats_version = self.delta.version

    # -- cache lifecycle ------------------------------------------------

    def refresh(self) -> None:
        """Invalidate every memo after the delta changed."""
        if self.delta.version != self._stats_version:
            self._stats_version = self.delta.version
            self._node_counts = None
            self._totals = None
            self._subtree_counts = None
            self.bump_generation()

    # -- corpus surface -------------------------------------------------

    @property
    def path_node_counts(self) -> dict[int, int]:
        self.refresh()
        found = self._node_counts
        if found is None:
            found = dict(self.base.path_node_counts)
            for pid, adjust in self.delta.path_node_delta.items():
                value = found.get(pid, 0) + adjust
                if value > 0:
                    found[pid] = value
                else:
                    found.pop(pid, None)
            self._node_counts = found
        return found

    @property
    def path_token_totals_map(self) -> dict[int, float]:
        self.refresh()
        found = self._totals
        if found is None:
            found = dict(self.base.path_token_totals())
            for pid, adjust in self.delta.path_total_delta.items():
                value = found.get(pid, 0.0) + adjust
                if value > 0:
                    found[pid] = value
                else:
                    found.pop(pid, None)
            self._totals = found
        return found

    @property
    def max_depth(self) -> int:
        return max(
            self.base.max_path_depth(), self.delta.max_new_depth
        )

    def subtree_length(self, dewey: DeweyCode) -> int:
        length = self.base.subtree_length(dewey) + (
            self.delta.subtree_delta.get(dewey, 0)
        )
        return length if length > 0 else 0

    @property
    def subtree_token_counts(self) -> dict[DeweyCode, int]:
        self.refresh()
        found = self._subtree_counts
        if found is None:
            found = dict(self.base.subtree_token_counts)
            for code, adjust in self.delta.subtree_delta.items():
                value = found.get(code, 0) + adjust
                if value > 0:
                    found[code] = value
                else:
                    found.pop(code, None)
            self._subtree_counts = found
        return found

    def packed_view(self) -> OverlayPackedView:
        self.refresh()
        view = self._packed_overlay
        if view is None or view.version != self.delta.version:
            view = OverlayPackedView(self)
            self._packed_overlay = view
        return view

    def entity_count(self, path_id: int) -> int:
        return self.path_node_counts.get(path_id, 0)

    def variant_generator(
        self,
        max_errors: int = 2,
        cache_size: int = DEFAULT_VARIANT_CACHE_SIZE,
    ):
        """Variant generator over the overlay vocabulary.

        With no touched tokens the base generator (possibly served from
        embedded FastSS sections) is returned; otherwise it is wrapped
        in an :class:`OverlayVariantGenerator` — O(|touched|) to build,
        never O(|vocabulary|) — so added tokens are suggestible
        immediately, fully deleted tokens never are, and installing a
        fresh suggester after an update batch stays cheap enough to run
        under the serving tier's compute lock.
        """
        delta = self.delta
        base = self.base
        if hasattr(base, "variant_generator"):
            base_generator = base.variant_generator(
                max_errors=max_errors, cache_size=cache_size
            )
            if not delta.touched:
                return base_generator
            return OverlayVariantGenerator(
                self,
                base_generator,
                max_errors=max_errors,
                cache_size=cache_size,
            )
        return VariantGenerator(
            self.vocabulary.tokens(),
            max_errors=max_errors,
            cache_size=cache_size,
        )

    def describe(self) -> dict:
        base_describe = getattr(self.base, "describe", None)
        return {
            "overlay": self.delta.describe(),
            "base": base_describe() if base_describe else {},
        }
