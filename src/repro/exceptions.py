"""Exception hierarchy for the repro (XClean) library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything coming out of this package with a single
``except`` clause while still being able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XMLParseError(ReproError):
    """Raised when :mod:`repro.xmltree.parser` encounters malformed input.

    Attributes:
        position: character offset in the input where the error was
            detected (``-1`` when unknown).
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class DeweyError(ReproError):
    """Raised for malformed Dewey code strings or invalid operations."""


class IndexError_(ReproError):
    """Raised for inconsistent or malformed index structures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexCorruptionError`` from the
    package root.
    """


# Friendlier public alias; the underscore name is kept for backwards
# compatibility within the package.
IndexCorruptionError = IndexError_


class StorageError(ReproError):
    """Raised when persisting or loading an index fails."""


class QueryError(ReproError):
    """Raised for invalid user queries (e.g. empty after tokenization)."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""
