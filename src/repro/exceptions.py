"""Exception hierarchy for the repro (XClean) library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything coming out of this package with a single
``except`` clause while still being able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XMLParseError(ReproError):
    """Raised when :mod:`repro.xmltree.parser` encounters malformed input.

    Attributes:
        position: character offset in the input where the error was
            detected (``-1`` when unknown).
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class DeweyError(ReproError):
    """Raised for malformed Dewey code strings or invalid operations."""


class IndexError_(ReproError):
    """Raised for inconsistent or malformed index structures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexCorruptionError`` from the
    package root.
    """


# Friendlier public alias; the underscore name is kept for backwards
# compatibility within the package.
IndexCorruptionError = IndexError_


class StorageError(ReproError):
    """Raised when persisting or loading an index fails."""


class FaultInjected(StorageError):
    """Raised by :mod:`repro.obs.faults` when a ``raise`` action fires.

    Subclasses :class:`StorageError` so injected faults travel the same
    recovery paths real corruption does (snapshot quarantine, worker
    failure handling) without special-casing in production code.

    Attributes:
        site: the injection-point name that fired (e.g.
            ``"snapshot.load"``).
    """

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site


class UpdateError(ReproError):
    """Raised for invalid live-index update operations.

    Covers malformed WAL records (unknown op, bad Dewey target) and
    updates that violate the tree's structural invariants — e.g.
    deleting the document root or adding a child under a node that does
    not exist.
    """


class QueryError(ReproError):
    """Raised for invalid user queries (e.g. empty after tokenization)."""


class Overloaded(ReproError):
    """Typed load-shedding rejection from the serving layer.

    Raised instead of queueing work when admission control is over its
    bound or the worker-pool circuit breaker is open.  Callers should
    back off and retry; ``retry_after`` is a hint in seconds when the
    service can estimate one (``None`` otherwise).
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""
