"""Command-line interface: build indexes, get suggestions, run evals.

Installed as the ``xclean`` console script::

    xclean generate --dataset dblp --out dblp.xml
    xclean index --xml dblp.xml --out dblp.xci [--format binary]
    xclean index --xml dblp.xml --out shards/ --shards 4
    xclean verify --index shards/            # or a single .xcs3 path
    xclean suggest --index dblp.xci --query "keywrod serach" -k 5
    xclean explain --index dblp.xci --query "keywrod serach" -k 5
    xclean trace --index dblp.xci --query "keywrod serach" --format chrome
    xclean batch --index dblp.xci --queries queries.txt --workers 4
    xclean batch --index shards/ --queries queries.txt --replicas 2
    xclean metrics --index dblp.xci --queries queries.txt --format prometheus
    xclean search --index dblp.xci --query "keyword search" --xml dblp.xml
    xclean evaluate --dataset dblp --scale small
    xclean chaos --index dblp.xci --queries queries.txt \
        --plan "worker.query:raise@2;merge.step:delay=0.001"
    xclean serve --index dblp.xci --port 8080 --access-log access.jsonl
    xclean status --index dblp.xci [--watch]
    xclean update --index dblp.xci --ops updates.json --source dblp.xml
    xclean compact --index dblp.xci
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.search import EntitySearch
from repro.core.server import SuggestionService
from repro.core.slca_cleaner import (
    ELCACleanSuggester,
    SLCACleanSuggester,
)
from repro.datasets.synthetic_dblp import DBLPConfig, generate_dblp
from repro.datasets.synthetic_wiki import WikiConfig, generate_wiki
from repro.eval.experiments import dblp_setting, wiki_setting
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate_suggester
from repro.exceptions import Overloaded, ReproError
from repro.index.corpus import build_corpus_index
from repro.index.snapshot import build_snapshot, snapshot_or_corpus
from repro.index.storage import save_index
from repro.index.storage_binary import save_index_binary
from repro.obs import MetricsRegistry
from repro.obs import faults
from repro.obs.export import chrome_trace, trace_to_json_line
from repro.obs.trace import Tracer, format_trace
from repro.xmltree.document import XMLDocument


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xclean",
        description="XML keyword query cleaning (XClean, ICDE 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic XML dataset"
    )
    generate.add_argument(
        "--dataset", choices=("dblp", "wiki"), default="dblp"
    )
    generate.add_argument("--out", required=True, help="output XML path")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument(
        "--size", type=int, default=0,
        help="publications / articles (0 = default scale)",
    )

    index = sub.add_parser("index", help="index an XML file")
    index.add_argument("--xml", required=True, help="input XML path")
    index.add_argument("--out", required=True, help="output index path")
    index.add_argument(
        "--format",
        choices=("text", "binary", "v3"),
        default="text",
        help="text is diff-able; binary is ~2x smaller; v3 is the "
        "mmap snapshot (near-instant loads, shared worker pages)",
    )
    index.add_argument(
        "--workers", type=int, default=None,
        help="parallel workers for the v3 snapshot build "
        "(default: serial; output is byte-identical either way)",
    )
    index.add_argument(
        "--shards", type=int, default=0,
        help="partition into this many v3 snapshot shards under "
        "--out (a directory) with a CRC-checked manifest; 0 builds "
        "a single index in --format",
    )
    index.add_argument(
        "--partition-depth", type=int, default=None,
        help="subtree depth of the shard partition boundary "
        "(default: 2; must not exceed the query-time min_depth)",
    )
    index.add_argument(
        "--strategy", choices=("range", "hash"), default="range",
        help="entity-to-shard assignment: token-balanced contiguous "
        "ranges or crc32 hashing",
    )

    suggest = sub.add_parser(
        "suggest", help="suggest alternative queries"
    )
    suggest.add_argument("--index", required=True, help="index path")
    suggest.add_argument("--query", required=True)
    suggest.add_argument("-k", type=int, default=5)
    suggest.add_argument("--beta", type=float, default=5.0)
    suggest.add_argument("--max-errors", type=int, default=2)
    suggest.add_argument("--gamma", type=int, default=1000)
    suggest.add_argument(
        "--semantics",
        choices=("node-type", "slca", "elca"),
        default="node-type",
        help="entity semantics for scoring (Section IV-B2 / VI-B)",
    )
    suggest.add_argument(
        "--prior",
        choices=("uniform", "length"),
        default="uniform",
        help="entity prior of Eq. 8 (node-type semantics only)",
    )
    suggest.add_argument(
        "--engine",
        choices=("packed", "tuple"),
        default="packed",
        help="query engine: packed-int columnar lists or the "
        "reference tuple lists (identical output)",
    )

    explain = sub.add_parser(
        "explain",
        help="show full score provenance for each suggested candidate "
        "(error factors, per-entity contributions, U(C,p) table, "
        "pruning events)",
    )
    explain.add_argument("--index", required=True, help="index path")
    explain.add_argument("--query", required=True)
    explain.add_argument("-k", type=int, default=5)
    explain.add_argument("--beta", type=float, default=5.0)
    explain.add_argument("--max-errors", type=int, default=2)
    explain.add_argument("--gamma", type=int, default=1000)
    explain.add_argument(
        "--prior", choices=("uniform", "length"), default="uniform"
    )
    explain.add_argument(
        "--engine", choices=("packed", "tuple"), default="packed"
    )
    explain.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="human-readable tables or the full provenance as JSON",
    )
    explain.add_argument(
        "--max-entities", type=int, default=5,
        help="entity contributions shown per candidate (table format)",
    )

    trace = sub.add_parser(
        "trace",
        help="run one query under a live tracer and export its span "
        "tree",
    )
    trace.add_argument("--index", required=True, help="index path")
    trace.add_argument("--query", required=True)
    trace.add_argument("-k", type=int, default=5)
    trace.add_argument("--beta", type=float, default=5.0)
    trace.add_argument("--max-errors", type=int, default=2)
    trace.add_argument("--gamma", type=int, default=1000)
    trace.add_argument(
        "--engine", choices=("packed", "tuple"), default="packed"
    )
    trace.add_argument(
        "--format",
        choices=("text", "chrome", "jsonl"),
        default="text",
        help="text outline, Chrome trace event JSON "
        "(chrome://tracing / Perfetto), or one-line JSON",
    )
    trace.add_argument(
        "--out", default=None,
        help="write the export to this path instead of stdout",
    )

    batch = sub.add_parser(
        "batch", help="answer a file of queries through the service"
    )
    batch.add_argument(
        "--index", required=True,
        help="index path or shard-manifest directory",
    )
    batch.add_argument(
        "--queries", required=True,
        help="text file with one query per line",
    )
    batch.add_argument("-k", type=int, default=5)
    batch.add_argument("--beta", type=float, default=5.0)
    batch.add_argument("--max-errors", type=int, default=2)
    batch.add_argument("--gamma", type=int, default=1000)
    batch.add_argument(
        "--engine", choices=("packed", "tuple"), default="packed"
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width (default: in-process serial)",
    )
    batch.add_argument(
        "--worker-timeout", type=float, default=None,
        help="per-query worker timeout in seconds; a timed-out query "
        "is retried once, then answered in-process",
    )
    batch.add_argument(
        "--recycle-after", type=int, default=None,
        help="recycle pool workers after this many dispatched queries",
    )
    batch.add_argument(
        "--replicas", type=int, default=0,
        help="replica pools per shard when --index is a shard "
        "manifest (0 = in-process scatter)",
    )
    batch.add_argument(
        "--routing", choices=("round-robin", "least-loaded"),
        default="round-robin",
        help="replica routing policy (shard manifest only)",
    )
    batch.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="table prints top suggestions; json carries per-query "
        "stats (partial flag, cache counters, trace id) — json "
        "attaches a live tracer so trace ids are populated",
    )

    metrics = sub.add_parser(
        "metrics",
        help="answer a file of queries, then export serving metrics",
    )
    metrics.add_argument("--index", required=True, help="index path")
    metrics.add_argument(
        "--queries", required=True,
        help="text file with one query per line",
    )
    metrics.add_argument("-k", type=int, default=5)
    metrics.add_argument("--beta", type=float, default=5.0)
    metrics.add_argument("--max-errors", type=int, default=2)
    metrics.add_argument("--gamma", type=int, default=1000)
    metrics.add_argument(
        "--engine", choices=("packed", "tuple"), default="packed"
    )
    metrics.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width (default: in-process serial)",
    )
    metrics.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="export format: JSON snapshot or Prometheus text",
    )
    metrics.add_argument(
        "--ops", default=None,
        help="JSON update-ops file to apply first, so the live-update "
        "stage timers (wal_append, delta_apply, compact) land in the "
        "same export as the query stages",
    )
    metrics.add_argument(
        "--source", default=None,
        help="XML source backing --ops subtree inserts",
    )
    metrics.add_argument(
        "--compact", action="store_true",
        help="fold the applied --ops into a new generation before "
        "serving, timing the compact stage",
    )

    search = sub.add_parser(
        "search", help="execute a keyword query (no spell correction)"
    )
    search.add_argument("--index", required=True, help="index path")
    search.add_argument("--query", required=True)
    search.add_argument("-k", type=int, default=5)
    search.add_argument(
        "--xml", default=None,
        help="original XML file, for result snippets",
    )

    evaluate = sub.add_parser(
        "evaluate", help="run the MRR evaluation on a synthetic dataset"
    )
    evaluate.add_argument(
        "--dataset", choices=("dblp", "wiki"), default="dblp"
    )
    evaluate.add_argument(
        "--scale", choices=("small", "default"), default="small"
    )

    chaos = sub.add_parser(
        "chaos",
        help="replay queries through the service under an injected "
        "fault plan and report how each degradation resolved",
    )
    chaos.add_argument("--index", required=True, help="index path")
    chaos.add_argument(
        "--queries", required=True,
        help="text file with one query per line",
    )
    chaos.add_argument(
        "--plan", required=True,
        help="fault plan spec, e.g. "
        "'worker.query:raise@2;merge.step:delay=0.01x3' "
        "(sites: snapshot.load, worker.init, worker.query, "
        "merge.step, variant.gen, shard.query, wal.append, "
        "delta.apply, compact.swap)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="seed for deterministic fault corruption offsets",
    )
    chaos.add_argument("-k", type=int, default=5)
    chaos.add_argument(
        "--engine", choices=("packed", "tuple"), default="packed"
    )
    chaos.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width (default: in-process serial)",
    )
    chaos.add_argument(
        "--worker-timeout", type=float, default=None,
        help="per-query worker timeout in seconds",
    )
    chaos.add_argument(
        "--deadline", type=float, default=None,
        help="per-query deadline in seconds; an expired query returns "
        "its best-so-far top-k marked partial",
    )
    chaos.add_argument(
        "--max-pending", type=int, default=None,
        help="admission-control bound; excess queries are shed with "
        "a typed Overloaded error",
    )

    serve = sub.add_parser(
        "serve",
        help="run the asyncio HTTP front-end over an index "
        "(see docs/http_api.md)",
    )
    serve.add_argument(
        "--index", required=True,
        help="index path or shard-manifest directory",
    )
    serve.add_argument(
        "--replicas", type=int, default=0,
        help="replica pools per shard when --index is a shard "
        "manifest (0 = in-process scatter)",
    )
    serve.add_argument(
        "--routing", choices=("round-robin", "least-loaded"),
        default="round-robin",
        help="replica routing policy (shard manifest only)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port; 0 binds an ephemeral port",
    )
    serve.add_argument(
        "--threads", type=int, default=4,
        help="executor threads running service calls",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="admission-control bound; excess requests get HTTP 503 "
        "with a Retry-After header (pass 0 for unbounded)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-query deadline in seconds; an expired query is "
        "answered with its best-so-far top-k and \"partial\": true",
    )
    serve.add_argument("-k", type=int, default=10,
                       help="default k when a request omits it")
    serve.add_argument("--beta", type=float, default=5.0)
    serve.add_argument("--max-errors", type=int, default=2)
    serve.add_argument("--gamma", type=int, default=1000)
    serve.add_argument(
        "--engine", choices=("packed", "tuple"), default="packed"
    )
    serve.add_argument(
        "--result-cache-size", type=int, default=None,
        help="whole-result LRU capacity (default: service default; "
        "0 disables caching)",
    )
    serve.add_argument(
        "--no-single-flight", action="store_true",
        help="disable coalescing of concurrent identical requests",
    )
    serve.add_argument(
        "--keep-alive-timeout", type=float, default=30.0,
        help="seconds an idle keep-alive connection is retained",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds a SIGTERM drain waits for in-flight requests",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=64 * 1024,
        help="reject request bodies larger than this (HTTP 413)",
    )
    serve.add_argument(
        "--access-log", default=None,
        help="append one JSONL line per request to this path "
        "(schema: docs/observability.md, Ops plane)",
    )
    serve.add_argument(
        "--plan", default=None,
        help="fault plan spec to arm while serving (smoke/chaos "
        "testing); same grammar as 'xclean chaos --plan'",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="seed for deterministic fault corruption offsets",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=None,
        help="seconds the circuit breaker stays open before the "
        "half-open probe (default 30; smoke tests shrink it so "
        "degraded /readyz verdicts clear quickly)",
    )

    status = sub.add_parser(
        "status",
        help="report service health, data generation, WAL depth, and "
        "process gauges for an index (the /statusz payload, offline)",
    )
    status.add_argument(
        "--index", required=True,
        help="index path or shard-manifest directory",
    )
    status.add_argument(
        "--replicas", type=int, default=0,
        help="replica pools per shard when --index is a shard manifest",
    )
    status.add_argument(
        "--routing", choices=("round-robin", "least-loaded"),
        default="round-robin",
    )
    status.add_argument(
        "--watch", action="store_true",
        help="refresh a one-line summary every --interval seconds "
        "until interrupted",
    )
    status.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch refreshes",
    )

    verify = sub.add_parser(
        "verify",
        help="deep-verify a v3 snapshot or every shard of a manifest "
        "(per-section CRCs, manifest checksums); non-zero exit on "
        "any failure",
    )
    verify.add_argument(
        "--index", required=True,
        help="v3 snapshot path or shard-manifest directory",
    )

    update = sub.add_parser(
        "update",
        help="durably apply live subtree updates to an index "
        "(WAL-acknowledged; see docs/index_format.md, Live updates)",
    )
    update.add_argument(
        "--index", required=True,
        help="v3 snapshot path or shard-manifest directory",
    )
    update.add_argument(
        "--ops", required=True,
        help="JSON file with a list of update records "
        '({"op": "add"|"update"|"delete", "dewey": [...], '
        '"subtree": {...}})',
    )
    update.add_argument(
        "--source", default=None,
        help="the XML file the index was built from; required only "
        "on the first update of an index (seeds the live-source "
        "sidecar)",
    )
    update.add_argument(
        "--compact", action="store_true",
        help="fold into a fresh snapshot generation immediately "
        "after applying",
    )
    update.add_argument(
        "--plan", default=None,
        help="fault plan spec to arm while applying (chaos testing); "
        "same grammar as 'xclean chaos --plan'",
    )
    update.add_argument(
        "--seed", type=int, default=0,
        help="seed for deterministic fault corruption offsets",
    )

    compact = sub.add_parser(
        "compact",
        help="fold WAL'd live updates into a fresh snapshot "
        "generation (atomic swap; bumps the generation stamp)",
    )
    compact.add_argument(
        "--index", required=True,
        help="v3 snapshot path or shard-manifest directory",
    )
    compact.add_argument(
        "--source", default=None,
        help="the XML file the index was built from (first-open "
        "seeding only; normally recovered from the sidecar)",
    )
    compact.add_argument(
        "--workers", type=int, default=None,
        help="parallel shard build width (manifest indexes only)",
    )
    compact.add_argument(
        "--plan", default=None,
        help="fault plan spec to arm while compacting (chaos "
        "testing)",
    )
    compact.add_argument(
        "--seed", type=int, default=0,
        help="seed for deterministic fault corruption offsets",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "dblp":
        config = (
            DBLPConfig(publications=args.size, seed=args.seed)
            if args.size
            else DBLPConfig(seed=args.seed)
        )
        document = generate_dblp(config).document
    else:
        config = (
            WikiConfig(articles=args.size, seed=args.seed)
            if args.size
            else WikiConfig(seed=args.seed)
        )
        document = generate_wiki(config).document
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(document.serialize())
    stats = document.stats
    print(
        f"wrote {args.out}: {stats.node_count} nodes, "
        f"max depth {stats.max_depth}"
    )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    document = XMLDocument.from_file(args.xml)
    corpus = build_corpus_index(document)
    if args.shards:
        from repro.index.sharding import build_sharded_snapshot

        kwargs = {}
        if args.partition_depth is not None:
            kwargs["partition_depth"] = args.partition_depth
        manifest = build_sharded_snapshot(
            corpus, args.out, args.shards,
            strategy=args.strategy, workers=args.workers, **kwargs,
        )
        print(
            f"wrote {args.out}: {len(manifest.shards)} shards, "
            f"{manifest.entities} entities, "
            f"{manifest.postings} postings "
            f"({args.strategy} assignment at depth "
            f"{manifest.partition_depth})"
        )
        return 0
    if args.format == "v3":
        build_snapshot(corpus, args.out, workers=args.workers)
    elif args.format == "binary":
        save_index_binary(corpus, args.out)
    else:
        save_index(corpus, args.out)
    description = corpus.describe()
    print(
        f"wrote {args.out}: {description['tokens']} tokens, "
        f"{description['postings']} postings"
    )
    return 0


def _load_any_index(path: str, metrics=None):
    """Load a text, binary, or v3 snapshot index by magic sniffing.

    Whatever the format, the load is timed under the ``index_load``
    stage of ``metrics`` (when given), so cold-start cost shows up in
    the same ``stage_seconds`` family as the query stages.
    """
    return snapshot_or_corpus(path, metrics=metrics)


def _open_service(args, registry, config, **kwargs):
    """The serving object behind ``--index``: single or sharded.

    A shard-manifest path (directory or ``manifest.json``) opens a
    :class:`~repro.core.shards.ShardedSuggestionService`; anything
    else loads as a single index behind :class:`SuggestionService`.
    Both expose the same serving surface, so callers don't branch.
    """
    from repro.index.sharding import is_manifest, resolve_manifest_path

    if is_manifest(args.index):
        from repro.core.shards import ShardedSuggestionService

        kwargs.pop("worker_recycle_after", None)
        return ShardedSuggestionService(
            resolve_manifest_path(args.index),
            config=config,
            replicas=getattr(args, "replicas", 0),
            routing=getattr(args, "routing", "round-robin"),
            metrics=registry,
            **kwargs,
        )
    corpus = _load_any_index(args.index, metrics=registry)
    return SuggestionService(
        corpus, config=config, metrics=registry, **kwargs
    )


def _cmd_suggest(args: argparse.Namespace) -> int:
    corpus = _load_any_index(args.index)
    config = XCleanConfig(
        max_errors=args.max_errors,
        beta=args.beta,
        gamma=args.gamma,
        prior=args.prior,
        engine=args.engine,
    )
    if args.semantics == "slca":
        suggester = SLCACleanSuggester(corpus, config=config)
    elif args.semantics == "elca":
        suggester = ELCACleanSuggester(corpus, config=config)
    else:
        suggester = XCleanSuggester(corpus, config=config)
    suggestions = suggester.suggest(args.query, args.k)
    if not suggestions:
        print("(no suggestions)")
        return 0
    rows = [
        (rank, s.text, s.score, s.result_type or "")
        for rank, s in enumerate(suggestions, start=1)
    ]
    print(format_table(("#", "suggestion", "score", "result type"), rows))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    corpus = _load_any_index(args.index)
    config = XCleanConfig(
        max_errors=args.max_errors,
        beta=args.beta,
        gamma=args.gamma,
        prior=args.prior,
        engine=args.engine,
    )
    suggester = XCleanSuggester(corpus, config=config)
    explanation = suggester.suggest_explained(args.query, args.k)
    if args.format == "json":
        print(json.dumps(
            explanation.as_dict(), indent=2, sort_keys=True
        ))
    else:
        print(explanation.render(max_entities=args.max_entities))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    corpus = _load_any_index(args.index)
    config = XCleanConfig(
        max_errors=args.max_errors,
        beta=args.beta,
        gamma=args.gamma,
        engine=args.engine,
    )
    tracer = Tracer()
    suggester = XCleanSuggester(corpus, config=config, tracer=tracer)
    suggestions = suggester.suggest(args.query, args.k)
    root = tracer.last_trace
    if root is None:  # pragma: no cover - begin/end always pair
        print("error: no trace recorded", file=sys.stderr)
        return 1
    if args.format == "chrome":
        payload = json.dumps(chrome_trace(root), indent=2)
    elif args.format == "jsonl":
        payload = trace_to_json_line(root)
    else:
        best = suggestions[0].text if suggestions else "(none)"
        payload = format_trace(root) + f"\ntop suggestion: {best}"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


def _read_queries(path: str) -> list[str]:
    with open(path, "r", encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


def _cmd_batch(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    queries = _read_queries(args.queries)
    if not queries:
        print("(no queries)")
        return 0
    service_kwargs = {}
    if args.recycle_after is not None:
        service_kwargs["worker_recycle_after"] = args.recycle_after
    if args.format == "json":
        # JSON output carries trace ids, so it runs under a tracer.
        service_kwargs["tracer"] = Tracer()
    with _open_service(
        args,
        registry,
        XCleanConfig(
            max_errors=args.max_errors,
            beta=args.beta,
            gamma=args.gamma,
            engine=args.engine,
        ),
        worker_timeout=args.worker_timeout,
        **service_kwargs,
    ) as service:
        started = time.perf_counter()
        detailed = service.suggest_batch_detailed(
            queries, args.k, workers=args.workers
        )
        elapsed = time.perf_counter() - started
    stats = service.stats
    qps = len(queries) / elapsed if elapsed > 0 else float("inf")
    if args.format == "json":
        payload = {
            "queries": [
                {
                    "query": query,
                    "suggestions": [
                        {
                            "text": s.text,
                            "score": s.score,
                            "result_type": s.result_type,
                        }
                        for s in suggestions
                    ],
                    "partial": query_stats.partial,
                    "result_cache_hits":
                        query_stats.result_cache_hits,
                    "result_cache_misses":
                        query_stats.result_cache_misses,
                    "trace_id": query_stats.trace_id,
                }
                for query, (suggestions, query_stats)
                in zip(queries, detailed)
            ],
            "elapsed_s": elapsed,
            "qps": qps,
            "service": {
                "queries_served": stats.queries_served,
                "result_cache_hits": stats.result_cache_hits,
                "result_cache_misses": stats.result_cache_misses,
                "partial_results": stats.partial_results,
                "degraded_queries": stats.degraded_queries,
                "unanswerable": stats.unanswerable,
            },
        }
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for query, (suggestions, _stats) in zip(queries, detailed):
        best = suggestions[0] if suggestions else None
        rows.append(
            (
                query,
                best.text if best else "(none)",
                f"{best.score:.3g}" if best else "",
            )
        )
    print(format_table(("query", "top suggestion", "score"), rows))
    print(
        f"{len(queries)} queries in {elapsed:.3f}s ({qps:.1f} q/s), "
        f"cache hits {stats.result_cache_hits}, "
        f"misses {stats.result_cache_misses}, "
        f"partial {stats.partial_results}, "
        f"degraded {stats.degraded_queries}"
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    # The registry exists before the load so the index_load stage (and
    # the pool_init_bytes counter) lands in the exported snapshot.
    registry = MetricsRegistry()
    if args.ops:
        from repro.index.compaction import LiveIndexManager

        document = (
            XMLDocument.from_file(args.source) if args.source else None
        )
        with open(args.ops, encoding="utf-8") as handle:
            ops = json.load(handle)
        if isinstance(ops, dict):
            ops = [ops]
        with LiveIndexManager(
            args.index, document=document, metrics=registry
        ) as live:
            live.apply(ops)
            if args.compact:
                live.compact()
    corpus = _load_any_index(args.index, metrics=registry)
    queries = _read_queries(args.queries)
    with SuggestionService(
        corpus,
        config=XCleanConfig(
            max_errors=args.max_errors,
            beta=args.beta,
            gamma=args.gamma,
            engine=args.engine,
        ),
        metrics=registry,
    ) as service:
        service.suggest_batch(queries, args.k, workers=args.workers)
        snapshot = service.metrics()
    if args.format == "prometheus":
        sys.stdout.write(snapshot.to_prometheus())
    else:
        print(snapshot.to_json())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    corpus = _load_any_index(args.index)
    engine = EntitySearch(corpus)
    results = engine.search(args.query, args.k)
    if not results:
        print("(no results)")
        return 0
    document = (
        XMLDocument.from_file(args.xml) if args.xml else None
    )
    rows = []
    for rank, result in enumerate(results, start=1):
        snippet = result.render(document) if document else ""
        rows.append(
            (
                rank,
                ".".join(map(str, result.dewey)),
                result.result_type,
                result.score,
                snippet,
            )
        )
    print(
        format_table(
            ("#", "entity", "type", "score", "snippet"), rows
        )
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    setting = (
        dblp_setting(args.scale)
        if args.dataset == "dblp"
        else wiki_setting(args.scale)
    )
    rows = []
    for kind, records in setting.workloads.items():
        result = evaluate_suggester(
            setting.xclean(),
            records,
            system="XClean",
            workload=f"{setting.label}-{kind}",
        )
        rows.append(
            (result.workload, result.mrr, result.precision[1],
             result.mean_time)
        )
    print(
        format_table(
            ("workload", "MRR", "P@1", "mean time (s)"),
            rows,
            title=f"XClean on {setting.label} ({args.scale} scale)",
        )
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    corpus = _load_any_index(args.index, metrics=registry)
    queries = _read_queries(args.queries)
    if not queries:
        print("(no queries)")
        return 0
    config = XCleanConfig(
        engine=args.engine,
        deadline_seconds=args.deadline,
        fault_plan=args.plan,
        fault_seed=args.seed,
    )
    rows = []
    with SuggestionService(
        corpus,
        config=config,
        worker_timeout=args.worker_timeout,
        max_pending=args.max_pending,
        metrics=registry,
    ) as service:
        plan = faults.active()
        print(f"fault plan: {plan.describe()}")
        parallel = args.workers is not None and args.workers > 1
        for query in queries:
            try:
                if parallel:
                    # Route through the pool so the worker.* sites are
                    # actually exercised; a one-query batch keeps the
                    # per-query shed/error granularity.
                    suggestions = service.suggest_batch(
                        [query], args.k, workers=args.workers
                    )[0]
                else:
                    suggestions = service.suggest(query, args.k)
            except Overloaded as exc:
                rows.append((query, "(shed)", f"overloaded: {exc}"))
                continue
            except ReproError as exc:
                rows.append(
                    (query, "(error)", f"{type(exc).__name__}: {exc}")
                )
                continue
            outcome = (
                "partial" if service.last_stats.partial else "ok"
            )
            best = suggestions[0].text if suggestions else "(none)"
            rows.append((query, best, outcome))
        fired = plan.fired()
        stats = service.stats
        breaker_state = service.breaker.state
    print(format_table(("query", "top suggestion", "outcome"), rows))
    print(
        "fired: "
        + (
            ", ".join(
                f"{site}={count}" for site, count in sorted(fired.items())
            )
            or "(none)"
        )
    )
    print(
        f"shed {stats.shed_queries}, partial {stats.partial_results}, "
        f"degraded {stats.degraded_queries}, "
        f"quarantined {stats.snapshot_quarantined}, "
        f"breaker {breaker_state}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.server import HTTPFrontEnd, ServeConfig

    registry = MetricsRegistry()
    service_kwargs = {}
    if args.result_cache_size is not None:
        service_kwargs["result_cache_size"] = args.result_cache_size
    if args.breaker_cooldown is not None:
        service_kwargs["breaker_cooldown"] = args.breaker_cooldown
    service = _open_service(
        args,
        registry,
        XCleanConfig(
            max_errors=args.max_errors,
            beta=args.beta,
            gamma=args.gamma,
            engine=args.engine,
            deadline_seconds=args.deadline,
            fault_plan=args.plan,
            fault_seed=args.seed,
        ),
        max_pending=args.max_pending or None,
        **service_kwargs,
    )
    request_log = None
    if args.access_log:
        from repro.obs.logging import RequestLog

        request_log = RequestLog(args.access_log, metrics=registry)
    front_end = HTTPFrontEnd(
        service,
        ServeConfig(
            host=args.host,
            port=args.port,
            threads=args.threads,
            default_k=args.k,
            max_body_bytes=args.max_body_bytes,
            keep_alive_timeout=args.keep_alive_timeout,
            drain_grace=args.drain_grace,
            single_flight=not args.no_single_flight,
        ),
        request_log=request_log,
    )

    async def _serve() -> None:
        await front_end.start()
        # The exact line load harnesses wait for before sending
        # traffic (the port matters when --port 0 picked one).
        print(
            f"listening on http://{front_end.host}:{front_end.port}",
            flush=True,
        )
        await front_end.run()

    with service:
        asyncio.run(_serve())
    print("drained; exiting", flush=True)
    return 0


def _status_line(payload: dict) -> str:
    """One ``--watch`` row: the fields an operator scans first."""
    health = payload["health"]
    service = payload["service"]
    process = payload["process"]
    live = service.get("live") or {}
    line = (
        f"{time.strftime('%H:%M:%S')} {health['state']:<9} "
        f"gen={service.get('data_generation')} "
        f"epoch={service.get('swap_epoch')} "
        f"inflight={service.get('inflight')} "
        f"wal={live.get('wal_records', 0)} "
        f"rss={process['rss_bytes'] // (1 << 20)}MiB"
    )
    if health["reasons"]:
        line += " " + ",".join(health["reasons"])
    return line


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.obs.ops import status_payload

    registry = MetricsRegistry()
    service = _open_service(args, registry, XCleanConfig())
    with service:
        if not args.watch:
            print(json.dumps(
                status_payload(service), indent=2, sort_keys=True
            ))
            return 0
        try:
            while True:
                print(_status_line(status_payload(service)), flush=True)
                time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.index.sharding import (
        is_manifest,
        resolve_manifest_path,
        verify_sharded,
    )

    if is_manifest(args.index):
        reports = verify_sharded(resolve_manifest_path(args.index))
        rows = [
            (
                report["shard_id"],
                report["path"],
                "ok" if report["ok"] else "FAIL",
                report["bytes"],
                report["error"] or "",
            )
            for report in reports
        ]
        print(format_table(
            ("shard", "path", "status", "bytes", "error"), rows
        ))
        failed = sum(1 for report in reports if not report["ok"])
        if failed:
            print(
                f"{failed} of {len(reports)} shards failed "
                "verification",
                file=sys.stderr,
            )
            return 1
        print(f"{len(reports)} shards verified")
        return 0
    from repro.index.snapshot import verify_snapshot

    verify_snapshot(args.index)
    print(f"{args.index}: ok")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.index.compaction import LiveIndexManager

    if args.plan:
        faults.install_spec(args.plan, seed=args.seed)
    try:
        document = (
            XMLDocument.from_file(args.source) if args.source else None
        )
        with open(args.ops, encoding="utf-8") as handle:
            ops = json.load(handle)
        if isinstance(ops, dict):
            ops = [ops]
        with LiveIndexManager(args.index, document=document) as live:
            if live.recovered_records:
                print(
                    f"recovered {live.recovered_records} "
                    f"acknowledged record(s) from the WAL"
                )
            applied = live.apply(ops)
            line = (
                f"applied {applied} update(s) against generation "
                f"{live.generation}"
            )
            if args.compact:
                generation = live.compact()
                line += f"; compacted to generation {generation}"
            elif live.sharded:
                line += (
                    " (pending: run 'xclean compact' to fold into "
                    "the shards)"
                )
            print(line)
        return 0
    finally:
        if args.plan:
            faults.uninstall()


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.index.compaction import LiveIndexManager

    if args.plan:
        faults.install_spec(args.plan, seed=args.seed)
    try:
        document = (
            XMLDocument.from_file(args.source) if args.source else None
        )
        began = time.perf_counter()
        with LiveIndexManager(args.index, document=document) as live:
            pending = live.recovered_records
            generation = live.compact(workers=args.workers)
        elapsed = time.perf_counter() - began
        print(
            f"compacted {args.index} to generation {generation} "
            f"({pending} WAL record(s) folded, {elapsed:.2f}s)"
        )
        return 0
    finally:
        if args.plan:
            faults.uninstall()


_COMMANDS = {
    "generate": _cmd_generate,
    "index": _cmd_index,
    "suggest": _cmd_suggest,
    "explain": _cmd_explain,
    "trace": _cmd_trace,
    "batch": _cmd_batch,
    "metrics": _cmd_metrics,
    "search": _cmd_search,
    "evaluate": _cmd_evaluate,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "status": _cmd_status,
    "verify": _cmd_verify,
    "update": _cmd_update,
    "compact": _cmd_compact,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
