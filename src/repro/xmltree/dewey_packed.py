"""Packed Dewey codes: one sortable ``int`` per node.

The tuple representation in :mod:`repro.xmltree.dewey` is semantically
clean but every document-order comparison allocates an iterator and
compares components one Python object at a time, and every prefix
truncation (``code[:d]``) allocates a fresh tuple.  Algorithm 1 performs
millions of both on a large corpus, so the fast query engine packs a
whole Dewey code into a single integer whose **numeric order equals
document order**, with O(1) ``prefix`` and ``is_under`` via bit masks.

Layout (most-significant bits first)::

    | c_1 | c_2 | ... | c_max_depth | depth |

Each component occupies ``component_bits`` bits; absent levels are
zero-filled.  Because real components are >= 1, the zero padding sorts
an ancestor strictly before its descendants — exactly the prefix-first
rule of lexicographic tuple order — and two distinct codes can never
collide (the first zero level delimits the code).  The trailing
``depth`` field makes depth extraction O(1); it never disturbs ordering
because equal component blocks imply equal codes.

A :class:`DeweyPacker` is sized per corpus from the maximal depth and
component actually observed.  When the packed keys fit in a signed
64-bit integer the columnar posting lists store them in ``array('q')``
(8 bytes/key, C-level ``bisect``); otherwise they fall back to a plain
Python list of (still sortable) big ints.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import DeweyError
from repro.xmltree.dewey import DeweyCode


class DeweyPacker:
    """Bijective order-preserving encoding of Dewey tuples as ints."""

    __slots__ = (
        "max_depth",
        "component_bits",
        "depth_bits",
        "total_bits",
        "_depth_mask",
        "_component_mask",
    )

    def __init__(self, max_depth: int, component_bits: int):
        if max_depth < 1:
            raise DeweyError("max_depth must be >= 1")
        if component_bits < 1:
            raise DeweyError("component_bits must be >= 1")
        self.max_depth = max_depth
        self.component_bits = component_bits
        self.depth_bits = max(1, max_depth.bit_length())
        self.total_bits = max_depth * component_bits + self.depth_bits
        self._depth_mask = (1 << self.depth_bits) - 1
        self._component_mask = (1 << component_bits) - 1

    @classmethod
    def for_codes(cls, codes: Iterable[DeweyCode]) -> "DeweyPacker":
        """A packer sized to hold every code in ``codes``.

        Sizing from the data keeps keys as small as possible, which is
        what lets typical corpora stay within 64 bits.
        """
        max_depth = 1
        max_component = 1
        for code in codes:
            if len(code) > max_depth:
                max_depth = len(code)
            for component in code:
                if component > max_component:
                    max_component = component
        return cls(max_depth, max_component.bit_length())

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------

    @property
    def fits_int64(self) -> bool:
        """True when every packed key fits in a signed 64-bit slot."""
        return self.total_bits <= 63

    def pack(self, code: DeweyCode) -> int:
        """Encode a Dewey tuple; raises when it does not fit."""
        depth = len(code)
        if depth == 0 or depth > self.max_depth:
            raise DeweyError(
                f"cannot pack depth-{depth} code "
                f"(packer max_depth={self.max_depth})"
            )
        bits = self.component_bits
        key = 0
        for component in code:
            if component < 1 or component > self._component_mask:
                raise DeweyError(
                    f"component {component} out of range for "
                    f"{bits}-bit packer"
                )
            key = (key << bits) | component
        key <<= (self.max_depth - depth) * bits
        return (key << self.depth_bits) | depth

    def unpack(self, key: int) -> DeweyCode:
        """Decode a packed key back into the original tuple."""
        depth = key & self._depth_mask
        bits = self.component_bits
        mask = self._component_mask
        components = key >> (
            self.depth_bits + (self.max_depth - depth) * bits
        )
        out = [0] * depth
        for i in range(depth - 1, -1, -1):
            out[i] = components & mask
            components >>= bits
        return tuple(out)

    # ------------------------------------------------------------------
    # O(1) structural queries (the whole point)
    # ------------------------------------------------------------------

    def depth(self, key: int) -> int:
        """Depth of the encoded node."""
        return key & self._depth_mask

    def shift_for(self, depth: int) -> int:
        """Right-shift that keeps exactly the top ``depth`` components.

        ``a >> shift == b >> shift`` iff a and b agree on their first
        ``depth`` components (both discarding the depth field); used by
        the merged list's subtree test so the per-posting check is two
        machine-word ops.
        """
        return self.depth_bits + (self.max_depth - depth) * (
            self.component_bits
        )

    def prefix(self, key: int, depth: int) -> int:
        """Packed key of the depth-``depth`` prefix (Alg. 1 Line 7)."""
        shift = self.depth_bits + (self.max_depth - depth) * (
            self.component_bits
        )
        return ((key >> shift) << shift) | depth

    def is_under(self, key: int, group: int) -> bool:
        """True iff ``key`` is ``group`` or one of its descendants."""
        shift = self.shift_for(group & self._depth_mask)
        return (key >> shift) == (group >> shift)

    def group_bounds(self, key: int, depth: int) -> tuple[int, int]:
        """Packed key range of the depth-``depth`` subtree around ``key``.

        Returns ``(group, upper)``: ``group`` is the packed prefix of
        ``key`` truncated to ``depth`` (Alg. 1 Line 7) and every
        descendant-or-self of that prefix packs into ``[group, upper)``
        — the contiguity that lets the merge kernel drain a whole
        subtree with one bisect per column.
        """
        shift = self.depth_bits + (self.max_depth - depth) * (
            self.component_bits
        )
        prefix = key >> shift
        return ((prefix << shift) | depth, (prefix + 1) << shift)
