"""The XML tree node model.

Following Section III of the paper we model an XML document as a rooted,
node-labeled, ordered tree.  Attribute nodes and PCDATA are treated as
element nodes; only leaf nodes carry text content.
"""

from __future__ import annotations

from typing import Iterator

from repro.xmltree.dewey import DeweyCode
from repro.xmltree.labelpath import LabelPath


class XMLNode:
    """A node of the XML tree.

    Attributes:
        label: the element name (attributes are modeled as elements whose
            label is the attribute name prefixed with ``@``).
        dewey: the node's Dewey code; assigned when the tree is frozen by
            a builder/parser, ``None`` for detached nodes.
        children: ordered list of child nodes.
        text: text content. Only leaves are expected to carry text (the
            indexing layer enforces this view); mixed content is pushed
            down into synthetic ``#text`` children by the parser.
    """

    __slots__ = ("label", "dewey", "children", "text")

    def __init__(self, label: str, text: str = ""):
        self.label = label
        self.dewey: DeweyCode | None = None
        self.children: list[XMLNode] = []
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = ".".join(map(str, self.dewey)) if self.dewey else "?"
        return f"XMLNode({self.label!r} @ {where}, {len(self.children)} kids)"

    @property
    def is_leaf(self) -> bool:
        """True when the node has no element children."""
        return not self.children

    def add_child(self, child: XMLNode) -> XMLNode:
        """Append ``child`` and return it (builder convenience)."""
        self.children.append(child)
        return child

    def assign_deweys(self, root_code: DeweyCode = (1,)) -> None:
        """Assign Dewey codes to this subtree, rooted at ``root_code``.

        Children are numbered from 1 in document order, as in the paper's
        running example (Figure 2).
        """
        self.dewey = root_code
        stack = [self]
        while stack:
            node = stack.pop()
            base = node.dewey
            assert base is not None
            for i, child in enumerate(node.children, start=1):
                child.dewey = base + (i,)
                stack.append(child)

    def iter_subtree(self) -> Iterator[XMLNode]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # Reversed so the leftmost child is processed first.
            stack.extend(reversed(node.children))

    def iter_with_paths(
        self, prefix: LabelPath = ()
    ) -> Iterator[tuple[XMLNode, LabelPath]]:
        """Yield ``(node, label_path)`` pairs in document order.

        ``prefix`` is the label path of this node's parent; the root of
        the walk therefore gets ``prefix + (self.label,)``.
        """
        stack: list[tuple[XMLNode, LabelPath]] = [
            (self, prefix + (self.label,))
        ]
        while stack:
            node, path = stack.pop()
            yield node, path
            for child in reversed(node.children):
                stack.append((child, path + (child.label,)))

    def find(self, dewey: DeweyCode) -> XMLNode | None:
        """Locate a descendant (or self) by Dewey code.

        The node's own code must be a prefix of ``dewey``.  Runs in
        O(depth) by following child ordinals.
        """
        own = self.dewey
        if own is None or dewey[: len(own)] != own:
            return None
        node = self
        for ordinal in dewey[len(own):]:
            index = ordinal - 1
            if index < 0 or index >= len(node.children):
                return None
            node = node.children[index]
        return node

    def subtree_text(self) -> str:
        """Concatenated text of all leaves in the subtree, in order.

        This realizes the paper's *virtual document* D(r) for an entity
        rooted at this node (Section IV-B2).
        """
        parts = [n.text for n in self.iter_subtree() if n.text]
        return " ".join(parts)
