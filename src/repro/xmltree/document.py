"""The XML document abstraction used by the indexing and query layers.

An :class:`XMLDocument` wraps a Dewey-coded tree.  For a *collection* of
XML documents we add a virtual root that connects the individual roots
(Section III), which is how the paper turns the 600k INEX files into a
single tree.

The class also computes the corpus statistics reported in Table I of the
paper (serialized size, node count, maximum and average depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.xmltree import parser as xml_parser
from repro.xmltree.dewey import DeweyCode
from repro.xmltree.labelpath import LabelPath, PathTable
from repro.xmltree.node import XMLNode

#: Label of the virtual root added above document collections.
VIRTUAL_ROOT_LABEL = "collection"


@dataclass(frozen=True)
class DocumentStats:
    """Corpus statistics in the shape of the paper's Table I."""

    size_bytes: int
    node_count: int
    max_depth: int
    avg_depth: float
    distinct_paths: int
    token_nodes: int

    def as_row(self) -> dict[str, object]:
        """Render as a Table I row (sizes in MB, like the paper)."""
        return {
            "size (MB)": round(self.size_bytes / (1024 * 1024), 3),
            "#node": self.node_count,
            "max depth": self.max_depth,
            "avg depth": round(self.avg_depth, 2),
        }


class XMLDocument:
    """A single rooted XML tree with assigned Dewey codes.

    Construction freezes the tree: Dewey codes are assigned once, and the
    node-by-Dewey lookup relies on child ordinals staying stable.
    """

    def __init__(self, root: XMLNode, name: str = "document"):
        self.root = root
        self.name = name
        if root.dewey is None:
            root.assign_deweys((1,))
        self._stats: DocumentStats | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_string(
        cls, text: str | bytes, name: str = "document"
    ) -> XMLDocument:
        """Parse a single XML document from a string (or UTF-8 bytes)."""
        return cls(xml_parser.parse_document(text), name=name)

    @classmethod
    def from_file(cls, path: str, name: str | None = None) -> XMLDocument:
        """Parse a single XML document from a file path.

        The file is read as raw bytes and decoded by the parser, so a
        non-UTF-8 file raises a typed
        :class:`~repro.exceptions.XMLParseError` (with the offending
        byte offset) instead of an untyped ``UnicodeDecodeError``.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        return cls.from_string(data, name=name or path)

    @classmethod
    def from_trees(
        cls, roots: Iterable[XMLNode], name: str = "collection"
    ) -> XMLDocument:
        """Join several trees under a virtual root (Section III)."""
        virtual = XMLNode(VIRTUAL_ROOT_LABEL)
        for root in roots:
            virtual.add_child(root)
        return cls(virtual, name=name)

    @classmethod
    def from_strings(
        cls, texts: Iterable[str], name: str = "collection"
    ) -> XMLDocument:
        """Parse several XML documents and join them under a virtual root."""
        return cls.from_trees(
            (xml_parser.parse_document(t) for t in texts), name=name
        )

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def node_at(self, dewey: DeweyCode) -> XMLNode | None:
        """Node with the given Dewey code, or ``None`` if absent."""
        return self.root.find(dewey)

    def iter_nodes(self) -> Iterator[XMLNode]:
        """All nodes in document order."""
        return self.root.iter_subtree()

    def iter_with_paths(self) -> Iterator[tuple[XMLNode, LabelPath]]:
        """All ``(node, label_path)`` pairs in document order."""
        return self.root.iter_with_paths()

    def subtree_text(self, dewey: DeweyCode) -> str:
        """Virtual document D(r) for the entity rooted at ``dewey``."""
        node = self.node_at(dewey)
        if node is None:
            return ""
        return node.subtree_text()

    def build_path_table(self) -> PathTable:
        """Intern every label path occurring in the document."""
        table = PathTable()
        for _node, path in self.iter_with_paths():
            table.intern(path)
        return table

    # ------------------------------------------------------------------
    # Statistics (Table I)
    # ------------------------------------------------------------------

    @property
    def stats(self) -> DocumentStats:
        """Corpus statistics; computed once and cached."""
        if self._stats is None:
            self._stats = self._compute_stats()
        return self._stats

    def _compute_stats(self) -> DocumentStats:
        node_count = 0
        depth_sum = 0
        max_depth = 0
        token_nodes = 0
        size_bytes = 0
        paths: set[LabelPath] = set()
        for node, path in self.iter_with_paths():
            node_count += 1
            d = len(path)
            depth_sum += d
            if d > max_depth:
                max_depth = d
            paths.add(path)
            # Size estimate: tags plus text, close to serialized length.
            size_bytes += 2 * len(node.label) + 5 + len(node.text)
            if node.text:
                token_nodes += 1
        avg_depth = depth_sum / node_count if node_count else 0.0
        return DocumentStats(
            size_bytes=size_bytes,
            node_count=node_count,
            max_depth=max_depth,
            avg_depth=avg_depth,
            distinct_paths=len(paths),
            token_nodes=token_nodes,
        )

    def serialize(self) -> str:
        """Full XML serialization of the document."""
        return xml_parser.serialize(self.root)
