"""Label paths ("node types") and their interning table.

The label path of a node is the concatenation of element labels on the
path from the root (Section III).  Two nodes with the same label path are
considered the same *type* — e.g. every ``/dblp/article/title`` node.

Label paths appear in every inverted-list posting, so we intern them: a
:class:`PathTable` maps each distinct path to a small integer id, and all
hot-path structures store the id.  The table also answers the two
questions the XClean algorithm asks constantly:

* ``depth_of(pid)`` — for the depth penalty ``r^depth(p)`` in Eq. 7 and
  the minimal-depth threshold ``d``;
* ``prefix_id(pid, depth)`` — the id of a path's ancestor path, used when
  mapping a token occurrence to the candidate entity roots above it.
"""

from __future__ import annotations

from typing import Iterator

LabelPath = tuple[str, ...]

#: Separator for the textual form ("/dblp/article/title").
PATH_SEPARATOR = "/"


def format_path(labels: LabelPath) -> str:
    """Render a label tuple as an XPath-like string."""
    return PATH_SEPARATOR + PATH_SEPARATOR.join(labels)


def parse_path(text: str) -> LabelPath:
    """Parse ``"/a/b/c"`` (leading slash optional) into a label tuple."""
    stripped = text.strip()
    if stripped.startswith(PATH_SEPARATOR):
        stripped = stripped[1:]
    if not stripped:
        return ()
    return tuple(stripped.split(PATH_SEPARATOR))


class PathTable:
    """Bidirectional interning table for label paths.

    Ids are dense and assigned in first-seen order, which keeps them
    stable for a deterministically built index.  Prefix lookups are
    memoized because XClean resolves the same (path, depth) pairs for
    every occurrence in a subtree.
    """

    def __init__(self):
        self._path_to_id: dict[LabelPath, int] = {}
        self._id_to_path: list[LabelPath] = []
        self._prefix_cache: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._id_to_path)

    def __contains__(self, labels: LabelPath) -> bool:
        return labels in self._path_to_id

    def __iter__(self) -> Iterator[LabelPath]:
        return iter(self._id_to_path)

    def intern(self, labels: LabelPath) -> int:
        """Return the id for ``labels``, assigning a fresh one if new."""
        pid = self._path_to_id.get(labels)
        if pid is None:
            pid = len(self._id_to_path)
            self._path_to_id[labels] = pid
            self._id_to_path.append(labels)
        return pid

    def id_of(self, labels: LabelPath) -> int:
        """Id of an already-interned path.

        Raises:
            KeyError: if the path has never been interned.
        """
        return self._path_to_id[labels]

    def get_id(self, labels: LabelPath) -> int | None:
        """Id of a path, or ``None`` when it has never been interned."""
        return self._path_to_id.get(labels)

    def labels_of(self, pid: int) -> LabelPath:
        """Label tuple for an id."""
        return self._id_to_path[pid]

    def string_of(self, pid: int) -> str:
        """Textual form ("/a/b/c") for an id."""
        return format_path(self._id_to_path[pid])

    def depth_of(self, pid: int) -> int:
        """Depth (number of labels) of the path with this id."""
        return len(self._id_to_path[pid])

    def prefix_id(self, pid: int, to_depth: int) -> int:
        """Id of the depth-``to_depth`` prefix of path ``pid``.

        The prefix path is interned on demand: an ancestor path always
        corresponds to a real node (the ancestor exists in the tree) but
        may not have been registered yet if indexing visited leaves only.
        """
        labels = self._id_to_path[pid]
        if to_depth == len(labels):
            return pid
        if to_depth < 1 or to_depth > len(labels):
            raise ValueError(
                f"prefix depth {to_depth} out of range for {labels}"
            )
        key = (pid, to_depth)
        cached = self._prefix_cache.get(key)
        if cached is None:
            cached = self.intern(labels[:to_depth])
            self._prefix_cache[key] = cached
        return cached

    def ids_at_least_depth(self, min_depth: int) -> list[int]:
        """All interned ids whose depth is >= ``min_depth``."""
        return [
            pid
            for pid, labels in enumerate(self._id_to_path)
            if len(labels) >= min_depth
        ]
