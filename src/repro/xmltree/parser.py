"""A small, dependency-free XML parser.

The reproduction builds every substrate itself (per the project charter),
so rather than relying on ``xml.etree`` we parse the XML subset needed by
the paper's data model with a hand-rolled scanner:

* elements with attributes, self-closing tags;
* character data, CDATA sections, the five predefined entities plus
  numeric character references;
* comments, processing instructions and a DOCTYPE prologue (all skipped).

Mapping to the tree model of Section III:

* attributes become child element nodes labeled ``@name`` holding the
  attribute value as text, placed before element children;
* mixed content is normalized: when an element has both text and child
  elements, each text run is wrapped in a ``#text`` child at its document
  position, so that text always lives at leaves.

The parser is strict about well-formedness (mismatched tags raise
:class:`~repro.exceptions.XMLParseError`) but deliberately does not
implement namespaces, DTD validation or external entities.
"""

from __future__ import annotations

from repro.exceptions import XMLParseError
from repro.xmltree.node import XMLNode

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

#: ISO-Latin character entities used heavily by the real DBLP XML
#: (author names: &uuml;, &eacute;, …).  Passed as the default
#: ``extra_entities`` by :func:`parse_document` so the parser accepts
#: dblp.xml out of the box; callers can extend or override the table.
LATIN_ENTITIES = {
    "aacute": "á", "agrave": "à", "acirc": "â", "auml": "ä",
    "aring": "å", "atilde": "ã", "aelig": "æ",
    "ccedil": "ç",
    "eacute": "é", "egrave": "è", "ecirc": "ê", "euml": "ë",
    "iacute": "í", "igrave": "ì", "icirc": "î", "iuml": "ï",
    "ntilde": "ñ",
    "oacute": "ó", "ograve": "ò", "ocirc": "ô", "ouml": "ö",
    "otilde": "õ", "oslash": "ø",
    "uacute": "ú", "ugrave": "ù", "ucirc": "û", "uuml": "ü",
    "yacute": "ý", "yuml": "ÿ",
    "szlig": "ß", "thorn": "þ", "eth": "ð",
    "Aacute": "Á", "Agrave": "À", "Acirc": "Â", "Auml": "Ä",
    "Aring": "Å", "Atilde": "Ã", "AElig": "Æ",
    "Ccedil": "Ç",
    "Eacute": "É", "Egrave": "È", "Ecirc": "Ê", "Euml": "Ë",
    "Iacute": "Í", "Igrave": "Ì", "Icirc": "Î", "Iuml": "Ï",
    "Ntilde": "Ñ",
    "Oacute": "Ó", "Ograve": "Ò", "Ocirc": "Ô", "Ouml": "Ö",
    "Otilde": "Õ", "Oslash": "Ø",
    "Uacute": "Ú", "Ugrave": "Ù", "Ucirc": "Û", "Uuml": "Ü",
    "Yacute": "Ý",
    "THORN": "Þ", "ETH": "Ð",
    "nbsp": " ", "times": "×", "micro": "µ", "reg": "®",
}

#: Maximum element nesting depth accepted by the parser.  Deeper input
#: (hostile or corrupt) would otherwise exhaust the Python recursion
#: limit with an untyped ``RecursionError`` — and Dewey codes of that
#: depth could not be packed into the fixed-width int64 keys the v3
#: snapshot format stores anyway.
MAX_ELEMENT_DEPTH = 200

#: Label used for wrapped text runs in mixed content.
TEXT_LABEL = "#text"

#: Prefix used for attribute nodes.
ATTRIBUTE_PREFIX = "@"


def decode_entities(
    text: str, extra_entities: dict[str, str] | None = None
) -> str:
    """Replace entities and character references in ``text``.

    ``extra_entities`` extends the five predefined XML entities;
    defaults to :data:`LATIN_ENTITIES` (what DBLP-style documents
    need).  Pass ``{}`` for strict XML-only decoding.
    """
    if "&" not in text:
        return text
    extras = LATIN_ENTITIES if extra_entities is None else extra_entities
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLParseError("unterminated entity reference", i)
        name = text[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise XMLParseError(f"bad character reference &{name};", i)
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise XMLParseError(f"bad character reference &{name};", i)
        elif name in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[name])
        elif name in extras:
            out.append(extras[name])
        else:
            raise XMLParseError(f"unknown entity &{name};", i)
        i = end + 1
    return "".join(out)


def encode_text(text: str) -> str:
    """Escape ``&``, ``<`` and ``>`` for serialization."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


class _Scanner:
    """Cursor over the raw document with primitive scanning operations."""

    def __init__(self, text: str, max_depth: int = MAX_ELEMENT_DEPTH):
        self.text = text
        self.pos = 0
        self.depth = 0
        self.max_depth = max_depth

    def error(self, message: str) -> XMLParseError:
        return XMLParseError(message, self.pos)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, count: int = 1) -> str:
        return self.text[self.pos : self.pos + count]

    def skip_whitespace(self) -> None:
        text = self.text
        n = len(text)
        while self.pos < n and text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def scan_until(self, literal: str) -> str:
        end = self.text.find(literal, self.pos)
        if end == -1:
            raise self.error(f"unterminated construct, expected {literal!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(literal)
        return chunk

    def scan_name(self) -> str:
        start = self.pos
        text = self.text
        n = len(text)
        while self.pos < n and (
            text[self.pos].isalnum() or text[self.pos] in "_-.:"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return text[start : self.pos]


def _parse_attributes(scanner: _Scanner) -> list[tuple[str, str]]:
    """Parse ``name="value"`` pairs up to (but excluding) ``>`` / ``/>``."""
    attributes: list[tuple[str, str]] = []
    while True:
        scanner.skip_whitespace()
        nxt = scanner.peek()
        if nxt in (">", "/") or nxt == "?" or scanner.at_end():
            return attributes
        name = scanner.scan_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error(f"attribute {name!r} value must be quoted")
        scanner.pos += 1
        value = scanner.scan_until(quote)
        attributes.append((name, decode_entities(value)))


def _skip_prolog(scanner: _Scanner) -> None:
    """Skip the XML declaration, DOCTYPE, comments and PIs before the root."""
    while True:
        scanner.skip_whitespace()
        if scanner.peek(4) == "<!--":
            scanner.pos += 4
            scanner.scan_until("-->")
        elif scanner.peek(2) == "<?":
            scanner.pos += 2
            scanner.scan_until("?>")
        elif scanner.peek(9).upper() == "<!DOCTYPE":
            scanner.pos += 9
            # A DOCTYPE may contain a bracketed internal subset.
            depth = 1
            while depth:
                ch = scanner.peek()
                if scanner.at_end():
                    raise scanner.error("unterminated DOCTYPE")
                if ch == "<":
                    depth += 1
                elif ch == ">":
                    depth -= 1
                scanner.pos += 1
        else:
            return


def parse_document(
    text: str | bytes, max_depth: int = MAX_ELEMENT_DEPTH
) -> XMLNode:
    """Parse a complete XML document and return its root node.

    Dewey codes are *not* assigned; callers (usually
    :class:`repro.xmltree.document.XMLDocument`) decide the root code,
    since a collection may hang several documents under a virtual root.

    ``bytes`` input is decoded as UTF-8 first; undecodable bytes raise
    the same typed error as any other malformed input, with the byte
    offset in ``position``.

    Raises:
        XMLParseError: on malformed input (truncated documents,
            mismatched tags, undecodable bytes, nesting deeper than
            ``max_depth``) or trailing non-whitespace content after
            the root element.
    """
    if isinstance(text, (bytes, bytearray)):
        try:
            text = bytes(text).decode("utf-8")
        except UnicodeDecodeError as error:
            raise XMLParseError(
                f"document is not valid UTF-8: {error.reason} at byte "
                f"{error.start}",
                error.start,
            ) from None
    scanner = _Scanner(text, max_depth=max_depth)
    _skip_prolog(scanner)
    if scanner.peek() != "<":
        raise scanner.error("expected root element")
    root = _parse_element(scanner)
    # Only comments/PIs/whitespace may follow the root.
    while not scanner.at_end():
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if scanner.peek(4) == "<!--":
            scanner.pos += 4
            scanner.scan_until("-->")
        elif scanner.peek(2) == "<?":
            scanner.pos += 2
            scanner.scan_until("?>")
        else:
            raise scanner.error("content after document root")
    return root


def _parse_element(scanner: _Scanner) -> XMLNode:
    """Parse one element starting at ``<name``; returns the subtree."""
    scanner.depth += 1
    if scanner.depth > scanner.max_depth:
        raise scanner.error(
            f"element nesting exceeds the maximum depth "
            f"{scanner.max_depth} (corrupt or hostile input?)"
        )
    try:
        return _parse_element_body(scanner)
    finally:
        scanner.depth -= 1


def _parse_element_body(scanner: _Scanner) -> XMLNode:
    scanner.expect("<")
    name = scanner.scan_name()
    node = XMLNode(name)
    for attr_name, attr_value in _parse_attributes(scanner):
        node.add_child(XMLNode(ATTRIBUTE_PREFIX + attr_name, attr_value))
    scanner.skip_whitespace()
    if scanner.peek(2) == "/>":
        scanner.pos += 2
        return node
    scanner.expect(">")

    text_runs: list[str] = []
    had_elements = bool(node.children)
    while True:
        if scanner.at_end():
            raise scanner.error(f"unterminated element <{name}>")
        if scanner.peek() == "<":
            two = scanner.peek(2)
            if two == "</":
                scanner.pos += 2
                closing = scanner.scan_name()
                if closing != name:
                    raise scanner.error(
                        f"mismatched closing tag </{closing}> for <{name}>"
                    )
                scanner.skip_whitespace()
                scanner.expect(">")
                break
            if scanner.peek(4) == "<!--":
                scanner.pos += 4
                scanner.scan_until("-->")
                continue
            if scanner.peek(9) == "<![CDATA[":
                scanner.pos += 9
                run = scanner.scan_until("]]>")
                if run.strip():
                    _append_text(node, run, had_elements, text_runs)
                continue
            if two == "<?":
                scanner.pos += 2
                scanner.scan_until("?>")
                continue
            # Child element: any pending pure-text state becomes mixed.
            if text_runs and not had_elements:
                # Promote earlier text runs into #text children to keep
                # document order correct.
                for run in text_runs:
                    if run.strip():
                        node.add_child(XMLNode(TEXT_LABEL, run.strip()))
                text_runs.clear()
            had_elements = True
            node.add_child(_parse_element(scanner))
        else:
            raw = scanner.scan_until("<")
            scanner.pos -= 1  # leave '<' for the next iteration
            run = decode_entities(raw)
            if run.strip():
                _append_text(node, run, had_elements, text_runs)

    if text_runs:
        # Element had only text content (no element children).
        node.text = " ".join(run.strip() for run in text_runs if run.strip())
    return node


def _append_text(
    node: XMLNode, run: str, had_elements: bool, text_runs: list[str]
) -> None:
    """Record a text run, wrapping immediately when content is mixed."""
    if had_elements:
        node.add_child(XMLNode(TEXT_LABEL, run.strip()))
    else:
        text_runs.append(run)


def serialize(node: XMLNode, indent: int = 0) -> str:
    """Serialize a subtree back to XML (round-trip / size estimation).

    ``#text`` children are emitted as bare character data and ``@attr``
    children as attributes, inverting the parse-time mapping.
    """
    pad = "  " * indent
    attributes = [
        c for c in node.children if c.label.startswith(ATTRIBUTE_PREFIX)
    ]
    others = [
        c for c in node.children if not c.label.startswith(ATTRIBUTE_PREFIX)
    ]
    attr_text = "".join(
        f' {c.label[1:]}="{encode_text(c.text)}"' for c in attributes
    )
    if not others and not node.text:
        return f"{pad}<{node.label}{attr_text}/>"
    if not others:
        body = encode_text(node.text)
        return f"{pad}<{node.label}{attr_text}>{body}</{node.label}>"
    lines = [f"{pad}<{node.label}{attr_text}>"]
    if node.text:
        lines.append(f"{pad}  {encode_text(node.text)}")
    for child in others:
        if child.label == TEXT_LABEL:
            lines.append(f"{pad}  {encode_text(child.text)}")
        else:
            lines.append(serialize(child, indent + 1))
    lines.append(f"{pad}</{node.label}>")
    return "\n".join(lines)
