"""XML tree substrate: Dewey codes, label paths, nodes, parser, documents.

This package implements the data model of Section III of the paper:
rooted, node-labeled, ordered trees with Dewey-encoded positions and
label-path node types.
"""

from repro.xmltree.builder import build_node, build_tree, paper_example_tree
from repro.xmltree.dewey import (
    DeweyCode,
    common_prefix,
    compare_document_order,
    depth,
    format_code,
    is_ancestor,
    is_ancestor_or_self,
    lca,
    parent,
    parse,
    truncate,
)
from repro.xmltree.document import DocumentStats, XMLDocument
from repro.xmltree.labelpath import (
    LabelPath,
    PathTable,
    format_path,
    parse_path,
)
from repro.xmltree.node import XMLNode
from repro.xmltree.parser import parse_document, serialize

__all__ = [
    "DeweyCode",
    "DocumentStats",
    "LabelPath",
    "PathTable",
    "XMLDocument",
    "XMLNode",
    "build_node",
    "build_tree",
    "common_prefix",
    "compare_document_order",
    "depth",
    "format_code",
    "format_path",
    "is_ancestor",
    "is_ancestor_or_self",
    "lca",
    "paper_example_tree",
    "parent",
    "parse",
    "parse_document",
    "parse_path",
    "serialize",
    "truncate",
]
