"""Dewey codes for XML tree nodes.

A Dewey code identifies a node by the concatenation of sibling ordinals on
the path from the root (Section III of the paper).  We represent codes as
plain ``tuple[int, ...]`` values: tuples are hashable, compact, and their
built-in lexicographic comparison coincides with XML *document order*
(``x ≺ y``), because an ancestor's code is a proper prefix of its
descendants' codes and prefixes sort first.

Two partial orders from the paper are supported:

* ``x ≺ y`` — document order; use plain tuple comparison or
  :func:`compare_document_order`.
* ``x ≺_AD y`` — ancestor/descendant; use :func:`is_ancestor`.

Both are O(d) in the tree depth, matching the paper's complexity claims.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import DeweyError

DeweyCode = tuple[int, ...]

#: Separator used in the textual form ("1.2.3"), as in the paper.
SEPARATOR = "."


def parse(text: str) -> DeweyCode:
    """Parse a textual Dewey code such as ``"1.2.3"`` into a tuple.

    Raises:
        DeweyError: if the string is empty or contains non-positive or
            non-numeric components.
    """
    if not text:
        raise DeweyError("empty Dewey code")
    parts = text.split(SEPARATOR)
    code = []
    for part in parts:
        if not part.isdigit():
            raise DeweyError(f"invalid Dewey component {part!r} in {text!r}")
        value = int(part)
        if value <= 0:
            raise DeweyError(f"Dewey components must be >= 1, got {value}")
        code.append(value)
    return tuple(code)


def format_code(code: DeweyCode) -> str:
    """Render a Dewey tuple in the paper's dotted notation."""
    if not code:
        raise DeweyError("cannot format an empty Dewey code")
    return SEPARATOR.join(str(c) for c in code)


def depth(code: DeweyCode) -> int:
    """Depth of the node; the root (code ``(1,)``) has depth 1."""
    return len(code)


def is_ancestor(ancestor: DeweyCode, descendant: DeweyCode) -> bool:
    """True iff ``ancestor ≺_AD descendant`` (proper ancestor)."""
    return (
        len(ancestor) < len(descendant)
        and descendant[: len(ancestor)] == ancestor
    )


def is_ancestor_or_self(ancestor: DeweyCode, descendant: DeweyCode) -> bool:
    """True iff ``ancestor`` is ``descendant`` or a proper ancestor of it."""
    return (
        len(ancestor) <= len(descendant)
        and descendant[: len(ancestor)] == ancestor
    )


def compare_document_order(left: DeweyCode, right: DeweyCode) -> int:
    """Three-way comparison in document order (-1, 0, or 1).

    Document order on Dewey codes is exactly lexicographic tuple order;
    this helper exists for call sites that want an explicit three-way
    result rather than chained ``<`` checks.
    """
    if left == right:
        return 0
    return -1 if left < right else 1


def truncate(code: DeweyCode, to_depth: int) -> DeweyCode:
    """Prefix of ``code`` at depth ``to_depth`` (Algorithm 1, Line 7).

    Raises:
        DeweyError: if ``to_depth`` is not in ``[1, len(code)]``.
    """
    if to_depth < 1 or to_depth > len(code):
        raise DeweyError(
            f"cannot truncate depth-{len(code)} code to depth {to_depth}"
        )
    return code[:to_depth]


def parent(code: DeweyCode) -> DeweyCode:
    """Dewey code of the parent node.

    Raises:
        DeweyError: when called on the root.
    """
    if len(code) <= 1:
        raise DeweyError("the root node has no parent")
    return code[:-1]


def common_prefix(left: DeweyCode, right: DeweyCode) -> DeweyCode:
    """Longest common prefix of two codes — the Dewey code of their LCA."""
    limit = min(len(left), len(right))
    i = 0
    while i < limit and left[i] == right[i]:
        i += 1
    return left[:i]


def lca(codes: Iterable[DeweyCode]) -> DeweyCode:
    """Lowest common ancestor of a non-empty collection of codes.

    Raises:
        DeweyError: if the collection is empty or the codes do not share
            a root component (i.e. they come from different trees).
    """
    iterator = iter(codes)
    try:
        result = next(iterator)
    except StopIteration:
        raise DeweyError("lca() of an empty collection") from None
    for code in iterator:
        result = common_prefix(result, code)
        if not result:
            raise DeweyError("codes do not share a common root")
    return result
