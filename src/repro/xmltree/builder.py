"""Programmatic construction of XML trees.

Used by tests, examples, and the synthetic dataset generators.  Trees are
described with nested tuples/lists, which keeps fixtures readable::

    tree = build_tree(
        ("dblp", [
            ("article", [
                ("title", "efficient tree pattern matching"),
                ("author", "jane doe"),
            ]),
        ])
    )

A spec node is either ``(label, text)``, ``(label, [children...])`` or
``(label, text, [children...])``.  Bare strings are not allowed at the
top level; text always lives inside a labeled node, matching the model in
Section III where only leaves carry content.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.xmltree.dewey import DeweyCode
from repro.xmltree.node import XMLNode

NodeSpec = Union[
    tuple[str],
    tuple[str, str],
    tuple[str, Sequence["NodeSpec"]],
    tuple[str, str, Sequence["NodeSpec"]],
]


def build_node(spec: NodeSpec) -> XMLNode:
    """Build a detached subtree (no Dewey codes) from a nested spec."""
    if not isinstance(spec, (tuple, list)) or not spec:
        raise ValueError(f"invalid node spec: {spec!r}")
    label = spec[0]
    if not isinstance(label, str) or not label:
        raise ValueError(f"node label must be a non-empty string: {spec!r}")
    node = XMLNode(label)
    rest = spec[1:]
    for part in rest:
        if isinstance(part, str):
            if node.text:
                raise ValueError(f"multiple text parts in spec for {label!r}")
            node.text = part
        elif isinstance(part, (list, tuple)) and (
            not part or isinstance(part[0], (list, tuple))
        ):
            # A sequence of child specs.
            for child_spec in part:
                node.add_child(build_node(child_spec))
        elif isinstance(part, (list, tuple)):
            # A single child spec passed without wrapping.
            node.add_child(build_node(part))
        else:
            raise ValueError(f"invalid spec part {part!r} under {label!r}")
    return node


def build_tree(spec: NodeSpec, root_code: DeweyCode = (1,)) -> XMLNode:
    """Build a subtree from a spec and assign Dewey codes."""
    root = build_node(spec)
    root.assign_deweys(root_code)
    return root


def paper_example_tree() -> XMLNode:
    """The running-example tree of the paper (Figure 2, Examples 2–5).

    The figure itself is not reproducible from the text, so this fixture
    reconstructs a tree consistent with *every* count and Dewey code the
    examples assert:

    * Example 3's counts for candidate "trie icde":
      ``f_trie^{/a/c} = 2``, ``f_trie^{/a/c/x} = 3``,
      ``f_trie^{/a/d} = f_trie^{/a/d/x} = 2``,
      ``f_icde^{/a/c} = f_icde^{/a/c/x} = 1``,
      ``f_icde^{/a/d} = f_icde^{/a/d/x} = 2``;
    * Example 5's trace: the first anchor is 1.2.3.1; after
      ``skip_to(1.2)`` the lists of tree/trees/trie point at
      1.2.2.1 / nil / 1.2.1.1 (so ``trees`` occurs only under 1.1);
      the second anchor is 1.3.2.1; the tokens under 1.2 are
      trie, tree, icde and under 1.3 are icdt, trie, icde;
    * Example 4: the entities of "trie icde" (type /a/d) are 1.3, 1.4.

    Layout (each ``x`` holds its PCDATA as a text child):
    1.1 = b(trees), 1.2 = c(trie, tree, icde), 1.3 = d(icdt, trie, icde),
    1.4 = d(trie, icde), 1.5 = c(trie, trie).
    """

    def x(word: str) -> NodeSpec:
        return ("x", [("t", word)])

    spec = (
        "a",
        [
            ("b", [x("trees")]),
            ("c", [x("trie"), x("tree"), x("icde")]),
            ("d", [x("icdt"), x("trie"), x("icde")]),
            ("d", [x("trie"), x("icde")]),
            ("c", [x("trie"), x("trie")]),
        ],
    )
    return build_tree(spec)
