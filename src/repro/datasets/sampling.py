"""Deterministic sampling helpers for the synthetic generators.

Real text is Zipf-distributed; the generators use :class:`ZipfSampler`
so that token frequencies in the synthetic corpora follow
``P(rank) ∝ 1/rank^s``, which is what makes background-model and idf
statistics behave like they do on the paper's real datasets.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class ZipfSampler:
    """Samples items with Zipfian rank weights, deterministically."""

    def __init__(self, items: Sequence[T], exponent: float = 1.0):
        if not items:
            raise ValueError("cannot sample from an empty pool")
        if exponent < 0:
            raise ValueError("exponent must be >= 0")
        self.items = list(items)
        self.exponent = exponent
        cumulative: list[float] = []
        total = 0.0
        for rank in range(1, len(self.items) + 1):
            total += 1.0 / (rank**exponent)
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> T:
        """One draw; item at rank r has probability ∝ 1/r^exponent."""
        point = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        if index >= len(self.items):
            index = len(self.items) - 1
        return self.items[index]

    def sample_many(self, rng: random.Random, count: int) -> list[T]:
        """``count`` independent draws."""
        return [self.sample(rng) for _ in range(count)]

    def sample_distinct(
        self, rng: random.Random, count: int, max_attempts: int = 1000
    ) -> list[T]:
        """Up to ``count`` distinct draws (fewer if the pool is small)."""
        count = min(count, len(self.items))
        chosen: list[T] = []
        seen: set[int] = set()
        attempts = 0
        while len(chosen) < count and attempts < max_attempts:
            attempts += 1
            item = self.sample(rng)
            marker = id(item) if not isinstance(item, str) else hash(item)
            if marker not in seen:
                seen.add(marker)
                chosen.append(item)
        return chosen
