"""Synthetic Wikipedia/INEX-like corpus (the paper's document-centric set).

Substitutes for the INEX 2008 Wikipedia collection (5.8 GB, 600k files,
52M nodes, depth up to 50, avg 5.58).  Reproduced properties:

* document-centric structure: long text bodies under deeply nested
  sections (articles → body → section → section → … → paragraph);
* a substantially larger vocabulary than the DBLP substitute (the
  paper reports ~6×), driving bigger variant sets and longer inverted
  lists — the cause of INEX's higher query times in Table VI;
* irregular depth: articles nest sections recursively with random
  fan-out, giving a large max depth and a realistic average.

Deterministic under its seed, like every generator in this package.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.sampling import ZipfSampler
from repro.datasets.words import (
    COMMON_WORDS,
    WIKI_TOPICS,
    inflect,
    synthesize_words,
)
from repro.xmltree.document import XMLDocument
from repro.xmltree.node import XMLNode


@dataclass(frozen=True)
class WikiConfig:
    """Scale and shape knobs of the Wikipedia-like generator."""

    articles: int = 300
    seed: int = 7
    extra_vocabulary: int = 4000
    max_section_depth: int = 5
    min_sections: int = 1
    max_sections: int = 4
    min_paragraph_words: int = 15
    max_paragraph_words: int = 50
    zipf_exponent: float = 1.05
    inflection_rate: float = 0.25
    name: str = "wiki-synthetic"

    def __post_init__(self):
        if self.articles < 1:
            raise ValueError("articles must be >= 1")
        if self.max_section_depth < 1:
            raise ValueError("max_section_depth must be >= 1")


@dataclass
class WikiCorpus:
    """The generated document plus its content pools."""

    document: XMLDocument
    topic_vocabulary: tuple[str, ...]
    config: WikiConfig = field(repr=False, default=None)  # type: ignore[assignment]


def generate_wiki(config: WikiConfig | None = None) -> WikiCorpus:
    """Generate an INEX-shaped :class:`XMLDocument` (virtual root)."""
    config = config or WikiConfig()
    rng = random.Random(config.seed)

    pool = list(WIKI_TOPICS) + list(COMMON_WORDS)
    if config.extra_vocabulary:
        pool += synthesize_words(
            config.extra_vocabulary, seed=config.seed + 1
        )
    rng.shuffle(pool)
    text_sampler = ZipfSampler(pool, config.zipf_exponent)
    topic_sampler = ZipfSampler(list(WIKI_TOPICS), 0.7)

    articles = []
    for _ in range(config.articles):
        article = XMLNode("article")
        topic = topic_sampler.sample(rng)
        second = topic_sampler.sample(rng)
        article.add_child(XMLNode("name", f"{topic} {second}"))
        body = article.add_child(XMLNode("body"))
        # Lead paragraph mentioning the topic for coherent queries.
        body.add_child(
            XMLNode(
                "p",
                f"{topic} {second} "
                + _paragraph(rng, text_sampler, config),
            )
        )
        for _ in range(rng.randint(config.min_sections,
                                   config.max_sections)):
            body.add_child(
                _make_section(rng, text_sampler, topic_sampler, config, 1)
            )
        articles.append(article)

    document = XMLDocument.from_trees(articles, name=config.name)
    return WikiCorpus(
        document=document,
        topic_vocabulary=tuple(pool),
        config=config,
    )


def _make_section(
    rng: random.Random,
    text_sampler: ZipfSampler,
    topic_sampler: ZipfSampler,
    config: WikiConfig,
    depth: int,
) -> XMLNode:
    """A section with a title, paragraphs, and possibly subsections."""
    section = XMLNode("section")
    section.add_child(
        XMLNode(
            "title",
            f"{topic_sampler.sample(rng)} {text_sampler.sample(rng)}",
        )
    )
    for _ in range(rng.randint(1, 3)):
        section.add_child(
            XMLNode("p", _paragraph(rng, text_sampler, config))
        )
    if depth < config.max_section_depth and rng.random() < 0.45:
        for _ in range(rng.randint(1, 2)):
            section.add_child(
                _make_section(
                    rng, text_sampler, topic_sampler, config, depth + 1
                )
            )
    return section


def _paragraph(
    rng: random.Random, sampler: ZipfSampler, config: WikiConfig
) -> str:
    length = rng.randint(
        config.min_paragraph_words, config.max_paragraph_words
    )
    words = []
    for _ in range(length):
        word = sampler.sample(rng)
        if rng.random() < config.inflection_rate:
            word = inflect(word, rng)
        words.append(word)
    return " ".join(words)
