"""Common human misspellings for the RULE perturbation (Section VII-A).

The paper perturbs queries with "the list of common misspellings
occurring at the Wikipedia site … also used by the spell checker
Aspell".  :data:`COMMON_MISSPELLINGS` embeds a representative subset of
that public list (misspelling → correction); note several entries are
*far* from their correction in edit distance, which is exactly why the
paper's RULE query sets need ε = 2 variant generation and run slower
(Table VI).

For words not covered by the list, :func:`rule_misspell` applies the
same classes of errors humans make — doubled letters, dropped doubled
letters, transposed neighbours, ei/ie confusion, vowel substitution —
so every query token can be perturbed.
"""

from __future__ import annotations

import random

COMMON_MISSPELLINGS: dict[str, str] = {
    # A representative subset of the Wikipedia common-misspellings list.
    "abberation": "aberration",
    "abilty": "ability",
    "abondoned": "abandoned",
    "accademic": "academic",
    "accesible": "accessible",
    "accomodate": "accommodate",
    "accross": "across",
    "acheive": "achieve",
    "acknowldegement": "acknowledgement",
    "acommodate": "accommodate",
    "acquaintence": "acquaintance",
    "adquire": "acquire",
    "adres": "address",
    "agression": "aggression",
    "alchohol": "alcohol",
    "alege": "allege",
    "algoritm": "algorithm",
    "alot": "allot",
    "amatuer": "amateur",
    "amoung": "among",
    "anual": "annual",
    "apparant": "apparent",
    "appearence": "appearance",
    "arbitary": "arbitrary",
    "archetecture": "architecture",
    "arguement": "argument",
    "assasination": "assassination",
    "atheltic": "athletic",
    "attendence": "attendance",
    "audiance": "audience",
    "availble": "available",
    "basicly": "basically",
    "begining": "beginning",
    "beleive": "believe",
    "belive": "believe",
    "benificial": "beneficial",
    "betwen": "between",
    "bizzare": "bizarre",
    "boundry": "boundary",
    "brillant": "brilliant",
    "buisness": "business",
    "calender": "calendar",
    "camoflage": "camouflage",
    "carribean": "caribbean",
    "catagory": "category",
    "cemetary": "cemetery",
    "changable": "changeable",
    "charachter": "character",
    "childen": "children",
    "cirtain": "certain",
    "comittee": "committee",
    "commerical": "commercial",
    "commitee": "committee",
    "comparision": "comparison",
    "compatability": "compatibility",
    "completly": "completely",
    "concious": "conscious",
    "condidtion": "condition",
    "conection": "connection",
    "consciencious": "conscientious",
    "consistant": "consistent",
    "contempory": "contemporary",
    "continous": "continuous",
    "controled": "controlled",
    "convienient": "convenient",
    "critisism": "criticism",
    "definately": "definitely",
    "desparate": "desperate",
    "diffrent": "different",
    "dilemna": "dilemma",
    "disapear": "disappear",
    "disipline": "discipline",
    "docment": "document",
    "dosent": "doesnt",
    "ecomomic": "economic",
    "eigth": "eight",
    "embarras": "embarrass",
    "enviroment": "environment",
    "equiped": "equipped",
    "excellant": "excellent",
    "exerpt": "excerpt",
    "existance": "existence",
    "experiance": "experience",
    "familar": "familiar",
    "feild": "field",
    "finaly": "finally",
    "foriegn": "foreign",
    "fourty": "forty",
    "freind": "friend",
    "fundemental": "fundamental",
    "goverment": "government",
    "gaurd": "guard",
    "garantee": "guarantee",
    "geat": "great",
    "gerat": "great",
    "harrass": "harass",
    "heigth": "height",
    "heirarchy": "hierarchy",
    "hieght": "height",
    "higway": "highway",
    "humerous": "humorous",
    "hystory": "history",
    "immediatly": "immediately",
    "independant": "independent",
    "infomation": "information",
    "innoculate": "inoculate",
    "inteligence": "intelligence",
    "intrest": "interest",
    "intergrated": "integrated",
    "knowlege": "knowledge",
    "labratory": "laboratory",
    "langauge": "language",
    "liason": "liaison",
    "libary": "library",
    "lisence": "license",
    "litrature": "literature",
    "maintainance": "maintenance",
    "managment": "management",
    "manuever": "maneuver",
    "medcine": "medicine",
    "milennium": "millennium",
    "miniture": "miniature",
    "mischievious": "mischievous",
    "mispell": "misspell",
    "mountian": "mountain",
    "neccessary": "necessary",
    "neice": "niece",
    "nieghbor": "neighbor",
    "noticable": "noticeable",
    "occassion": "occasion",
    "occurence": "occurrence",
    "offical": "official",
    "oppurtunity": "opportunity",
    "orignal": "original",
    "paralel": "parallel",
    "parliment": "parliament",
    "particurly": "particularly",
    "peice": "piece",
    "percieve": "perceive",
    "performence": "performance",
    "perminent": "permanent",
    "persistant": "persistent",
    "personel": "personnel",
    "posession": "possession",
    "potatos": "potatoes",
    "practicle": "practical",
    "preceed": "precede",
    "prefered": "preferred",
    "presance": "presence",
    "privelege": "privilege",
    "probaly": "probably",
    "proffesor": "professor",
    "promiss": "promise",
    "pronounciation": "pronunciation",
    "prufe": "proof",
    "psycology": "psychology",
    "publically": "publicly",
    "quantitiy": "quantity",
    "questionaire": "questionnaire",
    "recieve": "receive",
    "recomend": "recommend",
    "refered": "referred",
    "rela": "real",
    "relevent": "relevant",
    "religous": "religious",
    "repitition": "repetition",
    "resistence": "resistance",
    "responce": "response",
    "restarant": "restaurant",
    "rythm": "rhythm",
    "saftey": "safety",
    "sandwitch": "sandwich",
    "scedule": "schedule",
    "seach": "search",
    "seperate": "separate",
    "sieze": "seize",
    "similiar": "similar",
    "sincerly": "sincerely",
    "speach": "speech",
    "stategy": "strategy",
    "stregth": "strength",
    "succesful": "successful",
    "supercede": "supersede",
    "suprise": "surprise",
    "tecnology": "technology",
    "temperture": "temperature",
    "tendancy": "tendency",
    "therefor": "therefore",
    "threshhold": "threshold",
    "tommorow": "tomorrow",
    "tounge": "tongue",
    "transfered": "transferred",
    "truely": "truly",
    "twelth": "twelfth",
    "tyrany": "tyranny",
    "underate": "underrate",
    "untill": "until",
    "unuseual": "unusual",
    "vaccuum": "vacuum",
    "vegatarian": "vegetarian",
    "vehical": "vehicle",
    "verfication": "verification",
    "visable": "visible",
    "volcanoe": "volcano",
    "wether": "whether",
    "wich": "which",
    "wierd": "weird",
    "wonderfull": "wonderful",
    "writting": "writing",
    "yeild": "yield",
}


def reverse_map() -> dict[str, list[str]]:
    """correction → [misspellings] (for perturbing clean queries)."""
    reverse: dict[str, list[str]] = {}
    for wrong, right in COMMON_MISSPELLINGS.items():
        reverse.setdefault(right, []).append(wrong)
    for misspellings in reverse.values():
        misspellings.sort()
    return reverse


_VOWELS = "aeiou"


def rule_misspell(word: str, rng: random.Random) -> str:
    """One human-style misspelling of ``word`` (rule-based fallback).

    Applies a randomly chosen rule from the error classes the Wikipedia
    list exhibits.  The result may coincidentally be a real word; the
    caller (the RULE workload generator) re-rolls when the result is
    still in the corpus vocabulary.
    """
    rules = [
        _double_letter,
        _drop_double,
        _transpose,
        _swap_ei,
        _vowel_substitution,
        _drop_letter,
    ]
    order = list(rules)
    rng.shuffle(order)
    for rule in order:
        result = rule(word, rng)
        if result is not None and result != word:
            return result
    return word + word[-1]  # last resort: trailing double letter


def _double_letter(word: str, rng: random.Random) -> str | None:
    position = rng.randrange(len(word))
    return word[: position + 1] + word[position] + word[position + 1 :]


def _drop_double(word: str, rng: random.Random) -> str | None:
    doubles = [
        i for i in range(len(word) - 1) if word[i] == word[i + 1]
    ]
    if not doubles:
        return None
    position = rng.choice(doubles)
    return word[:position] + word[position + 1 :]


def _transpose(word: str, rng: random.Random) -> str | None:
    if len(word) < 4:
        return None
    position = rng.randrange(1, len(word) - 1)
    if word[position] == word[position + 1]:
        return None
    return (
        word[:position]
        + word[position + 1]
        + word[position]
        + word[position + 2 :]
    )


def _swap_ei(word: str, rng: random.Random) -> str | None:
    if "ei" in word:
        return word.replace("ei", "ie", 1)
    if "ie" in word:
        return word.replace("ie", "ei", 1)
    return None


def _vowel_substitution(word: str, rng: random.Random) -> str | None:
    positions = [i for i, ch in enumerate(word) if ch in _VOWELS]
    if not positions:
        return None
    position = rng.choice(positions)
    replacement = rng.choice(
        [v for v in _VOWELS if v != word[position]]
    )
    return word[:position] + replacement + word[position + 1 :]


def _drop_letter(word: str, rng: random.Random) -> str | None:
    if len(word) < 5:
        return None
    position = rng.randrange(1, len(word) - 1)
    return word[:position] + word[position + 1 :]
