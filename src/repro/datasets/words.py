"""Embedded word pools for the synthetic corpora.

The paper's datasets (DBLP, INEX Wikipedia) are unavailable offline, so
the generators in this package synthesize XML with the same *shape*.
The token distributions come from these pools:

* :data:`COMMON_WORDS` — everyday English content words;
* :data:`CS_TERMS` — database/CS vocabulary for DBLP-like titles;
* :data:`FIRST_NAMES` / :data:`LAST_NAMES` — author names;
* :data:`VENUES` — conference/journal tokens;
* :data:`WIKI_TOPICS` — encyclopedia subject nouns;
* :func:`synthesize_words` — deterministic pseudo-words to scale the
  vocabulary up (INEX's vocabulary is ~6× DBLP's; pseudo-words let the
  generators reproduce that ratio without shipping a dictionary).

All pools contain only tokens the default tokenizer accepts (lowercase,
length >= 3, no digits-only, no stop words).
"""

from __future__ import annotations

import random

from repro.index.tokenizer import DEFAULT_STOPWORDS


def _pool(text: str) -> tuple[str, ...]:
    """Split, deduplicate, and freeze a whitespace-separated pool.

    Stop words and too-short tokens are dropped so that every pool
    member survives the default tokenizer unchanged.
    """
    seen: dict[str, None] = {}
    for word in text.split():
        if len(word) < 3 or word in DEFAULT_STOPWORDS:
            continue
        seen.setdefault(word)
    return tuple(seen)


COMMON_WORDS = _pool(
    """
    ability account action active actual address advance advantage
    adventure afternoon agreement airport amount analysis ancient angle
    animal answer apple approach architect area argument arrival article
    artist aspect assembly atmosphere attempt attention audience author
    autumn average balance barrier basin battle beach bearing beauty
    bedroom believe benefit bicycle billion biology birthday bitter
    blanket border bottle bottom boundary branch breakfast bridge brief
    bright broad brother budget building business button cabinet camera
    campaign candle capital captain carbon career careful carriage
    castle category cattle causes ceiling center central century
    ceremony chain chamber chance change channel chapter character
    charge charity chicken chief childhood choice church circle citizen
    claim classic climate clothing cloud coast coffee collection college
    colony column comfort command comment commerce committee common
    community company compare complete complex concept concert
    conclusion condition conduct conference confidence conflict congress
    connection consider constant contact content contest context
    continent contract contrast control convention copper corner
    correct cottage cotton council country courage course cousin
    cover creature credit cricket crisis critic crops crowd crown
    culture current curtain custom damage danger daughter debate decade
    decision defense degree delivery demand department deposit desert
    design desire detail device dialect diamond dinner direction
    discovery disease distance district division doctor document dollar
    domain double dozen dragon drama drawing dream drink driver
    duty eagle early earth east economy edge education effect effort
    eight election electric element elephant emotion empire energy
    engine entrance equal escape estate evening event evidence exact
    example exchange exercise expert express extent fabric factor
    factory familiar family famous farmer fashion father feature
    festival fiction field fifty fight figure final finance finger
    fishing flight flower forest formal fortune forward foundation
    fountain fourth fraction freedom fresh friend front fruit function
    future garden gather general gentle glass globe golden
    government grain grand grant great green ground group growth guard
    guest guide habit handle happen harbor hardly harvest health heart
    heavy height hidden high hill history holiday hollow honest honor
    horizon horse hospital hotel hour house human hundred hunger
    hunting husband ice idea image impact import income increase
    indeed industry initial injury inner insect inside instance
    institute insurance intention interest interior internal island
    issue italian journal journey judge judgment junction jungle
    justice kettle keyboard kingdom kitchen knight knowledge labor
    ladder lake language large laughter launch leader league leather
    lecture legal legend length lesson letter level liberty library
    light limit liquid listen literature little living local
    location lonely longer lounge lower loyal lucky luggage lumber
    machine magazine magic main major manner marble margin marine
    market marriage master material matter meadow meaning measure
    medal medical medicine meeting member memory mental message metal
    meter method middle might military million mineral minister minor
    minute mirror mission mister mixture model modern moment money
    monkey month monument moral morning mother motion motor mountain
    mouth movement muscle museum music mystery narrow nation native
    nature nearby nearly needle neighbor nephew nerve network news
    night noble normal north notable notice notion novel number
    object observe obtain occasion ocean offer office officer often
    olive opening opera opinion orange orchard order ordinary organ
    origin outcome output outside oxygen package palace paper parade
    parent parish particle partner party passage passenger passion
    pattern payment peace pencil people pepper percent perfect
    performance period person phrase physical piano picture pilot
    pioneer pitch place plain planet plant plastic plate platform
    pleasure plenty pocket poem poet point poison policy polish
    politics pollution popular population portion position positive
    possible poverty powder power practice prayer precious premise
    presence present pressure price pride priest primary prince
    princess principle printing prison private prize problem process
    produce product profession professor profile profit program
    progress project promise proof proper property proposal prospect
    protection protein proud province public purchase purple purpose
    quality quarter queen question quick quiet rabbit radio railway
    rainbow random range rapid rather ratio reach reaction reader
    reality reason recent record reform refuge region register regular
    relation release relief religion remark remote rental repair
    report republic request rescue research reserve resident resource
    respect response result return revenue review reward rhythm rice
    rich ridge right river road rock role roman roof room root
    rough round route royal rubber rural sacred saddle safety sailor
    salad salary salt sample sand scale scene schedule scheme scholar
    school science scope score screen script sculpture search season
    second secret section sector security seed senate senior sense
    sentence series serious servant service session settle seven
    shadow shallow shape share sharp sheep sheet shelf shell shelter
    shield shift shine ship shirt shock shoe shop shore short shoulder
    shower side sight signal silence silent silk silver similar simple
    singer single sister skill skin sky sleep slight slope small
    smart smile smoke smooth social society soil soldier solid
    solution someone south space speaker special species speech speed
    spelling spend spirit splendid sport spread spring square stable
    stadium staff stage stair stamp standard station statue status
    steam steel stem step stick still stock stomach stone storage
    store storm story straight strange stream street strength stretch
    strike string strong structure student studio study subject
    substance suburb success sudden sugar summer sunday sunset supper
    supply support surface surgeon surprise survey sweet swing symbol
    system table talent target task taste teacher team temple tennis
    term terrace territory textile theater theme theory thing thirty
    thousand thread throat throne thunder ticket tiger timber tissue
    title tobacco today tomorrow tongue tonight tool tooth topic total
    touch tourist tower town trade tradition traffic train transfer
    transport travel treasure treaty trial tribe trick trouble truck
    trust truth tunnel turtle twelve twenty type uncle uniform union
    unique unit universe update upper urban useful usual valley value
    variety vehicle venture version vessel victory village violin
    virtue vision visit visitor voice volume voyage wagon waiter
    wander warm warning water wave wealth weapon weather wedding week
    weight welcome west wheat wheel while white wide wild will window
    winter wisdom wise wish woman wonder wood wool word work world
    worry worth wound writer yard year yellow young youth
    """
)

CS_TERMS = _pool(
    """
    abstraction access adaptive aggregation algebra algorithm
    allocation analytics annotation anomaly approximate architecture
    archive array assertion asynchronous atomic attribute
    authentication automata automation availability bandwidth batch
    bayesian benchmark binary bitmap boolean broadcast browser buffer
    cache calculus cardinality certificate checkpoint classification
    classifier client cluster clustering codebase collision
    compilation compiler completeness complexity component compression
    computation computing concurrency concurrent configuration
    consensus consistency constraint container convergence correctness
    coverage crawler cryptography cursor database dataflow datalog
    dataset debugging decomposition deduction deep deletion dependency
    deployment descriptor deterministic diagnosis dictionary
    dimension directory discovery disjoint distributed distribution
    encoding encryption engine entity entropy enumeration
    equivalence estimation evaluation execution expansion experiment
    expression extraction failure fault feature federated feedback
    filter filtering firmware formal fragment framework frequency
    functional garbage gateway generation generator generic gradient
    grammar granularity graph graphics hardware hashing heuristic
    hierarchy histogram identifier implementation index indexing
    inference information inheritance insertion instruction integer
    integration integrity interactive interface interpreter interval
    invariant inverted isolation iteration iterator join kernel
    keyword labeling lattice layout learning lexical lineage linear
    linkage locality locking logic lookup machine maintenance mapping
    matching matrix membership memory merge metadata middleware
    migration mining mobile modeling modular module monitor
    monitoring multicast multimedia namespace navigation nested
    neural node normalization notation object obfuscation ontology
    operator optimization optimizer ordering overhead overlay packet
    padding pagination parallel parameter parsing partition
    partitioning pattern performance permission persistence pipeline
    pivot pointer polynomial portability precision predicate
    prediction prefetch prefix preprocessing privacy probabilistic
    probability procedure processing processor profiling programming
    projection propagation protocol prototype provenance proximity
    pruning quadratic quantifier query queue ranking recall
    recognition recovery recursion recursive redundancy refinement
    regression relational relevance reliability rendering replication
    repository representation resolution retrieval robust routing
    runtime sampling scalability scalable scanner scheduler schema
    scripting segment segmentation selection selectivity semantic
    semantics sensor sequence serialization server session sharding
    signature simulation skyline software sorting sparse
    specification spectrum spelling stack statistics storage
    streaming subgraph subquery subsequence subtree suffix suggestion
    summarization supervised synchronization syntax synthesis
    template temporal tensor terabyte testing threading threshold
    throughput token tokenization topology tracing tracking
    training transaction transducer transformation traversal
    tree trie trigger tuning tuple twig unification unsupervised
    validation variance vector verification versioning
    virtualization visualization vocabulary warehouse wavelet
    web wildcard workflow workload wrapper xml xpath xquery
    """
)

FIRST_NAMES = _pool(
    """
    adam albert alice amanda andre andrew angela anna anthony antonio
    barbara benjamin bernard brian bruce carlos carmen carol carolyn
    catherine charles chen christian christine claire claudia daniel
    david deborah dennis diana diego dmitri donald dorothy edward
    elena elizabeth emily emma eric ernest eugene felix fernando
    frances francis frank gabriel george gerald gloria gordon grace
    gregory guillermo hannah harold harry hector helen henry hiroshi
    howard irene isaac isabel ivan jack jacob james jane janet jason
    jean jeffrey jennifer jerome joan johan john jonathan jorge jose
    joseph joshua juan judith julia julian karen katherine keith
    kenneth kevin kumar larry laura lawrence leonard linda lisa louis
    lucas manuel margaret maria marie mario mark martin mary matthew
    maurice michael michel miguel ming nancy nathan nicholas nicolas
    norman oliver oscar pablo pamela patricia patrick paul pedro peter
    philip pierre rachel ralph raymond rebecca ricardo richard robert
    roberto roger ronald rosa russell ruth ryan samuel sandra sarah
    scott sergei sharon simon stanley stephen steven susan takeshi
    teresa thomas timothy victor victoria vincent virginia walter
    wang wayne wei william xavier yuki yusuf zhang
    """
)

LAST_NAMES = _pool(
    """
    abadi adams aggarwal agrawal ahmed allen anderson andersson
    armstrong arnold bailey baker baldwin barnes bauer becker bell
    bennett berger bernstein black blake boyd bradley brooks brown
    bruno bryant burke burns butler campbell carey carlson carter
    chang chapman chaudhuri chavez chen cheng clark cohen cole
    collins cooper cruz cunningham curtis davidson davis dean dewitt
    diaz dixon dominguez douglas doyle duncan edwards elliott ellis
    evans ferguson fernandez fischer fisher fleming fletcher flores
    foster fowler franklin fraser freeman fuentes fujita garcia
    gardner garrett gibson gilbert glass gonzalez goodman gordon
    graham grant gray green greene griffin gross gupta gustafsson
    haas hall hamilton hansen hanson harper harris harrison hart
    hayes henderson hernandez hicks hoffman holland holmes howard
    hughes hunt hunter ibrahim ingram ivanov jackson jacobs jacobsen
    jain james jensen johansson johnson jones jordan kaplan kaufman
    keller kelly kennedy khan kim klein knight kowalski kramer
    krishnan kumar lambert lane larsen larson lawrence lawson lee
    lehman leonard levine lewis lindgren little liu lloyd logan
    lopez lowe lucas lynch madsen malik mann manning marsh marshall
    martin martinez mason matsumoto maxwell mccarthy mcdonald meyer
    miller mills mitchell mohan montgomery moore morales moreno
    morgan morris morrison mueller murphy murray myers nakamura
    naughton nelson newman newton nguyen nichols nielsen nilsson
    novak obrien olson ortiz osborne owen palmer papadimitriou park
    parker patel patterson payne pearson pedersen perez perkins
    perry person peters peterson phillips pierce porter powell
    price quinn ramirez ramakrishnan randall reed reeves reyes
    reynolds rice richards richardson riley rivera roberts robertson
    robinson rodriguez rogers romano rose ross rossi roth rousseau
    rowe russell ryan salazar sanchez sanders santos sato schmidt
    schneider schulz schwartz scott sharma shaw shen silva simmons
    simon simpson singh sloan smith snyder soto spencer stein
    stevens stewart stone stoica suzuki svensson tanaka taylor
    thomas thompson torres tran tucker turner ullman underwood
    vance vargas vasquez vogel wagner walker wallace walsh wang
    ward warren watanabe watson weaver webb weber welch wells west
    wheeler white widom wilson wolf wong wood woods wright yamamoto
    yang young zhang zhao zhou zimmermann
    """
)

VENUES = _pool(
    """
    icde vldb sigmod kdd sigir cikm edbt icdt pods wsdm www
    neurips icml aaai ijcai acl emnlp naacl cvpr iccv eccv
    sosp osdi nsdi atc eurosys fast hotos podc disc spaa
    stoc focs soda icalp esa isaac wads swat
    """
)

WIKI_TOPICS = _pool(
    """
    agriculture airline albania algeria alphabet aluminium amazon
    amphitheater anatomy andes antarctica apollo aqueduct arabia
    archaeology archipelago arctic argentina aristotle arithmetic
    armada asteroid astronomy atlantic atlas australia austria
    avalanche aviation babylon bacteria balkans ballet baltic bamboo
    baroque basalt basketball bavaria beethoven belgium bengal berlin
    bermuda bicycle biodiversity biography biosphere bohemia bolivia
    botany brazil brewery britain bronze brussels buddhism bulgaria
    byzantine cairo calcium calendar california cambridge camel
    canada canal caribbean carnival carpathian cartography cathedral
    catholic caucasus cavalry celtic ceramic cereal chemistry chile
    china chlorine cholera christianity chromosome cinema citadel
    civilization climate colombia colonial columbus comet commerce
    communism compass composer confederation congo conifer
    constellation constitution continental copenhagen coral cordillera
    cossack cretaceous crimea croatia crusade crystal cuba cyclone
    cyprus czech danube darwin delta democracy denmark dialect
    dinosaur diplomacy dolphin dynasty earthquake eclipse ecology
    ecuador egypt einstein electron elevation emperor encyclopedia
    england epidemic equator erosion estonia ethiopia etymology
    eucalyptus europe evolution excavation expedition explorer famine
    fauna federation fiji finland fjord flanders flora florence
    folklore football fortress fossil france frankfurt frontier
    galaxy galileo ganges gazette genetics geneva genome geography
    geology geometry georgia germany geyser glacier gospel gothic
    granite gravity greece greenland grenada guatemala guinea gulf
    hamburg hanover hawaii hebrew helsinki hemisphere heritage
    himalaya hinduism holland hungary hurricane hydrogen iberia
    iceland immigration incas india indonesia infantry inscription
    iran iraq ireland irrigation islam israel istanbul italy jamaica
    japan jerusalem judaism jupiter jurassic kenya kingdom korea
    kremlin lagoon latin latitude latvia lebanon legislature
    leningrad lexicon liberia lighthouse limestone lithuania
    liverpool locomotive london longitude lutheran luxembourg
    macedonia madagascar madrid magnesium malaria malaysia mammal
    manchester mandarin manifesto manuscript maritime mars marsupial
    mathematics mediterranean melbourne meridian mesopotamia meteor
    mexico microscope migration milan minerals mongolia monsoon
    montreal morocco moscow mosque mozart munich municipality
    napoleon nebula netherlands neutron newton nigeria nitrogen
    nomad nordic norway nucleus oasis observatory oceania
    octopus olympic omaha ontario opera orbit orchestra oregon
    ottoman oxford pacific pakistan panama pangaea papyrus paraguay
    parliament parthenon pasture patagonia pendulum peninsula persia
    peru pharaoh philippines philosophy phoenicia photosynthesis
    physics pilgrim plateau platinum plato pluto poland polymer
    polynesia pompeii portugal potassium prague prairie precipitation
    prehistoric propaganda prussia pyramid quebec radiation
    rainforest reformation refugee renaissance reptile reservoir
    revolution rhine romania rome rotterdam russia sahara
    salamander samurai sanctuary sanskrit sardinia satellite saturn
    saxony scandinavia scotland sculpture senegal serbia shanghai
    siberia sicily singapore slavic slovakia slovenia sodium
    somalia sonata spain sparta spectrum sphinx spice squadron
    stockholm strait stratosphere sudan sumatra sweden switzerland
    sydney symphony syria taiwan tanzania tectonic telescope
    temperate thailand thames tibet tornado toronto treaty
    trinidad tropics tsunami tundra tunisia turkey typhoon ukraine
    uranium uruguay vatican venezuela venice vertebrate vienna
    vietnam viking volcano wales warsaw waterfall waterloo
    westminster wilderness wildlife yugoslavia zealand zimbabwe
    zoology zurich
    """
)

#: Syllables used by :func:`synthesize_words`; chosen to produce
#: pronounceable, realistically distributed pseudo-words.
_ONSETS = (
    "b c d f g h j k l m n p r s t v w z br cl cr dr fl fr gl gr pl pr "
    "sc sl sm sn sp st tr th sh ch"
).split()
_NUCLEI = "a e i o u ai ea ee ia io oa ou".split()
_CODAS = (
    " b d g k l m n p r s t x z ck ld lk nd ng nk nt rd rk rn rt st"
).split() + [""]


#: Inflection suffixes used by :func:`inflect`.
_INFLECTION_SUFFIXES = ("s", "es", "ed", "ing", "er")


def inflect(word: str, rng: random.Random) -> str:
    """A morphological variant of ``word`` (plural, past, gerund, agent).

    Real corpora are full of inflected forms ("cluster, clusters,
    clustering, clustered"), each rarer than its stem.  These
    rare-but-close tokens are precisely what triggers PY08's rare-token
    bias (Section II) and what blows up the candidate space on the
    paper's real datasets — the synthetic corpora must have them too.
    """
    suffix = rng.choice(_INFLECTION_SUFFIXES)
    if word.endswith("e"):
        if suffix == "ing":
            return word[:-1] + suffix
        if suffix in ("es", "ed", "er"):
            return word + suffix[1:]
    return word + suffix


def synthesize_words(
    count: int, seed: int = 0, min_syllables: int = 2, max_syllables: int = 4
) -> list[str]:
    """Deterministically generate ``count`` distinct pseudo-words.

    Used to scale a corpus vocabulary beyond the curated pools (the
    INEX substitute needs a much larger vocabulary than DBLP's to
    reproduce the paper's variant-set and timing behaviour).
    """
    rng = random.Random(seed)
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < count:
        syllables = rng.randint(min_syllables, max_syllables)
        parts = []
        for _ in range(syllables):
            parts.append(rng.choice(_ONSETS))
            parts.append(rng.choice(_NUCLEI))
        parts.append(rng.choice(_CODAS).strip())
        word = "".join(parts)
        if len(word) >= 3 and word not in seen:
            seen.add(word)
            words.append(word)
    return words
