"""Synthetic datasets and query workloads (Section VII-A substitutes)."""

from repro.datasets.misspellings import (
    COMMON_MISSPELLINGS,
    reverse_map,
    rule_misspell,
)
from repro.datasets.queries import (
    MIN_PERTURBED_LENGTH,
    PERTURBATION_KINDS,
    QueryRecord,
    build_query_workloads,
    rand_perturb_query,
    rand_perturb_word,
    rule_perturb_query,
    rule_perturb_word,
    sample_clean_queries,
)
from repro.datasets.sampling import ZipfSampler
from repro.datasets.synthetic_dblp import (
    DBLPConfig,
    DBLPCorpus,
    generate_dblp,
)
from repro.datasets.synthetic_wiki import (
    WikiConfig,
    WikiCorpus,
    generate_wiki,
)
from repro.datasets.words import (
    COMMON_WORDS,
    CS_TERMS,
    FIRST_NAMES,
    LAST_NAMES,
    VENUES,
    WIKI_TOPICS,
    synthesize_words,
)

__all__ = [
    "COMMON_MISSPELLINGS",
    "COMMON_WORDS",
    "CS_TERMS",
    "DBLPConfig",
    "DBLPCorpus",
    "FIRST_NAMES",
    "LAST_NAMES",
    "MIN_PERTURBED_LENGTH",
    "PERTURBATION_KINDS",
    "QueryRecord",
    "VENUES",
    "WIKI_TOPICS",
    "WikiConfig",
    "WikiCorpus",
    "ZipfSampler",
    "build_query_workloads",
    "generate_dblp",
    "generate_wiki",
    "rand_perturb_query",
    "rand_perturb_word",
    "reverse_map",
    "rule_misspell",
    "rule_perturb_query",
    "rule_perturb_word",
    "sample_clean_queries",
    "synthesize_words",
]
