"""Query workload generation: CLEAN / RAND / RULE sets (Section VII-A).

The paper's three-step procedure, automated:

1. *Initial (clean) queries* are sampled from entity subtrees of the
   corpus, so every clean query is guaranteed to have results — the
   same property the INEX topics and the hand-picked ACM-Fellow
   queries had on the real datasets.

2. *RAND* perturbation applies random edit operations to each keyword,
   with the paper's two safeguards: the perturbed token must not fall
   back into the vocabulary, and very short tokens (length <= 4) are
   left untouched.

3. *RULE* perturbation replaces each token with a common human
   misspelling: first from the embedded Wikipedia misspelling list,
   else from the rule-based misspelling generator — again rejecting
   results that land in the vocabulary.

Ground truth: the initial query (the paper's assessors started from it;
using it directly is the standard automatic protocol and never *over*
credits a system).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from repro.datasets.misspellings import reverse_map, rule_misspell
from repro.index.corpus import CorpusIndex
from repro.index.tokenizer import Tokenizer
from repro.index.vocabulary import Vocabulary
from repro.xmltree.document import XMLDocument

#: Tokens at or below this length are never perturbed (Section VII-A:
#: "we do not introduce random edit operations to very short tokens").
MIN_PERTURBED_LENGTH = 5

PERTURBATION_KINDS = ("CLEAN", "RAND", "RULE")


@dataclass(frozen=True)
class QueryRecord:
    """One evaluation query: the dirty form plus its golden answers."""

    dirty: tuple[str, ...]
    golden: tuple[tuple[str, ...], ...]
    kind: str

    @property
    def dirty_text(self) -> str:
        return " ".join(self.dirty)

    @property
    def golden_texts(self) -> tuple[str, ...]:
        return tuple(" ".join(g) for g in self.golden)


def sample_clean_queries(
    document: XMLDocument,
    tokenizer: Tokenizer,
    count: int,
    rng: random.Random,
    min_words: int = 2,
    max_words: int = 3,
    min_token_length: int = MIN_PERTURBED_LENGTH,
    style: str = "generic",
) -> list[tuple[str, ...]]:
    """Clean queries whose keywords co-occur in one top-level entity.

    Entities are the children of the document root (publications for
    the DBLP substitute, articles for the Wikipedia one), which makes
    every sampled query answerable — exactly the property the paper's
    initial query sets had.

    ``style="dblp"`` follows the paper's DBLP-QUERY protocol: one
    author last name plus keywords from the publication content
    ("rose architecture fpga").  ``style="generic"`` samples keywords
    from anywhere in the entity (the INEX topics were free-form).
    """
    entities = document.root.children
    if not entities:
        return []
    queries: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    attempts = 0
    max_attempts = count * 60
    while len(queries) < count and attempts < max_attempts:
        attempts += 1
        entity = rng.choice(entities)
        if style == "dblp":
            query = _sample_dblp_style(
                entity, tokenizer, rng, min_words, max_words,
                min_token_length,
            )
        else:
            query = _sample_generic(
                entity, tokenizer, rng, min_words, max_words,
                min_token_length,
            )
        if query is None or query in seen:
            continue
        seen.add(query)
        queries.append(query)
    return queries


def _sample_generic(
    entity,
    tokenizer: Tokenizer,
    rng: random.Random,
    min_words: int,
    max_words: int,
    min_token_length: int,
) -> tuple[str, ...] | None:
    tokens = _distinct_long_tokens(
        entity.subtree_text(), tokenizer, min_token_length
    )
    if len(tokens) < min_words:
        return None
    width = rng.randint(min_words, min(max_words, len(tokens)))
    return tuple(rng.sample(tokens, width))


def _sample_dblp_style(
    entity,
    tokenizer: Tokenizer,
    rng: random.Random,
    min_words: int,
    max_words: int,
    min_token_length: int,
) -> tuple[str, ...] | None:
    """Paper protocol: author last name + content keywords."""
    names: list[str] = []
    content: list[str] = []
    for child in entity.children:
        tokens = _distinct_long_tokens(
            child.subtree_text(), tokenizer, min_token_length
        )
        if child.label == "author":
            names.extend(tokens[-1:])  # last name
        elif child.label in ("title", "booktitle", "journal"):
            content.extend(tokens)
    if not names or len(content) < max(1, min_words - 1):
        return None
    topic_count = rng.randint(
        max(1, min_words - 1), max(1, min(max_words - 1, len(content)))
    )
    return (rng.choice(names), *rng.sample(content, topic_count))


def _distinct_long_tokens(
    text: str, tokenizer: Tokenizer, min_length: int
) -> list[str]:
    seen: dict[str, None] = {}
    for token in tokenizer.iter_tokens(text):
        if len(token) >= min_length:
            seen.setdefault(token)
    return list(seen)


# ----------------------------------------------------------------------
# RAND perturbation
# ----------------------------------------------------------------------

def rand_perturb_word(
    word: str,
    vocabulary: Vocabulary,
    rng: random.Random,
    edits: int = 1,
    max_attempts: int = 60,
) -> str:
    """Apply ``edits`` random edit operations, avoiding the vocabulary.

    Returns the word unchanged when it is too short or no valid
    perturbation is found (rare for realistic vocabularies).
    """
    if len(word) <= MIN_PERTURBED_LENGTH - 1:
        return word
    for _ in range(max_attempts):
        candidate = word
        for _ in range(edits):
            candidate = _random_edit(candidate, rng)
        if (
            candidate != word
            and len(candidate) >= 3
            and candidate not in vocabulary
        ):
            return candidate
    return word


def _random_edit(word: str, rng: random.Random) -> str:
    operation = rng.randrange(3)
    letter = rng.choice(string.ascii_lowercase)
    if operation == 0 and len(word) > 3:  # deletion
        position = rng.randrange(len(word))
        return word[:position] + word[position + 1 :]
    if operation == 1:  # insertion
        position = rng.randrange(len(word) + 1)
        return word[:position] + letter + word[position:]
    position = rng.randrange(len(word))  # substitution
    if word[position] == letter:
        letter = "z" if letter != "z" else "q"
    return word[:position] + letter + word[position + 1 :]


def rand_perturb_query(
    query: tuple[str, ...],
    vocabulary: Vocabulary,
    rng: random.Random,
    edits: int = 1,
) -> tuple[str, ...]:
    """RAND: perturb every (long-enough) keyword of the query."""
    return tuple(
        rand_perturb_word(word, vocabulary, rng, edits) for word in query
    )


# ----------------------------------------------------------------------
# RULE perturbation
# ----------------------------------------------------------------------

def rule_perturb_word(
    word: str,
    vocabulary: Vocabulary,
    rng: random.Random,
    known_misspellings: dict[str, list[str]] | None = None,
    max_attempts: int = 30,
) -> str:
    """Replace a word with a common human misspelling.

    Prefers the embedded Wikipedia-list misspellings; falls back to
    rule-generated ones.  Rejects results that are vocabulary members
    (they would be a different clean query, not a typo).
    """
    if len(word) <= MIN_PERTURBED_LENGTH - 1:
        return word
    table = (
        known_misspellings if known_misspellings is not None
        else reverse_map()
    )
    listed = table.get(word, [])
    candidates = [m for m in listed if m not in vocabulary]
    if candidates:
        return rng.choice(candidates)
    for _ in range(max_attempts):
        candidate = rule_misspell(word, rng)
        if (
            candidate != word
            and len(candidate) >= 3
            and candidate not in vocabulary
        ):
            return candidate
    return word


def rule_perturb_query(
    query: tuple[str, ...],
    vocabulary: Vocabulary,
    rng: random.Random,
    known_misspellings: dict[str, list[str]] | None = None,
) -> tuple[str, ...]:
    """RULE: replace every (long-enough) keyword with a misspelling."""
    table = (
        known_misspellings if known_misspellings is not None
        else reverse_map()
    )
    return tuple(
        rule_perturb_word(word, vocabulary, rng, table) for word in query
    )


# ----------------------------------------------------------------------
# Workload assembly
# ----------------------------------------------------------------------

def build_query_workloads(
    corpus: CorpusIndex,
    document: XMLDocument,
    count: int = 50,
    seed: int = 1234,
    min_words: int = 2,
    max_words: int = 3,
    style: str = "generic",
) -> dict[str, list[QueryRecord]]:
    """The six-way workload of Section VII-A for one dataset.

    Returns ``{"CLEAN": [...], "RAND": [...], "RULE": [...]}`` — the
    dataset prefix (DBLP-/INEX-) is the caller's concern.
    """
    rng = random.Random(seed)
    clean = sample_clean_queries(
        document,
        corpus.tokenizer,
        count,
        rng,
        min_words=min_words,
        max_words=max_words,
        style=style,
    )
    vocabulary = corpus.vocabulary
    known = reverse_map()

    workloads: dict[str, list[QueryRecord]] = {
        "CLEAN": [],
        "RAND": [],
        "RULE": [],
    }
    for query in clean:
        golden = (query,)
        workloads["CLEAN"].append(
            QueryRecord(dirty=query, golden=golden, kind="CLEAN")
        )
        workloads["RAND"].append(
            QueryRecord(
                dirty=rand_perturb_query(query, vocabulary, rng),
                golden=golden,
                kind="RAND",
            )
        )
        workloads["RULE"].append(
            QueryRecord(
                dirty=rule_perturb_query(query, vocabulary, rng, known),
                golden=golden,
                kind="RULE",
            )
        )
    return workloads
