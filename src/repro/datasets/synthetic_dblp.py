"""Synthetic DBLP-like corpus (the paper's data-centric dataset).

Substitutes for the May-2009 DBLP snapshot (526 MB, 12M nodes, depth
≤ 7, avg 3.8).  The generator reproduces the *structural* properties the
algorithms are sensitive to:

* a shallow, regular, data-centric tree:
  ``dblp → {article | inproceedings | phdthesis} → author*/title/…``;
* short entities (a publication holds ~10–25 tokens);
* a moderate vocabulary with Zipfian term usage in titles;
* publication-type and field-name label paths identical across entries
  (so result-type inference has the same few candidate types DBLP has).

Everything is driven by a seed; the same config always generates the
same tree, token for token.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.sampling import ZipfSampler
from repro.datasets.words import (
    CS_TERMS,
    COMMON_WORDS,
    FIRST_NAMES,
    LAST_NAMES,
    VENUES,
    inflect,
    synthesize_words,
)
from repro.xmltree.document import XMLDocument
from repro.xmltree.node import XMLNode


@dataclass(frozen=True)
class DBLPConfig:
    """Scale and shape knobs of the DBLP-like generator.

    Defaults produce a corpus that indexes in a few seconds — large
    enough for the benchmark shapes, small enough for CI.
    """

    publications: int = 2000
    seed: int = 42
    title_terms: int = 650
    extra_vocabulary: int = 350
    min_title_words: int = 4
    max_title_words: int = 10
    min_authors: int = 1
    max_authors: int = 3
    zipf_exponent: float = 1.05
    inflection_rate: float = 0.3
    publication_types: tuple[str, ...] = (
        "article",
        "inproceedings",
        "phdthesis",
    )
    type_weights: tuple[int, ...] = (10, 3, 1)
    name: str = "dblp-synthetic"

    def __post_init__(self):
        if self.publications < 1:
            raise ValueError("publications must be >= 1")
        if len(self.publication_types) != len(self.type_weights):
            raise ValueError("types and weights must align")


@dataclass
class DBLPCorpus:
    """The generated document plus the pools used to build it."""

    document: XMLDocument
    title_vocabulary: tuple[str, ...]
    author_names: tuple[str, ...]
    config: DBLPConfig = field(repr=False, default=None)  # type: ignore[assignment]


def generate_dblp(config: DBLPConfig | None = None) -> DBLPCorpus:
    """Generate a DBLP-shaped :class:`XMLDocument`."""
    config = config or DBLPConfig()
    rng = random.Random(config.seed)

    title_pool = list(CS_TERMS[: config.title_terms])
    if config.extra_vocabulary:
        title_pool += synthesize_words(
            config.extra_vocabulary, seed=config.seed + 1
        )
    rng.shuffle(title_pool)
    title_sampler = ZipfSampler(title_pool, config.zipf_exponent)
    common_sampler = ZipfSampler(list(COMMON_WORDS), 1.2)
    venue_sampler = ZipfSampler(list(VENUES), 0.8)

    root = XMLNode("dblp")
    authors: set[str] = set()
    for _ in range(config.publications):
        pub_type = rng.choices(
            config.publication_types, weights=config.type_weights
        )[0]
        publication = XMLNode(pub_type)
        root.add_child(publication)

        author_count = rng.randint(config.min_authors, config.max_authors)
        for _ in range(author_count):
            name = (
                f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
            )
            authors.add(name)
            publication.add_child(XMLNode("author", name))

        publication.add_child(
            XMLNode("title", _make_title(rng, title_sampler,
                                         common_sampler, config))
        )
        publication.add_child(
            XMLNode("year", str(rng.randint(1995, 2009)))
        )
        if pub_type == "inproceedings":
            publication.add_child(
                XMLNode(
                    "booktitle",
                    f"{venue_sampler.sample(rng)} proceedings",
                )
            )
            publication.add_child(
                XMLNode("pages", f"{rng.randint(1, 600)}")
            )
        elif pub_type == "article":
            publication.add_child(
                XMLNode(
                    "journal",
                    f"{venue_sampler.sample(rng)} journal",
                )
            )
            publication.add_child(
                XMLNode("volume", str(rng.randint(1, 40)))
            )
        else:
            publication.add_child(
                XMLNode("school", f"{rng.choice(LAST_NAMES)} university")
            )

    document = XMLDocument(root, name=config.name)
    return DBLPCorpus(
        document=document,
        title_vocabulary=tuple(title_pool),
        author_names=tuple(sorted(authors)),
        config=config,
    )


def _make_title(
    rng: random.Random,
    title_sampler: ZipfSampler,
    common_sampler: ZipfSampler,
    config: DBLPConfig,
) -> str:
    """A plausible paper title: mostly CS terms, a few common words."""
    length = rng.randint(config.min_title_words, config.max_title_words)
    words = []
    for _ in range(length):
        if rng.random() < 0.75:
            word = title_sampler.sample(rng)
        else:
            word = common_sampler.sample(rng)
        if rng.random() < config.inflection_rate:
            word = inflect(word, rng)
        words.append(word)
    return " ".join(words)
