"""Search-engine simulators SE1 / SE2 (Section VII-B substitution).

The paper compares against two live web search engines queried with the
``site:`` operator.  Those cannot be reproduced offline, so we model
what the paper actually *uses* them for — three observed behaviours:

1. they return at most one suggestion and stay silent on queries whose
   words are all spelled correctly (near-perfect on the CLEAN sets);
2. they correct common human misspellings very well (better on RULE
   than on RAND), which the paper attributes to query-log knowledge;
3. their corrections are content-independent and frequency-biased
   (the "TiGe serum → Tigi serum" failure mode).

:class:`DictionaryCorrector` (SE2) corrects each unknown word to the
most *frequent* vocabulary token within edit distance ε — frequency
dominating similarity reproduces behaviour 3.
:class:`LogBasedCorrector` (SE1) additionally consults a known
misspelling→correction map (the stand-in for a query log), reproducing
behaviour 2.  Both are silent when every word is in the vocabulary
(behaviour 1).
"""

from __future__ import annotations

import math

from repro.core.suggestion import Suggestion
from repro.exceptions import QueryError
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import CorpusIndex

#: Weak distance penalty: frequency should usually win over closeness,
#: which is exactly the bias the paper criticizes in log-driven systems.
DEFAULT_SIMILARITY_WEIGHT = 1.0


class DictionaryCorrector:
    """SE2 stand-in: context-independent, frequency-biased correction."""

    name = "SE2"

    def __init__(
        self,
        corpus: CorpusIndex,
        generator: VariantGenerator | None = None,
        max_errors: int = 2,
        similarity_weight: float = DEFAULT_SIMILARITY_WEIGHT,
    ):
        self.corpus = corpus
        self.max_errors = max_errors
        self.similarity_weight = similarity_weight
        self.generator = generator or VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=max_errors
        )

    def suggest(self, query: str, k: int = 1) -> list[Suggestion]:
        """At most one suggestion; empty when the query looks clean."""
        keywords = self.corpus.tokenizer.tokenize(query)
        if not keywords:
            raise QueryError(f"query {query!r} has no usable keywords")
        corrected = []
        changed = False
        for keyword in keywords:
            replacement = self._correct_word(keyword)
            corrected.append(replacement)
            if replacement != keyword:
                changed = True
        if not changed:
            return []
        return [Suggestion(tokens=tuple(corrected), score=1.0)][:k]

    def _correct_word(self, keyword: str) -> str:
        """Identity for known words; else the best-scoring variant."""
        if keyword in self.corpus.vocabulary:
            return keyword
        best_token = keyword
        best_score = 0.0
        for variant in self.generator.variants(keyword, self.max_errors):
            frequency = self.corpus.vocabulary.collection_frequency(
                variant.token
            )
            score = frequency * math.exp(
                -self.similarity_weight * variant.distance
            )
            if score > best_score or (
                score == best_score and variant.token < best_token
            ):
                best_token = variant.token
                best_score = score
        return best_token


class LogBasedCorrector(DictionaryCorrector):
    """SE1 stand-in: query-log (misspelling-map) knowledge first."""

    name = "SE1"

    def __init__(
        self,
        corpus: CorpusIndex,
        misspelling_map: dict[str, str],
        generator: VariantGenerator | None = None,
        max_errors: int = 2,
        similarity_weight: float = DEFAULT_SIMILARITY_WEIGHT,
    ):
        super().__init__(
            corpus,
            generator=generator,
            max_errors=max_errors,
            similarity_weight=similarity_weight,
        )
        self.misspelling_map = misspelling_map

    def _correct_word(self, keyword: str) -> str:
        if keyword in self.corpus.vocabulary:
            return keyword
        known = self.misspelling_map.get(keyword)
        if known is not None and known in self.corpus.vocabulary:
            return known
        return super()._correct_word(keyword)
