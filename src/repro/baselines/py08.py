"""The PY08 baseline [Pu & Yu 2008], adapted to XML (Sections II, VII-B).

PY08 cleans keyword queries over relational data by scoring each
candidate keyword independently:

    score(C)      = Σ_{w ∈ C} score_IR(w) · f(w)
    score_IR(w)   = max { tfidf(w, t) : t ∈ DB }
    tfidf(w, t)   = count(w, t)/|t| · log(N / df(w))

The paper adapts it to XML by treating each text-bearing XML element as
a document ``t``.  ``f(w)`` is the spelling-error factor; for a fair
comparison we use the same exponential penalty exp(-β·ed) as XClean.

The two deliberate flaws the paper analyzes live here untouched:

* **Rare-token bias** — smaller df(w) means higher idf, so an obscure
  variant outranks a frequent one (Figure 1's "health instance").
* **No connectivity** — each keyword maximizes its own score over the
  whole database; nothing requires the chosen variants to co-occur.

Runtime profile, faithful to the paper's measurements (Table VI): PY08
computes score_IR by a *full scan* of each variant's inverted list (no
skipping, no early termination), and its segment handling re-scans list
pairs to test phrase co-occurrence — the "multiple passes" that make it
5–10× slower than XClean.
"""

from __future__ import annotations

import heapq
import logging
import math
from dataclasses import dataclass

from repro.core.suggestion import CleaningStats, Suggestion
from repro.exceptions import ConfigurationError, QueryError
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import CorpusIndex


logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PY08Config:
    """Tunables of the PY08 baseline.

    Attributes:
        max_errors: ε of the variant generation (same as XClean's).
        penalty: the spelling factor f(w).  ``"similarity"`` (default)
            is PY08's own normalized edit similarity
            ``1 - ed/max(|q|,|w|)`` — a *weak* penalty, which is what
            lets the tf·idf rare-token bias dominate and produce the
            paper's Figure 1/Table III failures.  ``"exponential"``
            borrows XClean's exp(-β·ed) for a like-for-like ablation.
        beta: β of the exponential penalty (unused for similarity).
        gamma: number of top keyword combinations ("segments") kept per
            query — the γ knob of Table V's PY08 rows.
        use_segments: verify adjacent-pair phrase co-occurrence for the
            kept combinations (costs extra list passes; small score
            bonus for real phrases).
    """

    max_errors: int = 2
    penalty: str = "similarity"
    beta: float = 5.0
    gamma: int = 100
    use_segments: bool = True

    def __post_init__(self):
        if self.gamma < 1:
            raise ConfigurationError("gamma must be >= 1")
        if self.max_errors < 0:
            raise ConfigurationError("max_errors must be >= 0")
        if self.penalty not in ("similarity", "exponential"):
            raise ConfigurationError(
                f"unknown penalty {self.penalty!r}"
            )


class PY08Suggester:
    """Keyword-independent tf·idf query cleaning (the paper's baseline)."""

    def __init__(
        self,
        corpus: CorpusIndex,
        generator: VariantGenerator | None = None,
        config: PY08Config | None = None,
    ):
        self.corpus = corpus
        self.config = config or PY08Config()
        self.generator = generator or VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=self.config.max_errors
        )
        self.last_stats = CleaningStats()
        self._pair_cache: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def suggest(self, query: str, k: int = 10) -> list[Suggestion]:
        """Top-k candidates by the PY08 score."""
        keywords = self.corpus.tokenizer.tokenize(query)
        if not keywords:
            raise QueryError(f"query {query!r} has no usable keywords")
        stats = CleaningStats(keywords=len(keywords))
        self.last_stats = stats
        # Per-query memo: real deployments cannot assume repeated pairs
        # across queries, so Table VI timings must not amortize joins.
        self._pair_cache = {}

        # Per-keyword scored variants, descending.
        per_keyword: list[list[tuple[float, str]]] = []
        for keyword in keywords:
            variants = self.generator.variants(
                keyword, self.config.max_errors
            )
            scored = [
                (
                    self._score_ir(v.token, stats)
                    * self._penalty(keyword, v.token, v.distance),
                    v.token,
                )
                for v in variants
            ]
            if not scored:
                return []
            scored.sort(key=lambda item: (-item[0], item[1]))
            per_keyword.append(scored)
        stats.space_size = math.prod(len(p) for p in per_keyword)

        combinations = self._top_combinations(
            per_keyword, self.config.gamma
        )
        stats.candidates_evaluated = len(combinations)
        if self.config.use_segments:
            combinations = [
                (
                    score * (1.0 + self._segment_bonus(candidate, stats)),
                    candidate,
                )
                for score, candidate in combinations
            ]
        combinations.sort(key=lambda item: (-item[0], item[1]))
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "py08 query=%r combos=%d read=%d",
                query,
                len(combinations),
                stats.postings_read,
            )
        return [
            Suggestion(tokens=candidate, score=score)
            for score, candidate in combinations[:k]
        ]

    # ------------------------------------------------------------------
    # Scoring internals
    # ------------------------------------------------------------------

    def _penalty(self, keyword: str, token: str, distance: int) -> float:
        """The spelling factor f(w) (see :class:`PY08Config`)."""
        if self.config.penalty == "similarity":
            longest = max(len(keyword), len(token))
            if longest == 0:
                return 1.0
            return 1.0 - distance / longest
        return math.exp(-self.config.beta * distance)

    def _score_ir(self, token: str, stats: CleaningStats) -> float:
        """score_IR(w): max tf·idf over elements, by full list scan."""
        postings = self.corpus.inverted.list_for(token)
        df = len(postings)
        if df == 0:
            return 0.0
        idf = math.log(
            self.corpus.vocabulary.element_doc_count / df
        )
        best = 0.0
        for dewey, _pid, tf in postings:
            stats.postings_read += 1
            length = self.corpus.subtree_length(dewey)
            if length:
                value = (tf / length) * idf
                if value > best:
                    best = value
        return best

    def _top_combinations(
        self,
        per_keyword: list[list[tuple[float, str]]],
        limit: int,
    ) -> list[tuple[float, tuple[str, ...]]]:
        """Best ``limit`` combinations of per-keyword variants.

        Classic lazy top-k enumeration over descending-sorted lists: the
        frontier heap expands one index at a time, so only O(limit·l)
        combinations are materialized even for huge spaces.
        """
        start = tuple(0 for _ in per_keyword)
        start_score = sum(lst[0][0] for lst in per_keyword)
        heap = [(-start_score, start)]
        seen = {start}
        results: list[tuple[float, tuple[str, ...]]] = []
        while heap and len(results) < limit:
            negative_score, indexes = heapq.heappop(heap)
            candidate = tuple(
                per_keyword[j][i][1] for j, i in enumerate(indexes)
            )
            results.append((-negative_score, candidate))
            for j, i in enumerate(indexes):
                if i + 1 < len(per_keyword[j]):
                    successor = indexes[:j] + (i + 1,) + indexes[j + 1 :]
                    if successor not in seen:
                        seen.add(successor)
                        score = -negative_score - (
                            per_keyword[j][i][0]
                            - per_keyword[j][i + 1][0]
                        )
                        heapq.heappush(heap, (-score, successor))
        return results

    #: Relative weight of the phrase-segment uplift.  Deliberately mild:
    #: the paper observes that segmentation does *not* repair PY08's
    #: missing-connectivity problem, so the bonus must never dominate
    #: the keyword-independent base score.
    SEGMENT_WEIGHT = 0.05

    def _segment_bonus(
        self, candidate: tuple[str, ...], stats: CleaningStats
    ) -> float:
        """Phrase-segment uplift for adjacent pairs (re-scans lists).

        For every adjacent keyword pair, merge-join the two full
        inverted lists; each element containing both words contributes
        to the co-occurrence count.  Returns the relative uplift
        (e.g. 0.1 = +10% on the base score).
        """
        bonus = 0.0
        for left, right in zip(candidate, candidate[1:]):
            count = self._pair_cooccurrence(left, right, stats)
            if count:
                bonus += self.SEGMENT_WEIGHT * math.log1p(count)
        return bonus

    def _pair_cooccurrence(
        self, left: str, right: str, stats: CleaningStats
    ) -> int:
        key = (left, right) if left <= right else (right, left)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        a = self.corpus.inverted.list_for(key[0])
        b = self.corpus.inverted.list_for(key[1])
        stats.postings_read += len(a) + len(b)
        count = 0
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i][0] == b[j][0]:
                count += 1
                i += 1
                j += 1
            elif a[i][0] < b[j][0]:
                i += 1
            else:
                j += 1
        self._pair_cache[key] = count
        return count
