"""Comparison systems: the PY08 baseline and search-engine simulators."""

from repro.baselines.dictionary import (
    DictionaryCorrector,
    LogBasedCorrector,
)
from repro.baselines.py08 import PY08Config, PY08Suggester

__all__ = [
    "DictionaryCorrector",
    "LogBasedCorrector",
    "PY08Config",
    "PY08Suggester",
]
