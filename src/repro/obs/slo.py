"""Rolling multi-window SLO tracking for the serving stack.

An :class:`SLOTracker` folds per-request outcomes into per-second
ring-buffer cells and answers, for each configured window (1m/5m/1h by
default): how available was the service, how often did it meet its
latency objective, and how fast is it burning its error budget.

**Outcome vocabulary** (one per request, recorded at response time):

* ``served`` — a complete answer;
* ``partial`` — a deadline-truncated answer (served, but counted
  separately against the latency objective's spirit);
* ``shed`` — refused under load (503);
* ``error`` — an unexpected 5xx.

**Availability** is ``(served + partial) / total``: a shed or errored
request is an unavailable one.  **Latency attainment** is the fraction
of answered requests at or under ``latency_threshold`` seconds.  Both
compare against their objective as a **burn rate**: the observed
bad-event rate divided by the budgeted bad-event rate, so 1.0 means
"spending budget exactly as provisioned", 10 means "budget gone in a
tenth of the window" (the classic multi-window multi-burn-rate alert
input).  An empty window reports availability 1.0 and burn rate 0.0.

The tracker is thread-safe and allocation-free on the record path: one
lock, one ring index, a handful of integer bumps.  The clock is
injectable so tests can step time deterministically.
"""

from __future__ import annotations

import threading
from time import monotonic

#: Request outcomes the tracker accepts.
OUTCOMES = ("served", "partial", "shed", "error")

#: Default window lengths in seconds (1m / 5m / 1h).
DEFAULT_WINDOWS = (60, 300, 3600)


def window_label(seconds: int) -> str:
    """``60 -> "1m"``, ``3600 -> "1h"``, odd sizes fall back to ``Ns``."""
    if seconds % 3600 == 0:
        return f"{seconds // 3600}h"
    if seconds % 60 == 0:
        return f"{seconds // 60}m"
    return f"{seconds}s"


class _Cell:
    """Tallies for one wall-clock second."""

    __slots__ = ("stamp", "served", "partial", "shed", "error",
                 "latency_ok", "answered")

    def __init__(self) -> None:
        self.reset(-1)

    def reset(self, stamp: int) -> None:
        self.stamp = stamp
        self.served = 0
        self.partial = 0
        self.shed = 0
        self.error = 0
        self.latency_ok = 0
        self.answered = 0


class SLOTracker:
    """Multi-window availability and latency burn-rate tracker."""

    enabled = True

    def __init__(
        self,
        windows: tuple[int, ...] = DEFAULT_WINDOWS,
        *,
        availability_objective: float = 0.999,
        latency_objective: float = 0.99,
        latency_threshold: float = 0.100,
        clock=monotonic,
    ):
        if not windows:
            raise ValueError("SLOTracker needs at least one window")
        for objective in (availability_objective, latency_objective):
            if not 0.0 < objective < 1.0:
                raise ValueError(
                    "objectives must be in (0, 1) — an objective of "
                    "1.0 has no error budget to burn"
                )
        self.windows = tuple(sorted(int(w) for w in windows))
        self.availability_objective = availability_objective
        self.latency_objective = latency_objective
        self.latency_threshold = latency_threshold
        self._clock = clock
        self._size = self.windows[-1]
        self._cells = [_Cell() for _ in range(self._size)]
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------

    def record(self, outcome: str, latency_s: float = 0.0) -> None:
        """Fold one request outcome into the current second's cell."""
        if outcome not in OUTCOMES:
            raise ValueError(
                f"unknown SLO outcome {outcome!r}; expected one of "
                f"{OUTCOMES}"
            )
        second = int(self._clock())
        with self._lock:
            cell = self._cells[second % self._size]
            if cell.stamp != second:
                cell.reset(second)
            setattr(cell, outcome, getattr(cell, outcome) + 1)
            if outcome in ("served", "partial"):
                cell.answered += 1
                if latency_s <= self.latency_threshold:
                    cell.latency_ok += 1

    # -- read-out -----------------------------------------------------

    def _window_tallies(self, seconds: int, now: int) -> tuple:
        served = partial = shed = error = ok = answered = 0
        oldest = now - seconds + 1
        for cell in self._cells:
            if oldest <= cell.stamp <= now:
                served += cell.served
                partial += cell.partial
                shed += cell.shed
                error += cell.error
                ok += cell.latency_ok
                answered += cell.answered
        return served, partial, shed, error, ok, answered

    @staticmethod
    def _burn_rate(bad: int, total: int, objective: float) -> float:
        if total == 0:
            return 0.0
        budget = 1.0 - objective
        return (bad / total) / budget

    def window_report(self, seconds: int) -> dict:
        """One window's tallies, ratios, and burn rates."""
        now = int(self._clock())
        with self._lock:
            (served, partial, shed, error, ok,
             answered) = self._window_tallies(seconds, now)
        total = served + partial + shed + error
        unavailable = shed + error
        availability = (
            (served + partial) / total if total else 1.0
        )
        latency_attainment = ok / answered if answered else 1.0
        return {
            "window": window_label(seconds),
            "seconds": seconds,
            "total": total,
            "served": served,
            "partial": partial,
            "shed": shed,
            "error": error,
            "availability": availability,
            "availability_burn_rate": self._burn_rate(
                unavailable, total, self.availability_objective
            ),
            "latency_attainment": latency_attainment,
            "latency_burn_rate": self._burn_rate(
                answered - ok, answered, self.latency_objective
            ),
        }

    def report(self) -> dict:
        """All windows plus the configured objectives."""
        return {
            "objectives": {
                "availability": self.availability_objective,
                "latency": self.latency_objective,
                "latency_threshold_s": self.latency_threshold,
            },
            "windows": [
                self.window_report(seconds) for seconds in self.windows
            ],
        }

    def export_gauges(self, metrics) -> None:
        """Mirror every window's ratios into Prometheus gauges."""
        if not metrics.enabled:
            return
        for seconds in self.windows:
            view = self.window_report(seconds)
            label = view["window"]
            metrics.set_gauge(
                "slo_availability", view["availability"], window=label
            )
            metrics.set_gauge(
                "slo_availability_burn_rate",
                view["availability_burn_rate"], window=label,
            )
            metrics.set_gauge(
                "slo_latency_attainment",
                view["latency_attainment"], window=label,
            )
            metrics.set_gauge(
                "slo_latency_burn_rate",
                view["latency_burn_rate"], window=label,
            )


class NullSLOTracker:
    """Disabled tracker: every hook is a no-op."""

    enabled = False
    windows: tuple[int, ...] = ()

    def record(self, outcome: str, latency_s: float = 0.0) -> None:
        pass

    def window_report(self, seconds: int) -> dict:
        return {}

    def report(self) -> dict:
        return {"objectives": {}, "windows": []}

    def export_gauges(self, metrics) -> None:
        pass


#: The shared disabled tracker; safe to use as a default everywhere.
NULL_SLO = NullSLOTracker()
