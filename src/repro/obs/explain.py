"""Score provenance: why a candidate got the score it got.

``XCleanSuggester.suggest_explained`` runs the normal Algorithm 1 pass
with a :class:`ScoreRecorder` attached; the engines feed it, per
candidate and per subtree group, the exact factors that entered the
accumulator — error-model probabilities (Eq. 4/5), per-entity
Dirichlet-smoothed term contributions (Eq. 6/8/9), the result-type
utility table the winner beat (Eq. 7), and every pruning decision the
γ-bounded accumulator made (who evicted whom, at what Hoeffding
estimate).  :func:`build_explanation` then folds the record into an
:class:`Explanation` whose per-candidate ``reconstructed_score`` is
computed from the logged factors alone, in the engine's own
accumulation order — it therefore matches the engine's reported score
bit for bit (asserted to 1e-9 in ``tests/obs/test_explain.py``, for
both engines).

The recorder is only ever attached for explain runs; the hot path
carries a ``self._recorder is None`` check per scored candidate and
nothing else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.pruning import add_partial, hoeffding_confidence

#: ε at which eviction notes report their Hoeffding confidence.
EXPLAIN_EPSILON = 0.05


# ----------------------------------------------------------------------
# The recorded factors
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorFactor:
    """One P(q_j|w) factor of the error model (Eq. 4/5)."""

    position: int
    keyword: str
    variant: str
    distance: int
    probability: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "position": self.position,
            "keyword": self.keyword,
            "variant": self.variant,
            "distance": self.distance,
            "probability": self.probability,
        }


@dataclass(frozen=True)
class TermFactor:
    """One Dirichlet-smoothed p(w|D(r)) factor (Eq. 6)."""

    position: int
    token: str
    count: int
    probability: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "position": self.position,
            "token": self.token,
            "count": self.count,
            "probability": self.probability,
        }


@dataclass(frozen=True)
class EntityContribution:
    """One entity r of the result type: ∏_w p(w|D(r)) times its prior.

    ``mass`` is ``prior_weight * ∏ factors`` computed with the same
    float operations, in the same order, as the engine's scoring loop.
    """

    entity: str
    length: int
    prior_weight: float
    factors: tuple[TermFactor, ...]
    mass: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "entity": self.entity,
            "length": self.length,
            "prior_weight": self.prior_weight,
            "factors": [f.as_dict() for f in self.factors],
            "mass": self.mass,
        }


@dataclass(frozen=True)
class GroupContribution:
    """Mass one subtree group added to a candidate's accumulator.

    ``mass`` is the engine's own group sum (what ``pool.add`` got);
    the per-entity rows drill into it and re-sum to the same value.
    """

    group: str
    entities: tuple[EntityContribution, ...]
    mass: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "group": self.group,
            "mass": self.mass,
            "entities": [e.as_dict() for e in self.entities],
        }


@dataclass(frozen=True)
class UtilityRow:
    """One row of the U(C, p) table of Eq. 7."""

    path_id: int
    path: str
    depth: int
    utility: float
    winner: bool

    def as_dict(self) -> dict[str, Any]:
        return {
            "path_id": self.path_id,
            "path": self.path,
            "depth": self.depth,
            "utility": self.utility,
            "winner": self.winner,
        }


@dataclass(frozen=True)
class EvictionNote:
    """One γ-pruning decision of the accumulator pool (Section V-D)."""

    #: ``"evicted"`` — an in-table candidate lost its mass to a
    #: stronger newcomer; ``"rejected"`` — the newcomer itself was the
    #: weakest and never entered the table.
    kind: str
    candidate: tuple[str, ...]
    #: The Hoeffding (sample-mean) estimate at decision time.
    estimate: float
    #: Mass additions the estimate is based on.
    samples: int
    #: Hoeffding confidence of the estimate at ε=EXPLAIN_EPSILON.
    confidence: float
    #: The candidate whose arrival triggered the decision.
    evicted_by: tuple[str, ...] | None
    incoming_estimate: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "candidate": list(self.candidate),
            "estimate": self.estimate,
            "samples": self.samples,
            "confidence": self.confidence,
            "evicted_by": (
                list(self.evicted_by) if self.evicted_by else None
            ),
            "incoming_estimate": self.incoming_estimate,
        }


@dataclass(frozen=True)
class KernelPruneNote:
    """One in-loop γ-prune of the batch merge kernel.

    The kernel skipped the candidate before scoring because its score
    upper bound was strictly below the saturated accumulator floor —
    a guaranteed rejection, so the table (and the top-k) are provably
    what they would have been without the skip.
    """

    candidate: tuple[str, ...]
    #: error_weight × min-postings bound / normalizer at skip time.
    upper_bound: float
    #: The accumulator floor the bound failed to reach.
    floor: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "candidate": list(self.candidate),
            "upper_bound": self.upper_bound,
            "floor": self.floor,
        }


# ----------------------------------------------------------------------
# The recorder the engines feed
# ----------------------------------------------------------------------


@dataclass
class _CandidateRecord:
    """Everything recorded for one candidate across the merge loop."""

    result_type: int
    error_weight: float
    normalizer: float
    #: Groups per accumulator *epoch*: an eviction wipes the mass, so
    #: a new epoch starts and only the last epoch's groups are in the
    #: final score.
    epochs: list[list[GroupContribution]] = field(
        default_factory=lambda: [[]]
    )
    evictions: int = 0
    rejections: int = 0


class ScoreRecorder:
    """Collects score provenance during one explain run.

    The engines call :meth:`group` immediately *before* ``pool.add``
    for the same candidate; the pool's pruning observer then fixes the
    record up if the add was rejected or evicted somebody.
    """

    def __init__(self):
        self.candidates: dict[tuple[str, ...], _CandidateRecord] = {}
        self.events: list[EvictionNote] = []
        self.kernel_prunes: list[KernelPruneNote] = []
        #: The query's CandidateSpace (set by the engine) — source of
        #: the per-keyword variant distances and error weights.
        self.space = None

    def kernel_pruned(
        self,
        candidate: tuple[str, ...],
        upper_bound: float,
        floor: float,
    ) -> None:
        """The merge kernel skipped ``candidate`` before scoring."""
        self.kernel_prunes.append(
            KernelPruneNote(
                candidate=candidate,
                upper_bound=upper_bound,
                floor=floor,
            )
        )

    def group(
        self,
        candidate: tuple[str, ...],
        result_type: int,
        error_weight: float,
        normalizer: float,
        contribution: GroupContribution,
    ) -> None:
        record = self.candidates.get(candidate)
        if record is None:
            record = _CandidateRecord(
                result_type=result_type,
                error_weight=error_weight,
                normalizer=normalizer,
            )
            self.candidates[candidate] = record
        record.epochs[-1].append(contribution)

    # -- pruning-observer callbacks -----------------------------------

    def note_eviction(
        self,
        victim: tuple[str, ...],
        estimate: float,
        samples: int,
        incoming: tuple[str, ...],
        incoming_estimate: float,
    ) -> None:
        self.events.append(
            EvictionNote(
                kind="evicted",
                candidate=victim,
                estimate=estimate,
                samples=samples,
                confidence=hoeffding_confidence(
                    samples, EXPLAIN_EPSILON
                ),
                evicted_by=incoming,
                incoming_estimate=incoming_estimate,
            )
        )
        record = self.candidates.get(victim)
        if record is not None:
            record.evictions += 1
            record.epochs.append([])

    def note_rejection(
        self, incoming: tuple[str, ...], estimate: float
    ) -> None:
        self.events.append(
            EvictionNote(
                kind="rejected",
                candidate=incoming,
                estimate=estimate,
                samples=1,
                confidence=hoeffding_confidence(1, EXPLAIN_EPSILON),
                evicted_by=None,
                incoming_estimate=estimate,
            )
        )
        record = self.candidates.get(incoming)
        if record is not None:
            record.rejections += 1
            # The group recorded just before the rejected add never
            # entered the accumulator; drop it from the record too.
            if record.epochs[-1]:
                record.epochs[-1].pop()


class PruningObserver:
    """Bridges ``AccumulatorPool`` pruning decisions to the recorder
    and/or tracer (either may be absent)."""

    __slots__ = ("recorder", "tracer")

    def __init__(self, recorder: ScoreRecorder | None, tracer=None):
        self.recorder = recorder
        self.tracer = tracer

    def evicted(
        self, victim, entry, incoming, incoming_estimate: float
    ) -> None:
        if self.recorder is not None:
            self.recorder.note_eviction(
                victim,
                entry.estimate(),
                entry.samples,
                incoming,
                incoming_estimate,
            )
        if self.tracer is not None:
            self.tracer.event(
                "accumulator_evict",
                victim=" ".join(victim),
                estimate=entry.estimate(),
                evicted_by=" ".join(incoming),
            )

    def rejected(self, incoming, estimate: float) -> None:
        if self.recorder is not None:
            self.recorder.note_rejection(incoming, estimate)
        if self.tracer is not None:
            self.tracer.event(
                "accumulator_reject",
                candidate=" ".join(incoming),
                estimate=estimate,
            )


# ----------------------------------------------------------------------
# The assembled explanation
# ----------------------------------------------------------------------


@dataclass
class CandidateExplanation:
    """Provenance of one suggested candidate's final score."""

    tokens: tuple[str, ...]
    rank: int
    score: float
    #: The score re-derived from the logged factors alone, in the
    #: engine's accumulation order (bit-identical to ``score``).
    reconstructed_score: float
    result_type: str
    error_weight: float
    error_factors: tuple[ErrorFactor, ...]
    normalizer: float
    prior: str
    groups: tuple[GroupContribution, ...]
    utilities: tuple[UtilityRow, ...]
    evictions: int
    rejections: int

    @property
    def text(self) -> str:
        return " ".join(self.tokens)

    def as_dict(self) -> dict[str, Any]:
        return {
            "tokens": list(self.tokens),
            "rank": self.rank,
            "score": self.score,
            "reconstructed_score": self.reconstructed_score,
            "result_type": self.result_type,
            "error_weight": self.error_weight,
            "error_factors": [
                f.as_dict() for f in self.error_factors
            ],
            "normalizer": self.normalizer,
            "prior": self.prior,
            "groups": [g.as_dict() for g in self.groups],
            "utilities": [u.as_dict() for u in self.utilities],
            "evictions": self.evictions,
            "rejections": self.rejections,
        }


@dataclass
class Explanation:
    """Full provenance of one ``suggest_explained`` call."""

    query: str
    engine: str
    trace_id: str | None
    partial: bool
    suggestions: tuple[CandidateExplanation, ...]
    #: Every pruning decision of the run, in decision order.
    events: tuple[EvictionNote, ...]
    #: Candidates the merge kernel's in-loop γ-pruning skipped before
    #: scoring (empty off the kernel path).
    kernel_prunes: tuple[KernelPruneNote, ...]
    stats: dict[str, Any]

    def as_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "engine": self.engine,
            "trace_id": self.trace_id,
            "partial": self.partial,
            "suggestions": [
                s.as_dict() for s in self.suggestions
            ],
            "events": [e.as_dict() for e in self.events],
            "kernel_prunes": [
                p.as_dict() for p in self.kernel_prunes
            ],
            "stats": self.stats,
        }

    def render(self, max_entities: int = 5) -> str:
        """Human-readable multi-section text (the CLI view)."""
        lines = [f"query: {self.query!r}  engine: {self.engine}"]
        if self.trace_id:
            lines[0] += f"  trace: {self.trace_id}"
        if self.partial:
            lines.append("  !! partial: deadline expired mid-query")
        for cand in self.suggestions:
            lines.append("")
            lines.append(
                f"#{cand.rank}  {cand.text!r}  "
                f"score={cand.score:.6e}  "
                f"(reconstructed {cand.reconstructed_score:.6e})"
            )
            lines.append(
                f"    result type: {cand.result_type}  "
                f"normalizer={cand.normalizer:g} ({cand.prior} prior)"
            )
            factors = "  ".join(
                f"{f.keyword}->{f.variant} (ed={f.distance}, "
                f"p={f.probability:.4f})"
                for f in cand.error_factors
            )
            lines.append(
                f"    P(Q|C)={cand.error_weight:.6e}: {factors}"
            )
            for utility in cand.utilities:
                marker = "*" if utility.winner else " "
                lines.append(
                    f"    {marker} U(C, {utility.path}) = "
                    f"{utility.utility:.6f}  (depth {utility.depth})"
                )
            for group in cand.groups:
                lines.append(
                    f"    group {group.group}: mass={group.mass:.6e} "
                    f"from {len(group.entities)} entities"
                )
                for entity in group.entities[:max_entities]:
                    terms = " * ".join(
                        f"p({f.token}|D)={f.probability:.6f}"
                        for f in entity.factors
                    )
                    lines.append(
                        f"        {entity.entity} (|D|={entity.length}"
                        f", prior={entity.prior_weight:g}): {terms}"
                        f" -> {entity.mass:.6e}"
                    )
                hidden = len(group.entities) - max_entities
                if hidden > 0:
                    lines.append(
                        f"        ... {hidden} more entities"
                    )
            if cand.evictions or cand.rejections:
                lines.append(
                    f"    pruning: evicted {cand.evictions}x, "
                    f"rejected {cand.rejections}x (mass restarted)"
                )
        if self.events:
            lines.append("")
            lines.append(f"pruning events ({len(self.events)}):")
            for event in self.events:
                target = " ".join(event.candidate)
                if event.kind == "evicted":
                    by = " ".join(event.evicted_by or ())
                    lines.append(
                        f"    {target!r} evicted by {by!r}: estimate "
                        f"{event.estimate:.3e} (n={event.samples}, "
                        f"confidence {event.confidence:.2f} at "
                        f"eps={EXPLAIN_EPSILON}) < "
                        f"{event.incoming_estimate:.3e}"
                    )
                else:
                    lines.append(
                        f"    {target!r} rejected on arrival: "
                        f"estimate {event.estimate:.3e} below every "
                        f"accumulator"
                    )
        hits = self.stats.get("intersection_cache_hits", 0)
        misses = self.stats.get("intersection_cache_misses", 0)
        pruned = self.stats.get("kernel_pruned", 0)
        if hits or misses or pruned:
            lines.append("")
            lines.append(
                f"merge kernel: plan cache {hits} hit(s) / "
                f"{misses} miss(es), {pruned} candidate(s) pruned "
                f"in-loop"
            )
        if self.kernel_prunes:
            for note in self.kernel_prunes:
                target = " ".join(note.candidate)
                lines.append(
                    f"    {target!r} skipped before scoring: upper "
                    f"bound {note.upper_bound:.3e} < floor "
                    f"{note.floor:.3e}"
                )
        return "\n".join(lines)


def build_explanation(
    query: str,
    suggester,
    recorder: ScoreRecorder,
    pool,
    k: int,
) -> Explanation:
    """Fold a finished run's record into an :class:`Explanation`.

    ``reconstructed_score`` re-derives each candidate's score purely
    from the recorded factors: the epoch's group masses are folded
    through the same exact-summation expansion ``Accumulator.mass``
    uses (``add_partial`` + ``fsum``) and scaled by the recorded error
    weight and normalizer — the same float operations the engine
    performed, hence bit-identical.
    """
    stats = suggester.last_stats
    space = recorder.space
    candidates = []
    for rank, (tokens, score, entry) in enumerate(pool.top_k(k), 1):
        record = recorder.candidates.get(tokens)
        groups: tuple[GroupContribution, ...] = ()
        reconstructed = 0.0
        error_weight = 0.0
        normalizer = 0.0
        evictions = rejections = 0
        if record is not None:
            groups = tuple(record.epochs[-1])
            partials: list[float] = []
            for group in groups:
                add_partial(partials, group.mass)
            mass = math.fsum(partials)
            error_weight = record.error_weight
            normalizer = record.normalizer
            reconstructed = (
                error_weight * mass / normalizer if normalizer else 0.0
            )
            evictions = record.evictions
            rejections = record.rejections
        error_factors = tuple(
            _error_factors(space, tokens)
        ) if space is not None else ()
        path_table = suggester.corpus.path_table
        utilities = tuple(
            UtilityRow(
                path_id=pid,
                path=path,
                depth=depth,
                utility=utility,
                winner=pid == entry.result_type,
            )
            for pid, path, depth, utility
            in suggester.type_finder.explain_paths(tokens)
        )
        candidates.append(
            CandidateExplanation(
                tokens=tokens,
                rank=rank,
                score=score,
                reconstructed_score=reconstructed,
                result_type=path_table.string_of(entry.result_type),
                error_weight=error_weight,
                error_factors=error_factors,
                normalizer=normalizer,
                prior=suggester.config.prior,
                groups=groups,
                utilities=utilities,
                evictions=evictions,
                rejections=rejections,
            )
        )
    return Explanation(
        query=query,
        engine=suggester.config.engine,
        trace_id=stats.trace_id,
        partial=stats.partial,
        suggestions=tuple(candidates),
        events=tuple(recorder.events),
        kernel_prunes=tuple(recorder.kernel_prunes),
        stats=_stats_dict(stats),
    )


def _error_factors(space, tokens: Sequence[str]):
    """Per-position Eq. 4/5 factors of a candidate, engine order."""
    for position, token in enumerate(tokens):
        kv = space.per_keyword[position]
        distance = 0
        for variant in kv.variants:
            if variant.token == token:
                distance = variant.distance
                break
        yield ErrorFactor(
            position=position,
            keyword=kv.keyword,
            variant=token,
            distance=distance,
            probability=kv.weights[token],
        )


def _stats_dict(stats) -> dict[str, Any]:
    from dataclasses import asdict

    return asdict(stats)
