"""Serving-layer metrics: counters, latency histograms, stage timers.

The registry is deliberately tiny — plain Python objects, no
background threads — because it sits on the query hot path.  Two
implementations share one interface:

* :class:`MetricsRegistry` — the live registry.  Counters are floats,
  histograms are fixed-bucket cumulative latency histograms (the
  Prometheus model), and :meth:`MetricsRegistry.stage` times a named
  pipeline stage into the shared ``stage_seconds`` histogram family.
* :data:`NULL_METRICS` — the disabled singleton.  Every hook is a
  no-op; hot code guards its ``perf_counter`` calls behind
  ``metrics.enabled`` so a disabled registry costs one attribute load
  per instrumentation point (verified by ``benchmarks/bench_serving``).

Snapshots (:meth:`MetricsRegistry.snapshot`) are point-in-time copies
that render as a JSON-friendly dict or Prometheus text exposition
format; see :mod:`repro.obs.export`.

Counters and histograms are process-local: worker processes of the
serving pool keep their own registries, and only parent-side metrics
appear in :meth:`SuggestionService.metrics`.

Thread safety: every mutation (``inc``, ``observe``, state merges) and
every read-out (``snapshot``) runs under a per-object lock, so the
asyncio HTTP front-end's executor threads and the serving code can
share one registry without dropping increments (``value += x`` is not
atomic under the GIL — a thread switch between the load and the store
loses an update).  The lock is uncontended in single-threaded use and
costs nanoseconds next to a ``perf_counter`` call; the serving
benchmark's instrumentation-overhead ceiling keeps that honest.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from time import perf_counter

#: Upper bounds (seconds) of the default latency histogram; an +Inf
#: overflow bucket is implicit.  Spans 1µs .. 5s, log-ish spacing —
#: the µs end exists for the mmap snapshot path, whose ~0.2 ms loads
#: all collapsed into one bucket under the old 100µs floor.  Override
#: per deployment with ``XCleanConfig.latency_buckets`` (threaded into
#: pool workers) or per registry via ``MetricsRegistry(buckets=...)``.
DEFAULT_LATENCY_BUCKETS = (
    0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Histogram family that all stage timers observe into.
STAGE_HISTOGRAM = "stage_seconds"

#: Stage name for index deserialization / snapshot mapping — the cold
#: half of the pipeline (pack_index and the query stages cover the warm
#: half).  Every loader in ``cli.py``, ``snapshot.py`` and the serving
#: benchmarks times itself under this name so cold starts show up next
#: to the query stages in one ``stage_seconds`` family.
INDEX_LOAD_STAGE = "index_load"


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing counter (one label set)."""

    __slots__ = ("name", "help", "labels", "value", "_lock")

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None,
                 lock: threading.Lock | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = lock or threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    # Locks are not picklable; a counter travelling to a pool worker
    # (inside a pickled corpus/registry) re-creates its own.
    def __getstate__(self):
        return (self.name, self.help, self.labels, self.value)

    def __setstate__(self, state) -> None:
        self.name, self.help, self.labels, self.value = state
        self._lock = threading.Lock()


class Gauge:
    """A settable point-in-time value (one label set).

    Unlike :class:`Counter` a gauge can move in both directions —
    RSS, WAL depth, in-flight requests.  ``set`` replaces the value;
    ``inc``/``dec`` adjust it.
    """

    __slots__ = ("name", "help", "labels", "value", "_lock")

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None,
                 lock: threading.Lock | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = lock or threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def __getstate__(self):
        return (self.name, self.help, self.labels, self.value)

    def __setstate__(self, state) -> None:
        self.name, self.help, self.labels, self.value = state
        self._lock = threading.Lock()


class Histogram:
    """A fixed-bucket latency histogram (Prometheus semantics).

    Internally observations land in *disjoint* per-bucket tallies (one
    ``bisect`` + one increment per observation, so the hot path is
    O(log buckets)); the cumulative Prometheus view — ``counts[i]`` is
    the number of observations <= ``buckets[i]``, overflow implicit —
    is derived on access.
    """

    __slots__ = ("name", "help", "labels", "buckets", "_tallies",
                 "sum", "count", "_lock")

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
                 labels: dict[str, str] | None = None,
                 lock: threading.Lock | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.buckets = tuple(buckets)
        # One tally per bound plus the overflow bucket.
        self._tallies = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        # Reentrant: summary() reads quantiles under the same lock.
        self._lock = lock or threading.RLock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            self._tallies[bisect_left(self.buckets, value)] += 1

    @property
    def counts(self) -> list[int]:
        """Cumulative bucket counts (the ``_bucket{le=...}`` view)."""
        out = []
        running = 0
        with self._lock:
            tallies = list(self._tallies)
        for tally in tallies[:-1]:
            running += tally
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile.

        Bucket-resolution estimate (like Prometheus'
        ``histogram_quantile``); returns ``inf`` when the quantile
        falls in the overflow bucket and 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            count = self.count
            tallies = list(self._tallies)
        if count == 0:
            return 0.0
        threshold = q * count
        cumulative = 0
        for bound, tally in zip(self.buckets, tallies):
            cumulative += tally
            if cumulative >= threshold:
                return bound
        return float("inf")

    def summary(self) -> dict[str, float]:
        """Count/sum/mean plus bucket-resolution p50/p95/p99."""
        with self._lock:
            mean = self.sum / self.count if self.count else 0.0
            return {
                "count": self.count,
                "sum": self.sum,
                "mean": mean,
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            }

    # -- cross-process merging ----------------------------------------

    def state(self) -> tuple[tuple[int, ...], float, int]:
        """``(tallies, sum, count)`` — the mergeable raw state.

        Picklable and cheap; a pool worker snapshots its histograms as
        states, ships the deltas in its result payload, and the parent
        folds them in with :meth:`merge_state`.
        """
        with self._lock:
            return (tuple(self._tallies), self.sum, self.count)

    def merge_state(self, tallies, total: float, count: int) -> None:
        """Fold another histogram's raw state into this one.

        The other histogram must share this one's bucket layout — a
        mismatched tally vector is rejected so a worker built with
        different ``latency_buckets`` cannot silently skew the parent.
        """
        if len(tallies) != len(self._tallies):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge state with "
                f"{len(tallies)} tallies into {len(self._tallies)} "
                f"buckets"
            )
        with self._lock:
            for index, tally in enumerate(tallies):
                self._tallies[index] += tally
            self.sum += total
            self.count += count

    def __getstate__(self):
        return (self.name, self.help, self.labels, self.buckets,
                self._tallies, self.sum, self.count)

    def __setstate__(self, state) -> None:
        (self.name, self.help, self.labels, self.buckets,
         self._tallies, self.sum, self.count) = state
        self._lock = threading.RLock()


class _StageTimer:
    """Context manager observing its lifetime into a histogram."""

    __slots__ = ("_histogram", "_began")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._began = 0.0

    def __enter__(self) -> "_StageTimer":
        self._began = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.observe(perf_counter() - self._began)
        return False


class MetricsRegistry:
    """The live metrics registry (see module docstring)."""

    enabled = True

    __slots__ = ("namespace", "buckets", "_counters", "_gauges",
                 "_histograms", "_stage_histograms", "_lock")

    def __init__(self, namespace: str = "xclean",
                 buckets: tuple[float, ...] | None = None):
        self.namespace = namespace
        #: Default bucket bounds for histograms created by this
        #: registry (``XCleanConfig.latency_buckets`` lands here).
        self.buckets = tuple(buckets or DEFAULT_LATENCY_BUCKETS)
        # Guards series *creation* and snapshotting; each series owns
        # its own lock for recording, so hot-path increments on
        # existing series never contend with one another here.
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        # Hot-path shortcut: stage name -> its stage_seconds series,
        # skipping label-key construction on every observation.
        self._stage_histograms: dict[str, Histogram] = {}

    # -- get-or-create ------------------------------------------------

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        key = (name, _label_key(labels))
        found = self._counters.get(key)
        if found is None:
            with self._lock:
                found = self._counters.get(key)
                if found is None:
                    found = Counter(name, help, labels)
                    self._counters[key] = found
        return found

    def gauge(self, name: str, help: str = "",
              **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        found = self._gauges.get(key)
        if found is None:
            with self._lock:
                found = self._gauges.get(key)
                if found is None:
                    found = Gauge(name, help, labels)
                    self._gauges[key] = found
        return found

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        found = self._histograms.get(key)
        if found is None:
            with self._lock:
                found = self._histograms.get(key)
                if found is None:
                    found = Histogram(
                        name, help, buckets or self.buckets, labels
                    )
                    self._histograms[key] = found
        return found

    # -- recording shortcuts ------------------------------------------

    def inc(self, name: str, amount: float = 1.0,
            **labels: str) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float,
                  **labels: str) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.histogram(name, **labels).observe(value)

    def _stage_histogram(self, stage: str) -> Histogram:
        found = self._stage_histograms.get(stage)
        if found is None:
            found = self.histogram(STAGE_HISTOGRAM, stage=stage)
            # dict assignment is atomic; racing threads store the same
            # object (histogram() deduplicates under the lock).
            self._stage_histograms[stage] = found
        return found

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one timing of a named pipeline stage."""
        self._stage_histogram(stage).observe(seconds)

    def stage(self, name: str) -> _StageTimer:
        """Context manager timing a named pipeline stage."""
        return _StageTimer(self._stage_histogram(name))

    # -- worker-side stage aggregation --------------------------------

    def stage_states(self) -> dict[str, tuple]:
        """Raw state of every stage-timer series, keyed by stage name.

        The mergeable counterpart of the ``stages`` snapshot view —
        see :meth:`stage_deltas` / :meth:`merge_stage_deltas`.
        """
        return {
            stage: histogram.state()
            for stage, histogram in self._stage_histograms.items()
        }

    def stage_deltas(self, before: dict[str, tuple]) -> dict[str, tuple]:
        """Stage-state changes since a prior :meth:`stage_states`.

        Returns only stages that moved; the result is picklable and
        travels in the pool-worker answer payload.
        """
        deltas: dict[str, tuple] = {}
        for stage, (tallies, total, count) in self.stage_states().items():
            prior = before.get(stage)
            if prior is None:
                if count:
                    deltas[stage] = (tallies, total, count)
                continue
            prior_tallies, prior_total, prior_count = prior
            if count == prior_count:
                continue
            deltas[stage] = (
                tuple(
                    tally - old
                    for tally, old in zip(tallies, prior_tallies)
                ),
                total - prior_total,
                count - prior_count,
            )
        return deltas

    def merge_stage_deltas(self, deltas: dict[str, tuple]) -> None:
        """Fold worker-side stage deltas into this registry.

        Stages whose bucket layout disagrees (worker configured with
        different ``latency_buckets``) are skipped rather than merged
        wrongly — the parent's own latency series stay exact.
        """
        for stage, (tallies, total, count) in deltas.items():
            histogram = self._stage_histogram(stage)
            try:
                histogram.merge_state(tallies, total, count)
            except ValueError:
                continue

    # -- export -------------------------------------------------------

    def snapshot(self):
        """Point-in-time :class:`~repro.obs.export.MetricsSnapshot`."""
        from repro.obs.export import MetricsSnapshot

        with self._lock:
            all_counters = list(self._counters.values())
            all_gauges = list(self._gauges.values())
            all_histograms = list(self._histograms.values())
        counters = [
            (c.name, dict(c.labels), c.value, c.help)
            for c in all_counters
        ]
        gauges = [
            (g.name, dict(g.labels), g.value, g.help)
            for g in all_gauges
        ]
        histograms = [
            (
                h.name,
                dict(h.labels),
                h.buckets,
                tuple(h.counts),
                h.sum,
                h.count,
                h.help,
            )
            for h in all_histograms
        ]
        return MetricsSnapshot(
            self.namespace, counters, histograms, gauges=gauges
        )

    def to_json(self, indent: int | None = 2) -> str:
        return self.snapshot().to_json(indent=indent)

    def to_prometheus(self) -> str:
        return self.snapshot().to_prometheus()

    def __getstate__(self):
        return (self.namespace, self.buckets, self._counters,
                self._histograms, self._stage_histograms, self._gauges)

    def __setstate__(self, state) -> None:
        # Pre-gauge pickles (5-tuple) still load: a registry shipped
        # to a pool worker round-trips within one process version, but
        # the guard costs nothing.
        if len(state) == 5:
            state = state + ({},)
        (self.namespace, self.buckets, self._counters,
         self._histograms, self._stage_histograms,
         self._gauges) = state
        self._lock = threading.Lock()


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


_NULL_COUNTER = _NullCounter()


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


_NULL_GAUGE = _NullGauge()


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """Disabled registry: every hook is a no-op (the hot-path default).

    Instrumented code checks ``metrics.enabled`` before paying for
    ``perf_counter``; the remaining no-op calls are attribute loads.
    """

    enabled = False

    __slots__ = ()

    namespace = "xclean"
    buckets = DEFAULT_LATENCY_BUCKETS

    def counter(self, name: str, help: str = "",
                **labels: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "",
              **labels: str) -> _NullGauge:
        return _NULL_GAUGE

    def set_gauge(self, name: str, value: float,
                  **labels: str) -> None:
        pass

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None,
                  **labels: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def inc(self, name: str, amount: float = 1.0,
            **labels: str) -> None:
        pass

    def observe(self, name: str, value: float, **labels: str) -> None:
        pass

    def observe_stage(self, stage: str, seconds: float) -> None:
        pass

    def stage(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def stage_states(self) -> dict[str, tuple]:
        return {}

    def stage_deltas(self, before: dict[str, tuple]) -> dict[str, tuple]:
        return {}

    def merge_stage_deltas(self, deltas: dict[str, tuple]) -> None:
        pass

    def snapshot(self):
        from repro.obs.export import MetricsSnapshot

        return MetricsSnapshot(self.namespace, [], [])

    def to_json(self, indent: int | None = 2) -> str:
        return self.snapshot().to_json(indent=indent)

    def to_prometheus(self) -> str:
        return self.snapshot().to_prometheus()


#: The shared disabled registry; safe to use as a default everywhere.
NULL_METRICS = NullMetrics()
