"""Export formats for metrics and traces (JSON, Prometheus, Chrome).

A :class:`MetricsSnapshot` is a frozen copy of a registry's state,
decoupled from the live objects so exports are consistent even while
queries keep landing.  Two renderings:

* :meth:`MetricsSnapshot.as_dict` / :meth:`to_json` — a stable dict
  with ``counters``, ``histograms`` (per-series summaries), and a
  ``stages`` convenience view of the ``stage_seconds`` family;
* :meth:`MetricsSnapshot.to_prometheus` — the Prometheus text
  exposition format (``# HELP``/``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` series, ``_sum``/``_count``), ready to serve
  from a ``/metrics`` endpoint or push through a textfile collector.

Trace exporters turn :class:`~repro.obs.trace.Span` trees into:

* **JSONL** — one trace per line (:func:`trace_to_json_line` /
  :func:`trace_from_json_line`), the flight-recorder dump format;
* **Chrome trace event JSON** (:func:`chrome_trace`) — loadable in
  ``chrome://tracing`` / Perfetto; spans become ``"X"`` complete
  events with microsecond timestamps, span events become instants.
  :func:`validate_chrome_trace` is the schema check CI's trace-smoke
  job runs against ``xclean trace`` output.
"""

from __future__ import annotations

import json

from repro.obs.metrics import STAGE_HISTOGRAM
from repro.obs.trace import Span

#: (name, labels, value, help)
CounterState = tuple[str, dict[str, str], float, str]

#: (name, labels, value, help) — same shape, gauge semantics.
GaugeState = tuple[str, dict[str, str], float, str]

#: (name, labels, buckets, counts, sum, count, help)
HistogramState = tuple[
    str, dict[str, str], tuple[float, ...], tuple[int, ...], float, int,
    str,
]


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def _render_labels(labels: dict[str, str],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = sorted(labels.items()) + list(extra)
    if not pairs:
        return ""
    escaped = (
        (
            key,
            value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"),
        )
        for key, value in pairs
    )
    return "{" + ",".join(f'{k}="{v}"' for k, v in escaped) + "}"


def _series_key(name: str, labels: dict[str, str]) -> str:
    return name + _render_labels(labels)


def _histogram_summary(
    buckets: tuple[float, ...], counts: tuple[int, ...],
    total: float, count: int,
) -> dict[str, float]:
    def quantile(q: float) -> float:
        if count == 0:
            return 0.0
        threshold = q * count
        for bound, cumulative in zip(buckets, counts):
            if cumulative >= threshold:
                return bound
        return float("inf")

    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "p50": quantile(0.50),
        "p95": quantile(0.95),
    }


class MetricsSnapshot:
    """A frozen, export-ready copy of one registry's metrics."""

    __slots__ = ("namespace", "counters", "histograms", "gauges")

    def __init__(
        self,
        namespace: str,
        counters: list[CounterState],
        histograms: list[HistogramState],
        gauges: list[GaugeState] = (),
    ):
        self.namespace = namespace
        self.counters = list(counters)
        self.histograms = list(histograms)
        self.gauges = list(gauges)

    def as_dict(self) -> dict:
        """JSON-friendly view; see the module docstring for the shape."""
        counters = {
            _series_key(name, labels): value
            for name, labels, value, _help in self.counters
        }
        gauges = {
            _series_key(name, labels): value
            for name, labels, value, _help in self.gauges
        }
        histograms = {}
        stages = {}
        for name, labels, buckets, counts, total, count, _ in (
            self.histograms
        ):
            summary = _histogram_summary(buckets, counts, total, count)
            histograms[_series_key(name, labels)] = summary
            if name == STAGE_HISTOGRAM and "stage" in labels:
                stages[labels["stage"]] = summary
        return {
            "namespace": self.namespace,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "stages": stages,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        All samples of one metric family are grouped contiguously
        under a single ``# HELP``/``# TYPE`` header, whatever order
        the series were created in — the exposition format forbids a
        family from appearing twice.
        """
        # family name -> (kind, help, [sample lines])
        families: dict[str, tuple[str, str, list[str]]] = {}

        def family(name: str, kind: str, help: str) -> list[str]:
            found = families.get(name)
            if found is None:
                found = (kind, help, [])
                families[name] = found
            return found[2]

        ns = self.namespace
        for name, labels, value, help in self.counters:
            family(f"{ns}_{name}", "counter", help).append(
                f"{ns}_{name}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )
        for name, labels, value, help in self.gauges:
            family(f"{ns}_{name}", "gauge", help).append(
                f"{ns}_{name}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )
        for name, labels, buckets, counts, total, count, help in (
            self.histograms
        ):
            full = f"{ns}_{name}"
            samples = family(full, "histogram", help)
            for bound, cumulative in zip(buckets, counts):
                samples.append(
                    f"{full}_bucket"
                    f"{_render_labels(labels, (('le', _format_value(bound)),))}"
                    f" {cumulative}"
                )
            samples.append(
                f"{full}_bucket"
                f"{_render_labels(labels, (('le', '+Inf'),))} {count}"
            )
            samples.append(
                f"{full}_sum{_render_labels(labels)} "
                f"{_format_value(total)}"
            )
            samples.append(
                f"{full}_count{_render_labels(labels)} {count}"
            )
        lines: list[str] = []
        for name, (kind, help, samples) in families.items():
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Trace exporters
# ----------------------------------------------------------------------


def trace_to_json_line(root: Span) -> str:
    """One span tree as a single JSON line (the JSONL record format)."""
    return json.dumps(
        root.as_dict(), separators=(",", ":"), sort_keys=True
    )


def trace_from_json_line(line: str) -> Span:
    """Parse one JSONL record back into a span tree."""
    return Span.from_dict(json.loads(line))


def _chrome_args(attributes: dict) -> dict:
    """Attribute values coerced to JSON-safe scalars."""
    return {
        key: (
            value
            if isinstance(value, (str, int, float, bool))
            or value is None
            else str(value)
        )
        for key, value in attributes.items()
    }


def chrome_trace(roots: Span | list[Span]) -> dict:
    """Span trees as a Chrome trace event JSON object.

    Every span becomes an ``"X"`` (complete) event with microsecond
    ``ts``/``dur`` relative to the earliest root start; span events
    become ``"i"`` (instant) events.  Spans carrying a ``pid``
    attribute (worker subtrees) keep it as the track id so pool
    fan-out renders as parallel rows in Perfetto.
    """
    if isinstance(roots, Span):
        roots = [roots]
    if not roots:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(root.start for root in roots)
    events: list[dict] = []

    def emit(span: Span, track: int) -> None:
        track = span.attributes.get("pid", track)
        events.append(
            {
                "name": span.name,
                "cat": "xclean",
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": track,
                "args": _chrome_args(span.attributes),
            }
        )
        for name, when, attrs in span.events:
            events.append(
                {
                    "name": name,
                    "cat": "xclean",
                    "ph": "i",
                    "ts": (when - origin) * 1e6,
                    "pid": 1,
                    "tid": track,
                    "s": "t",
                    "args": _chrome_args(attrs or {}),
                }
            )
        for child in span.children:
            emit(child, track)

    for root in roots:
        emit(root, 1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


#: Fields every Chrome trace event must carry, by phase.
_CHROME_REQUIRED = {"name", "cat", "ph", "ts", "pid", "tid"}


def validate_chrome_trace(data: dict) -> list[str]:
    """Schema check of a Chrome trace object; returns problem strings.

    An empty list means the object is loadable by ``chrome://tracing``
    / Perfetto: a ``traceEvents`` array whose members carry the
    required fields, numeric non-negative timestamps, and ``dur`` on
    every complete (``"X"``) event.
    """
    problems: list[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        missing = _CHROME_REQUIRED - event.keys()
        if missing:
            problems.append(
                f"event {index}: missing {sorted(missing)}"
            )
            continue
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            problems.append(
                f"event {index}: ts must be a non-negative number"
            )
        if event["ph"] == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(
                    f"event {index}: complete event needs "
                    f"non-negative dur"
                )
    return problems
