"""Lightweight per-query tracing: a span tree per request.

A trace is a tree of :class:`Span` objects — each one a named stage of
a query (tokenize, variant_gen, merge, ...) with a wall-clock start,
a measured duration, free-form attributes, and point-in-time events.
Traces are identified by a short hex ``trace_id`` carried in the root
span's attributes, surfaced through ``CleaningStats.trace_id`` so log
lines, batch output, and flight-recorder entries can be correlated.

Two implementations share one interface, mirroring
``NULL_METRICS``/``NULL_FAULTS``:

* :class:`Tracer` — the live tracer.  ``begin``/``end`` bracket a
  trace; ``span`` is a context manager for nested stages; ``event``
  and ``annotate`` attach data to the innermost open span.  Finished
  traces land in :attr:`Tracer.last_trace`.
* :data:`NULL_TRACER` — the disabled singleton.  Every hook is a
  no-op and hot code guards its ``perf_counter`` calls behind
  ``tracer.enabled``, so the disabled path costs one attribute load
  per instrumentation point (``benchmarks/bench_serving.py`` asserts
  the overhead stays inside the metrics ceiling).

Spans are plain ``__slots__`` objects built from picklable primitives,
so a pool worker can run its own :class:`Tracer`, return the finished
subtree in its result payload, and the parent can stitch it under the
service span with :meth:`Tracer.attach` — one coherent tree per query
even when the scoring happened in another process.

Budgets: a trace holds at most ``max_spans`` spans and each span at
most ``max_events`` events; excess ones are counted (``spans_dropped``
/ ``events_dropped`` attributes on the root) instead of growing the
tree without bound — important for the flight recorder, which retains
whole traces.
"""

from __future__ import annotations

import time
import uuid
from time import perf_counter
from typing import Any, Iterator

#: Default cap on spans per trace (excess spans are dropped, counted).
MAX_SPANS = 512

#: Default cap on events per span (excess events are dropped, counted).
MAX_EVENTS = 256


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One named stage of a trace (see module docstring).

    ``start`` is epoch seconds (``time.time``) so spans from different
    processes line up on one timeline; ``duration`` is measured with
    ``perf_counter`` so it is monotonic within a process.  ``events``
    is a list of ``(name, epoch_seconds, attrs_or_None)`` tuples.
    """

    __slots__ = (
        "name", "start", "duration", "attributes", "events", "children",
    )

    def __init__(
        self,
        name: str,
        start: float | None = None,
        duration: float = 0.0,
        attributes: dict[str, Any] | None = None,
    ):
        self.name = name
        self.start = time.time() if start is None else start
        self.duration = duration
        self.attributes: dict[str, Any] = attributes or {}
        self.events: list[tuple[str, float, dict | None]] = []
        self.children: list[Span] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (round-trips via from_dict)."""
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.events:
            out["events"] = [
                {"name": name, "time": when, **(
                    {"attributes": attrs} if attrs else {}
                )}
                for name, when, attrs in self.events
            ]
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls(
            data["name"],
            start=data.get("start", 0.0),
            duration=data.get("duration", 0.0),
            attributes=dict(data.get("attributes", {})),
        )
        span.events = [
            (
                event["name"],
                event.get("time", 0.0),
                event.get("attributes"),
            )
            for event in data.get("events", [])
        ]
        span.children = [
            cls.from_dict(child) for child in data.get("children", [])
        ]
        return span


class _SpanContext:
    """``with tracer.span(...)`` helper; closes the span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span | None):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span | None:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None and exc_type is not None:
            self._span.attributes["error"] = exc_type.__name__
        self._tracer._pop(self._span)
        return False


class Tracer:
    """The live tracer (see module docstring)."""

    enabled = True

    __slots__ = (
        "max_spans", "max_events", "trace_id", "last_trace",
        "_root", "_stack", "_starts", "_span_count",
        "_spans_dropped", "_events_dropped",
    )

    def __init__(self, max_spans: int = MAX_SPANS,
                 max_events: int = MAX_EVENTS):
        self.max_spans = max_spans
        self.max_events = max_events
        self.trace_id: str | None = None
        #: The most recently finished trace (its root span).
        self.last_trace: Span | None = None
        self._root: Span | None = None
        self._stack: list[Span] = []
        self._starts: list[float] = []
        self._span_count = 0
        self._spans_dropped = 0
        self._events_dropped = 0

    # -- trace lifecycle ----------------------------------------------

    def begin(self, name: str, trace_id: str | None = None,
              **attributes: Any) -> Span:
        """Open a root span, starting a new trace.

        An already-open trace is finalized first (defensive; matched
        ``begin``/``end`` pairs never hit this).
        """
        if self._root is not None:
            self.end()
        self.trace_id = trace_id or new_trace_id()
        root = Span(name, attributes=dict(attributes))
        root.attributes["trace_id"] = self.trace_id
        self._root = root
        self._stack = [root]
        self._starts = [perf_counter()]
        self._span_count = 1
        self._spans_dropped = 0
        self._events_dropped = 0
        return root

    def end(self) -> Span | None:
        """Close the trace; returns and stores its root span."""
        root = self._root
        if root is None:
            return None
        now = perf_counter()
        # Unwind any spans left open (error paths) including the root.
        while self._stack:
            span = self._stack.pop()
            began = self._starts.pop()
            span.duration = now - began
        if self._spans_dropped:
            root.attributes["spans_dropped"] = self._spans_dropped
        if self._events_dropped:
            root.attributes["events_dropped"] = self._events_dropped
        self._root = None
        self.last_trace = root
        return root

    def current(self) -> Span | None:
        """The innermost open span, or None outside a trace."""
        return self._stack[-1] if self._stack else None

    # -- span lifecycle -----------------------------------------------

    def _push(self, name: str, attributes: dict) -> Span | None:
        if self._root is None:
            return None
        if self._span_count >= self.max_spans:
            self._spans_dropped += 1
            return None
        span = Span(name, attributes=attributes)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        self._starts.append(perf_counter())
        self._span_count += 1
        return span

    def _pop(self, span: Span | None) -> None:
        if span is None or not self._stack:
            return
        if self._stack[-1] is span:
            self._stack.pop()
            span.duration = perf_counter() - self._starts.pop()

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Context manager opening a child span of the current span.

        Outside an open trace (or past the span budget) the context
        yields ``None`` and records nothing.
        """
        return _SpanContext(self, self._push(name, dict(attributes)))

    def event(self, name: str, **attributes: Any) -> None:
        """Attach a point-in-time event to the innermost open span."""
        if not self._stack:
            return
        span = self._stack[-1]
        if len(span.events) >= self.max_events:
            self._events_dropped += 1
            return
        span.events.append(
            (name, time.time(), attributes or None)
        )

    def annotate(self, **attributes: Any) -> None:
        """Merge attributes into the innermost open span."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    def attach(self, span: Span) -> None:
        """Graft a finished span subtree under the current span.

        This is the pool-stitching hook: the parent attaches a worker's
        returned subtree under its own service span.  Outside a trace
        the subtree is dropped (there is nothing to stitch onto).
        """
        if not self._stack:
            return
        budget = self.max_spans - self._span_count
        size = sum(1 for _ in span.walk())
        if size > budget:
            self._spans_dropped += size
            return
        self._span_count += size
        self._stack[-1].children.append(span)


class NullTracer:
    """Disabled tracer: every hook is a no-op (the hot-path default)."""

    enabled = False

    trace_id = None
    last_trace = None

    __slots__ = ()

    def begin(self, name: str, trace_id: str | None = None,
              **attributes: Any) -> None:
        return None

    def end(self) -> None:
        return None

    def current(self) -> None:
        return None

    def span(self, name: str, **attributes: Any) -> "NullTracer":
        return self

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def annotate(self, **attributes: Any) -> None:
        pass

    def attach(self, span: Span) -> None:
        pass

    # ``span`` doubles as its own no-op context manager.
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


#: The shared disabled tracer; safe to use as a default everywhere.
NULL_TRACER = NullTracer()


def format_trace(root: Span, indent: int = 0) -> str:
    """Render a span tree as an indented text outline (CLI view)."""
    pad = "  " * indent
    attrs = {
        k: v for k, v in root.attributes.items() if k != "trace_id"
    }
    line = f"{pad}{root.name}  {1e3 * root.duration:.3f} ms"
    if attrs:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(attrs.items())
        )
        line += f"  [{rendered}]"
    lines = [line]
    for name, when, attributes in root.events:
        event_line = f"{pad}  * {name}"
        if attributes:
            rendered = ", ".join(
                f"{key}={value}"
                for key, value in sorted(attributes.items())
            )
            event_line += f"  [{rendered}]"
        lines.append(event_line)
    for child in root.children:
        lines.append(format_trace(child, indent + 1))
    return "\n".join(lines)
