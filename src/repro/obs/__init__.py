"""Observability for the serving layer: metrics, faults, traces."""

from repro.obs.explain import (
    EvictionNote,
    Explanation,
    PruningObserver,
    ScoreRecorder,
    build_explanation,
)
from repro.obs.export import (
    MetricsSnapshot,
    chrome_trace,
    trace_from_json_line,
    trace_to_json_line,
    validate_chrome_trace,
)
from repro.obs.faults import (
    NULL_FAULTS,
    FaultAction,
    FaultPlan,
    NullFaultPlan,
    SITES,
    injected,
    install_spec,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    INDEX_LOAD_STAGE,
    NULL_METRICS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    STAGE_HISTOGRAM,
)
from repro.obs.recorder import FlightEntry, FlightRecorder
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_trace,
    new_trace_id,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EvictionNote",
    "Explanation",
    "FaultAction",
    "FaultPlan",
    "FlightEntry",
    "FlightRecorder",
    "Histogram",
    "INDEX_LOAD_STAGE",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_FAULTS",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullFaultPlan",
    "NullMetrics",
    "NullTracer",
    "PruningObserver",
    "SITES",
    "STAGE_HISTOGRAM",
    "ScoreRecorder",
    "Span",
    "Tracer",
    "build_explanation",
    "chrome_trace",
    "format_trace",
    "injected",
    "install_spec",
    "new_trace_id",
    "trace_from_json_line",
    "trace_to_json_line",
    "validate_chrome_trace",
]
