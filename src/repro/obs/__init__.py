"""Observability for the serving layer: metrics, timers, exporters."""

from repro.obs.export import MetricsSnapshot
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    STAGE_HISTOGRAM,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "NullMetrics",
    "STAGE_HISTOGRAM",
]
