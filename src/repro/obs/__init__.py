"""Observability for the serving layer: metrics, timers, faults."""

from repro.obs.export import MetricsSnapshot
from repro.obs.faults import (
    NULL_FAULTS,
    FaultAction,
    FaultPlan,
    NullFaultPlan,
    SITES,
    injected,
    install_spec,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    INDEX_LOAD_STAGE,
    NULL_METRICS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    STAGE_HISTOGRAM,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FaultAction",
    "FaultPlan",
    "Histogram",
    "INDEX_LOAD_STAGE",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_FAULTS",
    "NULL_METRICS",
    "NullFaultPlan",
    "NullMetrics",
    "SITES",
    "STAGE_HISTOGRAM",
    "injected",
    "install_spec",
]
