"""Observability for the serving layer: metrics, timers, exporters."""

from repro.obs.export import MetricsSnapshot
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    INDEX_LOAD_STAGE,
    NULL_METRICS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    STAGE_HISTOGRAM,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "INDEX_LOAD_STAGE",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "NullMetrics",
    "STAGE_HISTOGRAM",
]
