"""Structured JSONL request logging with correlation ids.

One request, one line.  The HTTP front-end mints a **correlation id**
at arrival (honoring an inbound ``X-Request-Id`` header, else a fresh
:func:`~repro.obs.trace.new_trace_id`), echoes it back as
``X-Request-Id``, and threads it through the service as the trace id —
so the same 16-hex-char id joins three records of one request:

* the **access-log line** this module writes (``id`` field);
* the **span tree** the tracer builds (``trace_id`` root attribute);
* any **flight-recorder entry** (``FlightEntry.trace_id``) and hence
  any flight dump.

Log schema (stable keys, one JSON object per line, sorted keys)::

    {"ts": 1754700000.123,        # epoch seconds at response write
     "id": "9f86d081884c7d65",    # correlation id
     "method": "GET", "path": "/suggest",
     "status": 200,               # HTTP status written
     "outcome": "served",         # served|partial|shed|error (SLO vocab)
     "latency_s": 0.0123,         # arrival -> response written
     "query": "keywrod serach",   # suggest requests only
     "k": 5,
     "coalesced": false}          # single-flight follower?

Extra keys are allowed and forward-compatible; consumers must ignore
keys they do not know.  The writer is thread-safe (one lock around
write+flush), append-only, and never raises into the request path —
a failed write disables the log and counts
``request_log_errors_total`` instead of breaking responses.
"""

from __future__ import annotations

import json
import threading
from time import time

from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import new_trace_id

__all__ = [
    "RequestLog",
    "NullRequestLog",
    "NULL_REQUEST_LOG",
    "new_request_id",
    "read_jsonl",
]


def new_request_id() -> str:
    """A fresh correlation id (same format as trace ids, on purpose)."""
    return new_trace_id()


class RequestLog:
    """Append-only JSONL access log (see module docstring for schema)."""

    enabled = True

    def __init__(self, target, *, metrics=None, clock=time):
        """``target`` is a path to append to, or a file-like object.

        A path is opened lazily on the first record so constructing a
        service with a log configured but never hit creates no file.
        """
        self._path = target if isinstance(target, str) else None
        self._handle = None if self._path else target
        self._owns_handle = self._path is not None
        self._metrics = metrics or NULL_METRICS
        self._clock = clock
        self._lock = threading.Lock()
        self._failed = False

    @property
    def path(self) -> str | None:
        return self._path

    def log(self, record: dict) -> None:
        """Write one record; stamps ``ts`` unless the caller did."""
        if self._failed:
            return
        try:
            line = json.dumps(
                dict({"ts": round(self._clock(), 6)}, **record),
                separators=(",", ":"), sort_keys=True,
            )
        except (TypeError, ValueError):
            # One bad record (unserializable value) is dropped; the
            # log itself stays healthy for the next request.
            self._metrics.inc("request_log_errors_total")
            return
        try:
            with self._lock:
                if self._failed:
                    return
                if self._handle is None:
                    self._handle = open(
                        self._path, "a", encoding="utf-8"
                    )
                self._handle.write(line + "\n")
                self._handle.flush()
        except (OSError, ValueError):
            # Never let a bad log target break the request path.
            self._failed = True
            self._metrics.inc("request_log_errors_total")

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._owns_handle:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullRequestLog:
    """Disabled log: every hook is a no-op (the default)."""

    enabled = False
    path = None

    def log(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRequestLog":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: The shared disabled log; safe to use as a default everywhere.
NULL_REQUEST_LOG = NullRequestLog()


def read_jsonl(path: str) -> list[dict]:
    """Parse an access log back into records (test/tooling helper)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
