"""The ops plane: health states, process gauges, and /statusz payloads.

This module is the glue between the serving stack's internal state and
what an operator (or a load balancer) sees:

* **Health model** — three states with a strict meaning:

  - ``ready`` — route traffic here.  Includes a mid-swap drain: the
    sharded swap gate *queues* arrivals rather than shedding them, so
    a swap in progress must not flip readiness (no flapping during
    routine updates).
  - ``degraded`` — still answering, but impaired: a circuit breaker is
    open, a snapshot is quarantined, or the service fell back to
    in-process execution because the worker pool died.  Keep routing
    (answers are still correct) but alert.
  - ``not_ready`` — do not route: the service is closed or the
    front-end is draining.

  :class:`Health` carries the state plus machine-readable reasons;
  services build one via :func:`evaluate_health` from a list of
  ``(condition, reason)`` pairs.

* **Process runtime** — :func:`process_runtime` samples RSS, GC
  generation counts, thread/fd counts, and uptime without psutil
  (``/proc`` first, ``resource`` fallback);
  :func:`export_process_gauges` mirrors the sample into Prometheus
  gauges (``proc_rss_bytes``, ``proc_gc_collections{gen=}``, ...).

* **/statusz** — :func:`status_payload` composes the service's own
  ``status()`` dict (generation, swap epoch, WAL, delta, shards) with
  health, SLO windows, front-end counters, and the process sample
  into the one JSON document the endpoint serves.
"""

from __future__ import annotations

import gc
import os
import threading
from time import monotonic, time

__all__ = [
    "READY",
    "DEGRADED",
    "NOT_READY",
    "Health",
    "evaluate_health",
    "process_runtime",
    "export_process_gauges",
    "status_payload",
]

READY = "ready"
DEGRADED = "degraded"
NOT_READY = "not_ready"

#: Process start reference for the uptime gauge (import time is as
#: close to exec as a library can observe without psutil).
_PROCESS_START = monotonic()


class Health:
    """One readiness verdict: a state plus its reasons."""

    __slots__ = ("state", "reasons")

    def __init__(self, state: str, reasons: list[str] | None = None):
        self.state = state
        self.reasons = list(reasons or [])

    @property
    def http_status(self) -> int:
        """503 only when unroutable; degraded still serves traffic."""
        return 200 if self.state in (READY, DEGRADED) else 503

    def as_dict(self) -> dict:
        return {"state": self.state, "reasons": self.reasons}


def evaluate_health(
    *,
    not_ready: list[tuple[bool, str]] = (),
    degraded: list[tuple[bool, str]] = (),
) -> Health:
    """Fold ``(condition, reason)`` pairs into one :class:`Health`.

    ``not_ready`` conditions dominate ``degraded`` ones; with nothing
    firing the verdict is ``ready`` with no reasons.
    """
    fatal = [reason for firing, reason in not_ready if firing]
    if fatal:
        return Health(NOT_READY, fatal)
    impaired = [reason for firing, reason in degraded if firing]
    if impaired:
        return Health(DEGRADED, impaired)
    return Health(READY)


# ----------------------------------------------------------------------
# Process runtime gauges
# ----------------------------------------------------------------------


def _rss_bytes() -> int:
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return usage * 1024 if usage < 1 << 40 else usage
    except (ImportError, OSError):
        return 0


def _open_fds() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return -1


def process_runtime() -> dict:
    """A point-in-time sample of this process's runtime state."""
    return {
        "pid": os.getpid(),
        "rss_bytes": _rss_bytes(),
        "gc_counts": list(gc.get_count()),
        "gc_collections": [
            stat.get("collections", 0) for stat in gc.get_stats()
        ],
        "threads": threading.active_count(),
        "open_fds": _open_fds(),
        "uptime_s": monotonic() - _PROCESS_START,
    }


def export_process_gauges(metrics, sample: dict | None = None) -> dict:
    """Mirror a runtime sample into Prometheus gauges; returns it."""
    if sample is None:
        sample = process_runtime()
    if metrics.enabled:
        metrics.set_gauge("proc_rss_bytes", sample["rss_bytes"])
        metrics.set_gauge("proc_threads", sample["threads"])
        metrics.set_gauge("proc_open_fds", sample["open_fds"])
        metrics.set_gauge("proc_uptime_seconds", sample["uptime_s"])
        for gen, count in enumerate(sample["gc_collections"]):
            metrics.set_gauge(
                "proc_gc_collections", count, gen=str(gen)
            )
    return sample


# ----------------------------------------------------------------------
# /statusz composition
# ----------------------------------------------------------------------


def status_payload(
    service,
    *,
    slo=None,
    front_end: dict | None = None,
    draining: bool = False,
) -> dict:
    """The /statusz JSON document (also the ``xclean status`` source).

    ``service`` must expose ``health(draining=...)`` and ``status()``
    — both :class:`~repro.core.server.SuggestionService` and
    :class:`~repro.core.shards.ShardedSuggestionService` do.
    """
    health = service.health(draining=draining)
    payload = {
        "ts": round(time(), 6),
        "health": health.as_dict(),
        "service": service.status(),
        "process": process_runtime(),
    }
    if slo is not None and getattr(slo, "enabled", False):
        payload["slo"] = slo.report()
    if front_end is not None:
        payload["front_end"] = front_end
    return payload
