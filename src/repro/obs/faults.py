"""Deterministic fault injection for reliability drills.

Production code is sprinkled with a handful of **named injection
points** (sites); each site is a single guarded call::

    faults = active()
    ...
    if faults.enabled:
        faults.hit("merge.step")

With no plan installed (the default) ``active()`` returns
:data:`NULL_FAULTS`, whose ``enabled`` is ``False`` — the hot path pays
one attribute load and a falsy branch per site, nothing else
(``benchmarks/bench_serving.py`` asserts the overhead stays under 5%).

A :class:`FaultPlan` maps sites to actions that fire deterministically:

* ``raise`` — raise :class:`~repro.exceptions.FaultInjected` (a
  :class:`~repro.exceptions.StorageError`, so the fault travels the
  same recovery paths real corruption does);
* ``delay`` — sleep for a fixed number of seconds (simulates a hung
  worker, a slow disk, a stalled merge stage);
* ``corrupt`` — flip one byte of the file passed to ``hit`` at a
  seed-derived offset (produces *real* CRC failures in on-disk
  indexes; only meaningful at sites that hand over a path).

Actions are scheduled by hit count: ``after`` skips the first N hits of
the site, ``times`` bounds how often the action fires (``None`` =
every matching hit).  Counters are per-plan and per-process — a forked
worker inherits the installed plan and counts its own hits — so a
seeded plan replays identically run over run.

Plans parse from a compact spec string (the ``XCleanConfig.fault_plan``
field and the ``xclean chaos --plan`` flag)::

    site:kind[=value][@after][xN][;site:kind...]

    "worker.query:delay=0.5"         delay every worker query 0.5s
    "merge.step:delay=0.01@3"        delay merge steps after the 3rd
    "snapshot.load:raise"            fail every snapshot load
    "snapshot.load:corrupt@0x1"      corrupt the file on the 1st load
    "worker.init:raise x2"           fail the first two worker inits

Install a plan process-globally with :func:`install` /
:func:`uninstall`, or scoped with the :func:`injected` context manager
(what the reliability tests use).  ``SuggestionService`` and the pool
worker initializers install the plan named by
``XCleanConfig.fault_plan`` automatically, so a spec reaches spawned
workers even without fork inheritance.
"""

from __future__ import annotations

import os
import random
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import ConfigurationError, FaultInjected

#: The named injection points wired into production code.
SITES = (
    "snapshot.load",
    "worker.init",
    "worker.query",
    "merge.step",
    "variant.gen",
    "shard.query",
    "wal.append",
    "delta.apply",
    "compact.swap",
)

#: Sites that receive a file path and therefore support ``corrupt``.
_PATH_SITES = frozenset({"snapshot.load", "wal.append", "compact.swap"})

_KINDS = ("raise", "delay", "corrupt")

_ACTION_RE = re.compile(
    r"^(?P<site>[a-z_.]+):(?P<kind>[a-z]+)"
    r"(?:=(?P<value>[0-9.]+))?"
    r"(?:@(?P<after>\d+))?"
    r"(?:\s*x(?P<times>\d+))?$"
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault at one site (see module docstring)."""

    site: str
    kind: str
    #: Delay duration in seconds (``delay`` only).
    seconds: float = 0.0
    #: Skip the first ``after`` hits of the site.
    after: int = 0
    #: Fire at most this many times; ``None`` fires on every hit.
    times: int | None = None

    def __post_init__(self):
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(SITES)}"
            )
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{', '.join(_KINDS)}"
            )
        if self.kind == "corrupt" and self.site not in _PATH_SITES:
            raise ConfigurationError(
                f"fault kind 'corrupt' needs a file-backed site "
                f"({', '.join(sorted(_PATH_SITES))}), not {self.site!r}"
            )
        if self.seconds < 0:
            raise ConfigurationError("fault delay must be >= 0 seconds")

    def spec(self) -> str:
        """The action as a spec fragment (round-trips via ``parse``)."""
        out = f"{self.site}:{self.kind}"
        if self.kind == "delay":
            out += f"={self.seconds:g}"
        if self.after:
            out += f"@{self.after}"
        if self.times is not None:
            out += f"x{self.times}"
        return out


class NullFaultPlan:
    """The disabled plan: every hook is a no-op (the default)."""

    enabled = False

    __slots__ = ()

    def hit(self, site: str, path: str | None = None) -> None:
        pass

    def fired(self) -> dict[str, int]:
        return {}

    def describe(self) -> dict:
        return {"enabled": False, "actions": []}


#: Shared disabled plan; safe to use as a default everywhere.
NULL_FAULTS = NullFaultPlan()


@dataclass
class _SiteState:
    hits: int = 0
    fired: dict[int, int] = field(default_factory=dict)


class FaultPlan:
    """A seeded, deterministic schedule of fault actions."""

    enabled = True

    def __init__(self, actions: list[FaultAction], seed: int = 0):
        self.seed = seed
        self.actions = tuple(actions)
        self._by_site: dict[str, list[tuple[int, FaultAction]]] = {}
        for index, action in enumerate(self.actions):
            self._by_site.setdefault(action.site, []).append(
                (index, action)
            )
        self._state: dict[str, _SiteState] = {
            site: _SiteState() for site in self._by_site
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``site:kind[=value][@after][xN][;...]`` spec string."""
        actions: list[FaultAction] = []
        for chunk in re.split(r"[;,]", spec):
            chunk = chunk.strip()
            if not chunk:
                continue
            match = _ACTION_RE.match(chunk)
            if match is None:
                raise ConfigurationError(
                    f"unparseable fault spec {chunk!r}; expected "
                    f"site:kind[=seconds][@after][xN]"
                )
            kind = match.group("kind")
            value = match.group("value")
            if kind == "delay" and value is None:
                raise ConfigurationError(
                    f"fault spec {chunk!r}: delay needs =seconds"
                )
            actions.append(
                FaultAction(
                    site=match.group("site"),
                    kind=kind,
                    seconds=float(value) if value else 0.0,
                    after=int(match.group("after") or 0),
                    times=(
                        int(match.group("times"))
                        if match.group("times")
                        else None
                    ),
                )
            )
        if not actions:
            raise ConfigurationError(
                f"fault spec {spec!r} contains no actions"
            )
        return cls(actions, seed=seed)

    def spec(self) -> str:
        """The plan as a spec string (round-trips via ``parse``)."""
        return ";".join(action.spec() for action in self.actions)

    # ------------------------------------------------------------------
    # The injection hook
    # ------------------------------------------------------------------

    def hit(self, site: str, path: str | None = None) -> None:
        """One pass through the named site; fires any due actions.

        ``raise`` actions raise :class:`FaultInjected` *after* the hit
        is recorded, so schedules keep advancing deterministically.
        """
        scheduled = self._by_site.get(site)
        if not scheduled:
            return
        state = self._state[site]
        count = state.hits
        state.hits = count + 1
        for index, action in scheduled:
            if count < action.after:
                continue
            fired = state.fired.get(index, 0)
            if action.times is not None and fired >= action.times:
                continue
            state.fired[index] = fired + 1
            if action.kind == "delay":
                time.sleep(action.seconds)
            elif action.kind == "corrupt":
                if path is not None:
                    self._corrupt_file(path, site, index, fired)
            else:  # raise
                raise FaultInjected(
                    f"injected fault at {site} "
                    f"(hit {count}, action {action.spec()!r})",
                    site=site,
                )

    def _corrupt_file(
        self, path: str, site: str, index: int, fired: int
    ) -> None:
        """Flip one byte of ``path`` at a seed-derived offset."""
        size = os.path.getsize(path)
        if size == 0:
            return
        rng = random.Random(f"{self.seed}:{site}:{index}:{fired}")
        offset = rng.randrange(size)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def fired(self) -> dict[str, int]:
        """Total actions fired per site (for chaos reports)."""
        out: dict[str, int] = {}
        for site, state in self._state.items():
            total = sum(state.fired.values())
            if total:
                out[site] = total
        return out

    def describe(self) -> dict:
        return {
            "enabled": True,
            "seed": self.seed,
            "actions": [action.spec() for action in self.actions],
            "fired": self.fired(),
        }


# ----------------------------------------------------------------------
# The process-global active plan
# ----------------------------------------------------------------------

_ACTIVE: FaultPlan | NullFaultPlan = NULL_FAULTS


def active() -> FaultPlan | NullFaultPlan:
    """The currently installed plan (:data:`NULL_FAULTS` by default)."""
    return _ACTIVE


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-globally; returns it for chaining."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def install_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Parse and install a spec string (config / CLI entry point)."""
    return install(FaultPlan.parse(spec, seed=seed))


def uninstall() -> None:
    """Restore the no-op default plan."""
    global _ACTIVE
    _ACTIVE = NULL_FAULTS


@contextmanager
def injected(plan: FaultPlan | str, seed: int = 0) -> Iterator[FaultPlan]:
    """Scope a plan to a ``with`` block (tests, drills)."""
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan, seed=seed)
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous
