"""The flight recorder: a bounded ring buffer of recent query traces.

``SuggestionService`` keeps one of these when tracing is on.  Two
ring buffers:

* ``recent`` — the last N traces, whatever happened to them;
* ``notable`` — every slow / partial / degraded / faulted / errored
  query, retained separately so a burst of healthy traffic cannot
  push the interesting traces out before anyone looks.

Entries are :class:`FlightEntry` records — the stitched span tree plus
the flags and latency the service observed.  The recorder dumps to
JSONL (one entry per line, ``repro.obs.export`` record format plus a
small envelope) either on demand (``SuggestionService.
dump_flight_record`` / the ``xclean trace`` CLI) or automatically when
the circuit breaker opens or a snapshot is quarantined — the moments
when "what just happened" matters most and the evidence is about to
age out.

Append cost is O(1) with no allocation beyond the entry itself;
bounded ``deque``s do the retention.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Iterator

from repro.obs.export import chrome_trace, trace_to_json_line
from repro.obs.trace import Span

#: Default retention of the two rings.
DEFAULT_CAPACITY = 64
DEFAULT_NOTABLE_CAPACITY = 128


class FlightEntry:
    """One recorded query: its trace plus the service's verdict."""

    __slots__ = (
        "trace", "trace_id", "query", "latency_s", "slow", "partial",
        "degraded", "faulted", "error", "recorded_at",
    )

    def __init__(
        self,
        trace: Span,
        query: str = "",
        latency_s: float = 0.0,
        slow: bool = False,
        partial: bool = False,
        degraded: bool = False,
        faulted: bool = False,
        error: str | None = None,
    ):
        self.trace = trace
        self.trace_id = trace.attributes.get("trace_id")
        self.query = query
        self.latency_s = latency_s
        self.slow = slow
        self.partial = partial
        self.degraded = degraded
        self.faulted = faulted
        self.error = error
        self.recorded_at = time.time()

    @property
    def notable(self) -> bool:
        return (
            self.slow
            or self.partial
            or self.degraded
            or self.faulted
            or self.error is not None
        )

    def flags(self) -> list[str]:
        out = []
        if self.slow:
            out.append("slow")
        if self.partial:
            out.append("partial")
        if self.degraded:
            out.append("degraded")
        if self.faulted:
            out.append("faulted")
        if self.error is not None:
            out.append("error")
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "query": self.query,
            "latency_s": self.latency_s,
            "flags": self.flags(),
            "error": self.error,
            "recorded_at": self.recorded_at,
            "trace": self.trace.as_dict(),
        }

    def to_json_line(self) -> str:
        return json.dumps(
            self.as_dict(), separators=(",", ":"), sort_keys=True
        )

    @classmethod
    def from_json_line(cls, line: str) -> "FlightEntry":
        data = json.loads(line)
        entry = cls(
            Span.from_dict(data["trace"]),
            query=data.get("query", ""),
            latency_s=data.get("latency_s", 0.0),
            error=data.get("error"),
        )
        flags = set(data.get("flags", ()))
        entry.slow = "slow" in flags
        entry.partial = "partial" in flags
        entry.degraded = "degraded" in flags
        entry.faulted = "faulted" in flags
        entry.recorded_at = data.get("recorded_at", entry.recorded_at)
        return entry


class FlightRecorder:
    """Bounded retention of recent + notable traces (module docstring).

    ``slow_threshold`` (seconds) marks entries above it as slow;
    ``None`` disables the check.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        notable_capacity: int = DEFAULT_NOTABLE_CAPACITY,
        slow_threshold: float | None = None,
    ):
        self.capacity = capacity
        self.notable_capacity = notable_capacity
        self.slow_threshold = slow_threshold
        self.recorded = 0
        self.dumps = 0
        self._recent: deque[FlightEntry] = deque(maxlen=capacity)
        self._notable: deque[FlightEntry] = deque(
            maxlen=notable_capacity
        )

    def __len__(self) -> int:
        return len(self._recent) + len(self._notable)

    def record(self, entry: FlightEntry) -> FlightEntry:
        """Retain one finished query's entry (O(1))."""
        if (
            self.slow_threshold is not None
            and entry.latency_s > self.slow_threshold
        ):
            entry.slow = True
        self.recorded += 1
        if entry.notable:
            self._notable.append(entry)
        else:
            self._recent.append(entry)
        return entry

    def entries(self) -> Iterator[FlightEntry]:
        """All retained entries, oldest first, notable ones included."""
        merged = list(self._recent) + list(self._notable)
        merged.sort(key=lambda entry: entry.recorded_at)
        return iter(merged)

    def notable_entries(self) -> list[FlightEntry]:
        return list(self._notable)

    def find(self, trace_id: str) -> FlightEntry | None:
        """Look an entry up by trace id (newest wins on collision)."""
        found = None
        for entry in self.entries():
            if entry.trace_id == trace_id:
                found = entry
        return found

    # -- dumping ------------------------------------------------------

    def dump_jsonl(self, reason: str = "on_demand") -> str:
        """All retained entries as JSONL, first line an envelope."""
        envelope = {
            "flight_record": True,
            "reason": reason,
            "dumped_at": time.time(),
            "recorded_total": self.recorded,
            "retained": len(self),
        }
        lines = [json.dumps(envelope, sort_keys=True)]
        lines.extend(
            entry.to_json_line() for entry in self.entries()
        )
        self.dumps += 1
        return "\n".join(lines) + "\n"

    def dump_to(self, path: str, reason: str = "on_demand") -> str:
        """Write :meth:`dump_jsonl` to ``path``; returns the path."""
        payload = self.dump_jsonl(reason)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        return path

    def chrome_trace(self) -> dict:
        """All retained traces as one Chrome trace object."""
        return chrome_trace(
            [entry.trace for entry in self.entries()]
        )

    def traces_jsonl(self) -> str:
        """Bare span trees as JSONL (no envelope; export round-trips)."""
        return "".join(
            trace_to_json_line(entry.trace) + "\n"
            for entry in self.entries()
        )
