"""FastSS variant indexes: generating var_ε(q) (Section V-A).

Two interchangeable index structures produce the variant set of a query
keyword — every vocabulary token within edit distance ε:

* :class:`FastSSIndex` — the plain scheme: index the ε-deletion
  neighborhood of every vocabulary token; probe with the query's
  neighborhood; verify candidates with a banded edit distance.

* :class:`PartitionedFastSSIndex` — the paper's partitioned variant for
  long tokens.  Tokens longer than a threshold are split into two
  halves; by pigeonhole, ed(q, w) <= ε implies one half aligns with a
  query prefix/suffix within ⌊ε/2⌋ errors, so only ⌊ε/2⌋-deletion
  neighborhoods of the halves are indexed.  This trades a slightly
  larger candidate set for neighborhood sizes that stay polynomial in
  the half length — the paper's O(min(l^ε, ε²·l_p)·|V|) space bound.

* :class:`BruteForceVariants` — scans the vocabulary; the correctness
  oracle in tests.

All three share the interface ``variants(query, max_errors=None) ->
list[Variant]``, returning ``(token, distance)`` pairs sorted by
(distance, token) so results are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.exceptions import ConfigurationError
from repro.fastss.edit_distance import bounded_edit_distance
from repro.fastss.neighborhood import deletion_neighborhood


@dataclass(frozen=True, order=True)
class Variant:
    """One member of var_ε(q): a vocabulary token and its edit distance."""

    distance: int
    token: str


class VariantIndex(Protocol):
    """Common protocol of the variant-generation indexes."""

    max_errors: int

    def variants(
        self, query: str, max_errors: int | None = None
    ) -> list[Variant]:
        """All vocabulary tokens within the given edit distance."""
        ...  # pragma: no cover - protocol


def _verify(
    query: str, candidates: Iterable[str], max_errors: int
) -> list[Variant]:
    """Filter candidates by true edit distance; sort deterministically."""
    verified = []
    for token in candidates:
        distance = bounded_edit_distance(query, token, max_errors)
        if distance is not None:
            verified.append(Variant(distance, token))
    verified.sort()
    return verified


class FastSSIndex:
    """Plain FastSS: full ε-deletion neighborhoods of every token."""

    def __init__(self, tokens: Iterable[str], max_errors: int = 2):
        if max_errors < 0:
            raise ConfigurationError("max_errors must be >= 0")
        self.max_errors = max_errors
        self._buckets: dict[str, list[str]] = {}
        self._vocabulary: set[str] = set()
        for token in tokens:
            self.add_token(token)

    def add_token(self, token: str) -> None:
        """Index one vocabulary token (idempotent)."""
        if token in self._vocabulary:
            return
        self._vocabulary.add(token)
        for signature in deletion_neighborhood(token, self.max_errors):
            self._buckets.setdefault(signature, []).append(token)

    def __len__(self) -> int:
        return len(self._vocabulary)

    @property
    def bucket_count(self) -> int:
        """Number of distinct deletion signatures (index size)."""
        return len(self._buckets)

    def candidates(self, query: str, max_errors: int) -> set[str]:
        """Unverified candidates: tokens sharing a deletion signature."""
        found: set[str] = set()
        for signature in deletion_neighborhood(query, max_errors):
            bucket = self._buckets.get(signature)
            if bucket:
                found.update(bucket)
        return found

    def variants(
        self, query: str, max_errors: int | None = None
    ) -> list[Variant]:
        """var_ε(q): verified vocabulary tokens within ``max_errors``."""
        eps = self.max_errors if max_errors is None else max_errors
        if eps > self.max_errors:
            raise ConfigurationError(
                f"index built for <= {self.max_errors} errors, asked {eps}"
            )
        return _verify(query, self.candidates(query, eps), eps)


class PartitionedFastSSIndex:
    """FastSS with half-token partitioning for long tokens.

    Tokens of length <= ``partition_threshold`` go into a plain FastSS
    bucket table.  Longer tokens are split into halves w = w1·w2 with
    |w1| = ceil(|w|/2); the ⌊ε/2⌋-deletion neighborhoods of w1 and w2
    are indexed in separate prefix/suffix tables.  At query time both
    tables are probed with the deletion neighborhoods of query prefixes
    and suffixes whose lengths fall in the feasible window, and every
    candidate is verified.
    """

    def __init__(
        self,
        tokens: Iterable[str],
        max_errors: int = 2,
        partition_threshold: int = 9,
    ):
        if max_errors < 0:
            raise ConfigurationError("max_errors must be >= 0")
        if partition_threshold < 2:
            raise ConfigurationError("partition_threshold must be >= 2")
        self.max_errors = max_errors
        self.partition_threshold = partition_threshold
        self._half_errors = max_errors // 2
        self._short = FastSSIndex([], max_errors)
        self._prefix_buckets: dict[str, list[str]] = {}
        self._suffix_buckets: dict[str, list[str]] = {}
        self._long_lengths: set[int] = set()
        seen: set[str] = set()
        for token in tokens:
            if token in seen:
                continue
            seen.add(token)
            if len(token) <= partition_threshold:
                self._short.add_token(token)
            else:
                self._long_lengths.add(len(token))
                half = (len(token) + 1) // 2
                for sig in deletion_neighborhood(
                    token[:half], self._half_errors
                ):
                    self._prefix_buckets.setdefault(sig, []).append(token)
                for sig in deletion_neighborhood(
                    token[half:], self._half_errors
                ):
                    self._suffix_buckets.setdefault(sig, []).append(token)

    def _long_candidates(self, query: str, eps: int) -> set[str]:
        """Probe the prefix/suffix tables for long-token candidates."""
        found: set[str] = set()
        q_len = len(query)
        half_eps = self._half_errors
        # Feasible word lengths differ from |q| by at most eps.
        word_lengths = [
            length
            for length in self._long_lengths
            if abs(length - q_len) <= eps
        ]
        if not word_lengths:
            return found
        prefix_lengths: set[int] = set()
        suffix_lengths: set[int] = set()
        for length in word_lengths:
            half = (length + 1) // 2
            for delta in range(-half_eps - eps, half_eps + eps + 1):
                j = half + delta
                if 0 <= j <= q_len:
                    prefix_lengths.add(j)
                j = (length - half) + delta
                if 0 <= j <= q_len:
                    suffix_lengths.add(j)
        for j in prefix_lengths:
            for sig in deletion_neighborhood(query[:j], half_eps):
                bucket = self._prefix_buckets.get(sig)
                if bucket:
                    found.update(bucket)
        for j in suffix_lengths:
            for sig in deletion_neighborhood(query[q_len - j :], half_eps):
                bucket = self._suffix_buckets.get(sig)
                if bucket:
                    found.update(bucket)
        return found

    def variants(
        self, query: str, max_errors: int | None = None
    ) -> list[Variant]:
        """var_ε(q) over both short and partitioned long tokens."""
        eps = self.max_errors if max_errors is None else max_errors
        if eps > self.max_errors:
            raise ConfigurationError(
                f"index built for <= {self.max_errors} errors, asked {eps}"
            )
        candidates = self._long_candidates(query, eps)
        if len(query) <= self.partition_threshold + eps:
            candidates |= self._short.candidates(query, eps)
        return _verify(query, candidates, eps)


class BruteForceVariants:
    """Reference variant generator: linear scan with banded verification."""

    def __init__(self, tokens: Iterable[str], max_errors: int = 2):
        self.max_errors = max_errors
        self._tokens = sorted(set(tokens))

    def variants(
        self, query: str, max_errors: int | None = None
    ) -> list[Variant]:
        eps = self.max_errors if max_errors is None else max_errors
        return _verify(query, self._tokens, eps)
