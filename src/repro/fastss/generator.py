"""Variant generation service used by the query cleaners.

Wraps a FastSS index over a corpus vocabulary and exposes ``var_ε(q)``
with per-query-keyword LRU memoization — Algorithm 1 Line 2
(``makeVariants``) asks for the same keyword's variants repeatedly
across queries, and a FastSS probe is orders of magnitude more
expensive than a cache hit.  Hit/miss counters feed the
``variant_cache_*`` fields of :class:`~repro.core.suggestion.CleaningStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

#: Default bound of the per-generator variant LRU.  Vocabulary-sized
#: workloads never evict at this size; it exists so a pathological
#: stream of unique garbage keywords cannot grow memory without bound.
DEFAULT_VARIANT_CACHE_SIZE = 16384

from repro.fastss.index import (
    FastSSIndex,
    PartitionedFastSSIndex,
    Variant,
    VariantIndex,
)


class VariantGenerator:
    """Produces var_ε(q) for query keywords over a fixed vocabulary."""

    def __init__(
        self,
        tokens: Iterable[str],
        max_errors: int = 2,
        partitioned: bool = True,
        partition_threshold: int = 9,
        cache_size: int = DEFAULT_VARIANT_CACHE_SIZE,
        _shared_index: VariantIndex | None = None,
    ):
        self.max_errors = max_errors
        self._index: VariantIndex
        if _shared_index is not None:
            self._index = _shared_index
        elif partitioned:
            self._index = PartitionedFastSSIndex(
                tokens,
                max_errors=max_errors,
                partition_threshold=partition_threshold,
            )
        else:
            self._index = FastSSIndex(tokens, max_errors=max_errors)
        self.cache_size = cache_size
        self._cache: OrderedDict[
            tuple[str, int], tuple[Variant, ...]
        ] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def fresh_cache(self) -> "VariantGenerator":
        """A new generator sharing this one's index, with an empty cache.

        Used when several systems are *timed* against the same corpus:
        each gets its own memo so no system free-rides on probes another
        system already paid for, while the expensive FastSS index build
        is still shared.
        """
        return VariantGenerator(
            (),
            max_errors=self.max_errors,
            cache_size=self.cache_size,
            _shared_index=self._index,
        )

    def variants(
        self, keyword: str, max_errors: int | None = None
    ) -> tuple[Variant, ...]:
        """var_ε(q): vocabulary tokens within ``max_errors`` of ``keyword``.

        Results are LRU-cached; the returned tuple is shared, do not
        mutate.
        """
        eps = self.max_errors if max_errors is None else max_errors
        key = (keyword, eps)
        cache = self._cache
        cached = cache.get(key)
        if cached is None:
            self.cache_misses += 1
            cached = tuple(self._index.variants(keyword, eps))
            cache[key] = cached
            if len(cache) > self.cache_size:
                cache.popitem(last=False)
        else:
            self.cache_hits += 1
            cache.move_to_end(key)
        return cached

    def variant_tokens(
        self, keyword: str, max_errors: int | None = None
    ) -> list[str]:
        """Just the token strings of var_ε(q), sorted by (distance, token)."""
        return [v.token for v in self.variants(keyword, max_errors)]

    def distance_of(
        self, keyword: str, token: str, max_errors: int | None = None
    ) -> int | None:
        """Edit distance keyword→token if token ∈ var_ε(keyword)."""
        for variant in self.variants(keyword, max_errors):
            if variant.token == token:
                return variant.distance
        return None
