"""FastSS substrate: edit distance and ε-variant generation (Section V-A)."""

from repro.fastss.edit_distance import (
    bounded_edit_distance,
    edit_distance,
    within_distance,
)
from repro.fastss.generator import VariantGenerator
from repro.fastss.index import (
    BruteForceVariants,
    FastSSIndex,
    PartitionedFastSSIndex,
    Variant,
    VariantIndex,
)
from repro.fastss.phonetic import (
    CompositeVariantGenerator,
    PhoneticIndex,
    soundex,
)
from repro.fastss.neighborhood import (
    deletion_neighborhood,
    neighborhood_size_bound,
)

__all__ = [
    "BruteForceVariants",
    "CompositeVariantGenerator",
    "FastSSIndex",
    "PartitionedFastSSIndex",
    "PhoneticIndex",
    "Variant",
    "VariantGenerator",
    "VariantIndex",
    "bounded_edit_distance",
    "deletion_neighborhood",
    "edit_distance",
    "neighborhood_size_bound",
    "soundex",
    "within_distance",
]
