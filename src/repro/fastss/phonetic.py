"""Phonetic (cognitive-error) variant generation — Section VI-A.

Besides typographical errors, the paper notes the framework "can be
easily extended to include cognitive errors by properly defining the
variant set var(q) and the probability P(q|w) (e.g., soundex, …)".
This module provides that extension:

* :func:`soundex` — the classic American Soundex code;
* :class:`PhoneticIndex` — vocabulary bucketed by Soundex code;
  ``variants(q)`` returns the tokens that *sound like* q, each carrying
  a configurable pseudo edit distance so the standard exponential
  error model prices them without modification;
* :class:`CompositeVariantGenerator` — merges any number of variant
  sources (edit-distance FastSS + phonetic, typically), keeping the
  minimum distance per token.

Example 1's "schuetze" / "schutze" confusion is the motivating case: a
user who cannot type "ü" produces a token far from the indexed form in
edit distance but identical in Soundex.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.fastss.index import Variant

#: Soundex digit classes (h, w are ignored; vowels separate groups).
_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}

#: Pseudo edit distance assigned to a phonetic match.  Two keeps
#: phonetic variants below distance-1 typo fixes but above-or-equal to
#: distance-2 ones under the exponential error model.
DEFAULT_PHONETIC_DISTANCE = 2


def soundex(word: str) -> str:
    """American Soundex code of ``word`` (e.g. "robert" → "R163").

    Non-alphabetic characters are ignored; an empty or non-alphabetic
    input yields ``"0000"``.
    """
    letters = [ch for ch in word.lower() if ch.isalpha()]
    if not letters:
        return "0000"
    first = letters[0]
    digits = []
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if ch in "hw":
            # h/w are transparent: they do not reset the run.
            continue
        if code and code != previous:
            digits.append(code)
        previous = code
    return (first.upper() + "".join(digits) + "000")[:4]


class PhoneticIndex:
    """Vocabulary tokens bucketed by Soundex code."""

    def __init__(
        self,
        tokens: Iterable[str],
        distance: int = DEFAULT_PHONETIC_DISTANCE,
    ):
        if distance < 0:
            raise ConfigurationError("distance must be >= 0")
        self.max_errors = distance
        self.distance = distance
        self._buckets: dict[str, list[str]] = {}
        seen: set[str] = set()
        for token in tokens:
            if token in seen:
                continue
            seen.add(token)
            self._buckets.setdefault(soundex(token), []).append(token)

    def variants(
        self, query: str, max_errors: int | None = None
    ) -> list[Variant]:
        """Tokens sharing ``query``'s Soundex code.

        ``max_errors`` below the configured phonetic distance disables
        phonetic matching (the caller asked for a tighter radius than
        a phonetic confusion costs).
        """
        eps = self.distance if max_errors is None else max_errors
        if eps < self.distance:
            return []
        bucket = self._buckets.get(soundex(query), [])
        found = [
            Variant(0 if token == query else self.distance, token)
            for token in bucket
        ]
        found.sort()
        return found


class CompositeVariantGenerator:
    """Union of several variant sources, minimum distance per token.

    Sources must expose ``variants(keyword, max_errors) -> Sequence``
    of :class:`Variant` — both :class:`~repro.fastss.generator.
    VariantGenerator` and :class:`PhoneticIndex` qualify.  The result
    order matches the other generators: (distance, token).
    """

    def __init__(self, sources: Sequence, max_errors: int = 2):
        if not sources:
            raise ConfigurationError("at least one source required")
        self.sources = list(sources)
        self.max_errors = max_errors
        self._cache: dict[tuple[str, int], tuple[Variant, ...]] = {}

    def variants(
        self, keyword: str, max_errors: int | None = None
    ) -> tuple[Variant, ...]:
        eps = self.max_errors if max_errors is None else max_errors
        key = (keyword, eps)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        best: dict[str, int] = {}
        for source in self.sources:
            # Never ask a source for a wider radius than it supports.
            capped = min(eps, getattr(source, "max_errors", eps))
            for variant in source.variants(keyword, capped):
                known = best.get(variant.token)
                if known is None or variant.distance < known:
                    best[variant.token] = variant.distance
        merged = tuple(
            sorted(
                Variant(distance, token)
                for token, distance in best.items()
            )
        )
        self._cache[key] = merged
        return merged

    def variant_tokens(
        self, keyword: str, max_errors: int | None = None
    ) -> list[str]:
        """Token strings only, sorted by (distance, token)."""
        return [v.token for v in self.variants(keyword, max_errors)]
