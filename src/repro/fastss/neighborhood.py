"""Deletion neighborhoods (the FastSS signature scheme).

The ε-deletion neighborhood of a word is the set of strings obtainable by
deleting at most ε characters (Section V-A).  The FastSS property used
for candidate generation:

    ed(s, t) <= ε  ⇒  neighborhood(s, ε) ∩ neighborhood(t, ε) ≠ ∅

The implication is one-directional — probing the index yields a
*superset* of the true ε-variants, which is why every candidate is
verified with :func:`~repro.fastss.edit_distance.bounded_edit_distance`.
"""

from __future__ import annotations


def deletion_neighborhood(word: str, max_deletions: int) -> frozenset[str]:
    """All strings reachable from ``word`` by <= ``max_deletions`` deletions.

    Includes ``word`` itself (zero deletions).  The size is bounded by
    ``C(len(word), max_deletions)`` distinct strings per level, which is
    why FastSS partitions long tokens instead of raising ε.
    """
    if max_deletions < 0:
        raise ValueError("max_deletions must be >= 0")
    result: set[str] = {word}
    frontier: set[str] = {word}
    for _ in range(max_deletions):
        next_frontier: set[str] = set()
        for candidate in frontier:
            for i in range(len(candidate)):
                shorter = candidate[:i] + candidate[i + 1 :]
                if shorter not in result:
                    next_frontier.add(shorter)
        if not next_frontier:
            break
        result |= next_frontier
        frontier = next_frontier
    return frozenset(result)


def neighborhood_size_bound(length: int, max_deletions: int) -> int:
    """Upper bound on the ε-deletion neighborhood size of a length-l word.

    Sum over k <= ε of C(l, k).  Used by the partitioned index to decide
    when the full neighborhood would be too expensive.
    """
    total = 0
    term = 1
    for k in range(max_deletions + 1):
        total += term
        term = term * (length - k) // (k + 1) if length > k else 0
    return total
