"""Edit distance (Levenshtein) computations.

The paper's error model is built on the minimum number of insertions,
deletions and substitutions transforming one token into another
(Section III).  Two implementations are provided:

* :func:`edit_distance` — the classic O(|s|·|t|) two-row DP;
* :func:`bounded_edit_distance` — a banded DP that only fills the
  diagonal band of width 2k+1 and exits early, O(k·min(|s|,|t|)); this
  is the verifier behind FastSS candidate filtering, where k is the
  small error threshold ε (1 or 2 in the paper's experiments).
"""

from __future__ import annotations


def edit_distance(s: str, t: str) -> int:
    """Exact Levenshtein distance between ``s`` and ``t``."""
    if s == t:
        return 0
    if not s:
        return len(t)
    if not t:
        return len(s)
    if len(s) < len(t):
        s, t = t, s
    previous = list(range(len(t) + 1))
    for i, cs in enumerate(s, start=1):
        current = [i]
        for j, ct in enumerate(t, start=1):
            cost = 0 if cs == ct else 1
            current.append(
                min(
                    previous[j] + 1,  # delete from s
                    current[j - 1] + 1,  # insert into s
                    previous[j - 1] + cost,  # substitute / match
                )
            )
        previous = current
    return previous[-1]


def bounded_edit_distance(s: str, t: str, limit: int) -> int | None:
    """Levenshtein distance if it is <= ``limit``, else ``None``.

    Fills only the band of cells within ``limit`` of the diagonal and
    abandons the computation as soon as every cell in a row exceeds the
    limit.
    """
    if limit < 0:
        return None
    n, m = len(s), len(t)
    if abs(n - m) > limit:
        return None
    if s == t:
        return 0
    if limit == 0:
        return None
    if n < m:
        s, t, n, m = t, s, m, n
    if m == 0:
        # abs(n - m) <= limit already holds, so n edits suffice.
        return n

    infinity = limit + 1
    previous = [j if j <= limit else infinity for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - limit)
        hi = min(m, i + limit)
        current = [infinity] * (m + 1)
        if lo == 1:
            current[0] = i if i <= limit else infinity
        cs = s[i - 1]
        best = infinity
        for j in range(lo, hi + 1):
            cost = 0 if cs == t[j - 1] else 1
            value = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
            if value > infinity:
                value = infinity
            current[j] = value
            if value < best:
                best = value
        if best >= infinity:
            return None
        previous = current
    result = previous[m]
    return result if result <= limit else None


def within_distance(s: str, t: str, limit: int) -> bool:
    """True iff ``ed(s, t) <= limit``."""
    return bounded_edit_distance(s, t, limit) is not None
